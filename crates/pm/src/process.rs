//! Processes and the per-container process trees (§3).
//!
//! "Inside each container, the processes form a separate process tree,
//! which allows parent-child tracking of all processes in the same
//! container." The layout mirrors the container tree: internal child
//! lists, reverse parent pointers, and a ghost ancestor `path` for
//! non-recursive specifications.

use atmo_spec::harness::{check, VerifResult};
use atmo_spec::{Ghost, PermMap, Seq};

use crate::container::Container;
use crate::staticlist::StaticList;
use crate::types::{CtnrPtr, ProcPtr, ThrdPtr, MAX_CHILD_PROCESSES, MAX_PROC_THREADS};

/// A process kernel object (one per 4 KiB page).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Process {
    /// The container this process belongs to (never changes).
    pub owning_container: CtnrPtr,
    /// Parent process within the same container; `None` for the
    /// container's top-level processes.
    pub parent: Option<ProcPtr>,
    /// Direct child processes.
    pub children: StaticList<ProcPtr, MAX_CHILD_PROCESSES>,
    /// Threads of this process.
    pub threads: StaticList<ThrdPtr, MAX_PROC_THREADS>,
    /// Ghost: ancestor processes from the container's top level.
    pub path: Ghost<Seq<ProcPtr>>,
    /// Opaque address-space identifier; the kernel maps it to a page
    /// table. Two processes never share an identifier.
    pub addr_space: usize,
}

impl Process {
    /// A fresh process in `container` under `parent`.
    pub fn new(
        container: CtnrPtr,
        parent: Option<ProcPtr>,
        parent_path: Seq<ProcPtr>,
        addr_space: usize,
    ) -> Self {
        let path = match parent {
            Some(p) => parent_path.push(p),
            None => Seq::empty(),
        };
        Process {
            owning_container: container,
            parent,
            children: StaticList::new(),
            threads: StaticList::new(),
            path: Ghost::new(path),
            addr_space,
        }
    }
}

/// Structural invariant of all per-container process trees, stated flat
/// over the process and container permission maps.
pub fn process_forest_wf(cntrs: &PermMap<Container>, procs: &PermMap<Process>) -> VerifResult {
    let pdom = procs.dom();
    for (p_ptr, perm) in procs.iter() {
        let p = perm.value();

        // Containment: the owning container exists and lists the process.
        check(
            cntrs.contains(p.owning_container),
            "process_tree",
            format!("process {p_ptr:#x} owned by unknown container"),
        )?;
        let cntr = cntrs.value(p.owning_container);
        check(
            cntr.owned_procs.contains(&p_ptr),
            "process_tree",
            format!("container does not record process {p_ptr:#x}"),
        )?;

        check(
            p.children.no_duplicates() && p.threads.no_duplicates(),
            "process_tree",
            format!("process {p_ptr:#x} has duplicate children or threads"),
        )?;
        for child in p.children.iter() {
            check(
                pdom.contains(&child),
                "process_tree",
                format!("child process {child:#x} not in the map"),
            )?;
            let c = procs.value(child);
            check(
                c.parent == Some(p_ptr),
                "process_tree",
                format!("child {child:#x} does not point back to {p_ptr:#x}"),
            )?;
            check(
                c.owning_container == p.owning_container,
                "process_tree",
                format!("child {child:#x} crossed container boundary"),
            )?;
        }

        match p.parent {
            None => {
                check(
                    cntr.root_procs.contains(&p_ptr),
                    "process_tree",
                    format!("top-level process {p_ptr:#x} missing from container roots"),
                )?;
                check(
                    p.path.is_empty(),
                    "process_tree",
                    format!("top-level process {p_ptr:#x} with nonempty path"),
                )?;
            }
            Some(par) => {
                check(
                    pdom.contains(&par),
                    "process_tree",
                    format!("parent {par:#x} of {p_ptr:#x} not in the map"),
                )?;
                check(
                    procs.value(par).children.contains(&p_ptr),
                    "process_tree",
                    format!("parent {par:#x} does not list {p_ptr:#x}"),
                )?;
                check(
                    *p.path.view() == procs.value(par).path.push(par),
                    "process_tree",
                    format!("path of {p_ptr:#x} is not parent path + parent"),
                )?;
            }
        }
        check(
            !p.path.contains(&p_ptr),
            "process_tree",
            format!("process {p_ptr:#x} on its own path (cycle)"),
        )?;
    }

    // Container-side ghost sets only name live processes of that container,
    // and every root-process entry is live and parentless.
    for (c_ptr, perm) in cntrs.iter() {
        let c = perm.value();
        for p in c.owned_procs.iter() {
            check(
                pdom.contains(p) && procs.value(*p).owning_container == c_ptr,
                "process_tree",
                format!("container {c_ptr:#x} claims foreign/dead process {p:#x}"),
            )?;
        }
        for p in c.root_procs.iter() {
            check(
                pdom.contains(&p) && procs.value(p).parent.is_none(),
                "process_tree",
                format!("container {c_ptr:#x} lists invalid root process {p:#x}"),
            )?;
        }
    }

    // Address spaces are private: no two processes share one.
    let mut seen = std::collections::BTreeSet::new();
    for (p_ptr, perm) in procs.iter() {
        check(
            seen.insert(perm.value().addr_space),
            "process_tree",
            format!("process {p_ptr:#x} shares an address space"),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::{PointsTo, Set};

    fn one_container_two_procs() -> (PermMap<Container>, PermMap<Process>) {
        let c_ptr = 0x1000;
        let p1 = 0x2000;
        let p2 = 0x3000;

        let mut c = Container::new_root(100, Set::empty());
        c.root_procs.push(p1);
        c.owned_procs.assign(Set::from_slice(&[p1, p2]));

        let mut proc1 = Process::new(c_ptr, None, Seq::empty(), 1);
        proc1.children.push(p2);
        let proc2 = Process::new(c_ptr, Some(p1), Seq::empty(), 2);

        let mut cm = PermMap::new();
        cm.tracked_insert(c_ptr, PointsTo::new_init(c_ptr, c));
        let mut pmap = PermMap::new();
        pmap.tracked_insert(p1, PointsTo::new_init(p1, proc1));
        pmap.tracked_insert(p2, PointsTo::new_init(p2, proc2));
        (cm, pmap)
    }

    #[test]
    fn two_process_tree_is_wf() {
        let (cm, pm) = one_container_two_procs();
        assert!(process_forest_wf(&cm, &pm).is_ok());
    }

    #[test]
    fn detects_cross_container_child() {
        let (mut cm, mut pm) = one_container_two_procs();
        // Add a second container and move p2's ownership there without
        // relinking: the child crosses the boundary.
        let c2 = 0x5000;
        cm.tracked_insert(
            c2,
            PointsTo::new_init(c2, {
                let mut c = Container::new_child(0x1000, &Seq::empty(), 1, 10, Set::empty());
                c.owned_procs.assign(Set::from_slice(&[0x3000]));
                c
            }),
        );
        let ptr = atmo_spec::PPtr::<Process>::from_usize(0x3000);
        ptr.borrow_mut(pm.tracked_borrow_mut(0x3000))
            .owning_container = c2;
        assert!(process_forest_wf(&cm, &pm).is_err());
    }

    #[test]
    fn detects_shared_address_space() {
        let (cm, mut pm) = one_container_two_procs();
        let ptr = atmo_spec::PPtr::<Process>::from_usize(0x3000);
        ptr.borrow_mut(pm.tracked_borrow_mut(0x3000)).addr_space = 1;
        let err = process_forest_wf(&cm, &pm).unwrap_err();
        assert!(err.detail.contains("address space"));
    }

    #[test]
    fn detects_missing_root_listing() {
        let (mut cm, pm) = one_container_two_procs();
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x1000);
        ptr.borrow_mut(cm.tracked_borrow_mut(0x1000)).root_procs = StaticList::new();
        assert!(process_forest_wf(&cm, &pm).is_err());
    }

    #[test]
    fn detects_ghost_set_staleness() {
        let (mut cm, pm) = one_container_two_procs();
        let ptr = atmo_spec::PPtr::<Container>::from_usize(0x1000);
        ptr.borrow_mut(cm.tracked_borrow_mut(0x1000))
            .owned_procs
            .assign(Set::from_slice(&[0x2000, 0x3000, 0x9999]));
        assert!(process_forest_wf(&cm, &pm).is_err());
    }
}
