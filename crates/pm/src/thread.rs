//! Threads: execution contexts, endpoint descriptors and IPC buffers.
//!
//! Listing 1 of the paper dereferences a raw `ThrdPtr` through the flat
//! `thrd_perms` map to reach `thread.owning_proc` — the same layout used
//! here. Each thread carries a fixed table of endpoint descriptors
//! (`get_thrd_edpt_descriptors(t)[idx]` in the isolation invariants of
//! §4.3), an IPC transfer buffer, and reverse pointers to its process and
//! container.

use atmo_spec::harness::{check, VerifResult};
use atmo_spec::PermMap;

use crate::container::Container;
use crate::endpoint::Endpoint;
use crate::process::Process;
use crate::types::{
    CtnrPtr, EdptPtr, IpcPayload, ProcPtr, ThrdPtr, ThreadState, MAX_ENDPOINT_SLOTS,
};

/// A thread kernel object (one per 4 KiB page).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Thread {
    /// The process this thread executes in.
    pub owning_proc: ProcPtr,
    /// Reverse pointer to the owning container (cached; equals
    /// `procs[owning_proc].owning_container`).
    pub owning_cntr: CtnrPtr,
    /// Scheduling/blocking state.
    pub state: ThreadState,
    /// Endpoint descriptor table: slot → endpoint.
    pub edpt_descriptors: [Option<EdptPtr>; MAX_ENDPOINT_SLOTS],
    /// In-flight IPC payload (set while blocked sending, or after a
    /// message was delivered to this thread).
    pub ipc_buf: Option<IpcPayload>,
    /// For a receiver that accepted a `call`: the caller awaiting reply.
    pub reply_partner: Option<ThrdPtr>,
    /// `true` when the thread's pending send is a `call` (expects reply).
    pub is_calling: bool,
}

impl Thread {
    /// A fresh, ready thread of `proc` in `cntr`.
    pub fn new(proc: ProcPtr, cntr: CtnrPtr) -> Self {
        Thread {
            owning_proc: proc,
            owning_cntr: cntr,
            state: ThreadState::Ready,
            edpt_descriptors: [None; MAX_ENDPOINT_SLOTS],
            ipc_buf: None,
            reply_partner: None,
            is_calling: false,
        }
    }

    /// First free descriptor slot, if any.
    pub fn free_slot(&self) -> Option<usize> {
        self.edpt_descriptors.iter().position(|d| d.is_none())
    }

    /// The endpoint in `slot`, if valid and installed.
    pub fn descriptor(&self, slot: usize) -> Option<EdptPtr> {
        self.edpt_descriptors.get(slot).copied().flatten()
    }
}

/// Global thread well-formedness (`threads_wf` of §4.1), stated flat:
/// every thread's reverse pointers agree with the process and container
/// maps, descriptors reference live endpoints, and blocked states are
/// mirrored by endpoint queues / reply partners.
pub fn threads_wf(
    cntrs: &PermMap<Container>,
    procs: &PermMap<Process>,
    thrds: &PermMap<Thread>,
    edpts: &PermMap<Endpoint>,
) -> VerifResult {
    for (t_ptr, perm) in thrds.iter() {
        let t = perm.value();

        check(
            procs.contains(t.owning_proc),
            "threads",
            format!("thread {t_ptr:#x} owned by unknown process"),
        )?;
        let p = procs.value(t.owning_proc);
        check(
            p.threads.contains(&t_ptr),
            "threads",
            format!("process does not list thread {t_ptr:#x}"),
        )?;
        check(
            t.owning_cntr == p.owning_container,
            "threads",
            format!("thread {t_ptr:#x} container cache is stale"),
        )?;
        check(
            cntrs.contains(t.owning_cntr)
                && cntrs.value(t.owning_cntr).owned_thrds.contains(&t_ptr),
            "threads",
            format!("container does not record thread {t_ptr:#x}"),
        )?;

        for d in t.edpt_descriptors.iter().flatten() {
            check(
                edpts.contains(*d),
                "threads",
                format!("thread {t_ptr:#x} holds descriptor to dead endpoint {d:#x}"),
            )?;
        }

        match t.state {
            ThreadState::BlockedSend(e) | ThreadState::BlockedRecv(e) => {
                check(
                    edpts.contains(e),
                    "threads",
                    format!("thread {t_ptr:#x} blocked on dead endpoint {e:#x}"),
                )?;
                check(
                    edpts.value(e).queue.contains(&t_ptr),
                    "threads",
                    format!("blocked thread {t_ptr:#x} missing from endpoint queue"),
                )?;
            }
            ThreadState::BlockedReply(e) => {
                check(
                    edpts.contains(e),
                    "threads",
                    format!("thread {t_ptr:#x} awaiting reply on dead endpoint {e:#x}"),
                )?;
                // Some live thread must owe this thread a reply.
                let owed = thrds
                    .iter()
                    .any(|(_, q)| q.value().reply_partner == Some(t_ptr));
                check(
                    owed,
                    "threads",
                    format!("no thread owes a reply to {t_ptr:#x}"),
                )?;
            }
            ThreadState::Ready | ThreadState::Running(_) => {}
        }
    }

    // Container ghost thread sets only name live threads of the container.
    for (c_ptr, perm) in cntrs.iter() {
        for t in perm.value().owned_thrds.iter() {
            check(
                thrds.contains(*t) && thrds.value(*t).owning_cntr == c_ptr,
                "threads",
                format!("container {c_ptr:#x} claims foreign/dead thread {t:#x}"),
            )?;
        }
    }

    // Reply partners are live and actually awaiting a reply.
    for (t_ptr, perm) in thrds.iter() {
        if let Some(rp) = perm.value().reply_partner {
            check(
                thrds.contains(rp),
                "threads",
                format!("thread {t_ptr:#x} owes reply to dead thread {rp:#x}"),
            )?;
            check(
                matches!(thrds.value(rp).state, ThreadState::BlockedReply(_)),
                "threads",
                format!("reply partner {rp:#x} of {t_ptr:#x} is not awaiting reply"),
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::{PointsTo, Seq, Set};

    fn fixture() -> (
        PermMap<Container>,
        PermMap<Process>,
        PermMap<Thread>,
        PermMap<Endpoint>,
    ) {
        let c_ptr = 0x1000;
        let p_ptr = 0x2000;
        let t_ptr = 0x3000;

        let mut c = Container::new_root(100, Set::empty());
        c.root_procs.push(p_ptr);
        c.owned_procs.assign(Set::from_slice(&[p_ptr]));
        c.owned_thrds.assign(Set::from_slice(&[t_ptr]));

        let mut p = Process::new(c_ptr, None, Seq::empty(), 1);
        p.threads.push(t_ptr);

        let t = Thread::new(p_ptr, c_ptr);

        let mut cm = PermMap::new();
        cm.tracked_insert(c_ptr, PointsTo::new_init(c_ptr, c));
        let mut pm = PermMap::new();
        pm.tracked_insert(p_ptr, PointsTo::new_init(p_ptr, p));
        let mut tm = PermMap::new();
        tm.tracked_insert(t_ptr, PointsTo::new_init(t_ptr, t));
        (cm, pm, tm, PermMap::new())
    }

    #[test]
    fn healthy_thread_is_wf() {
        let (cm, pm, tm, em) = fixture();
        assert!(threads_wf(&cm, &pm, &tm, &em).is_ok());
    }

    #[test]
    fn detects_stale_container_cache() {
        let (cm, pm, mut tm, em) = fixture();
        let ptr = atmo_spec::PPtr::<Thread>::from_usize(0x3000);
        ptr.borrow_mut(tm.tracked_borrow_mut(0x3000)).owning_cntr = 0x9999;
        assert!(threads_wf(&cm, &pm, &tm, &em).is_err());
    }

    #[test]
    fn detects_dead_descriptor() {
        let (cm, pm, mut tm, em) = fixture();
        let ptr = atmo_spec::PPtr::<Thread>::from_usize(0x3000);
        ptr.borrow_mut(tm.tracked_borrow_mut(0x3000))
            .edpt_descriptors[0] = Some(0x7000);
        let err = threads_wf(&cm, &pm, &tm, &em).unwrap_err();
        assert!(err.detail.contains("dead endpoint"));
    }

    #[test]
    fn detects_blocked_thread_missing_from_queue() {
        let (cm, pm, mut tm, mut em) = fixture();
        em.tracked_insert(0x7000, PointsTo::new_init(0x7000, Endpoint::new(0x1000)));
        let ptr = atmo_spec::PPtr::<Thread>::from_usize(0x3000);
        ptr.borrow_mut(tm.tracked_borrow_mut(0x3000)).state = ThreadState::BlockedSend(0x7000);
        assert!(threads_wf(&cm, &pm, &tm, &em).is_err());
    }

    #[test]
    fn free_slot_scans_table() {
        let mut t = Thread::new(0x2000, 0x1000);
        assert_eq!(t.free_slot(), Some(0));
        t.edpt_descriptors[0] = Some(0x7000);
        assert_eq!(t.free_slot(), Some(1));
        assert_eq!(t.descriptor(0), Some(0x7000));
        assert_eq!(t.descriptor(1), None);
        assert_eq!(t.descriptor(MAX_ENDPOINT_SLOTS + 5), None);
    }
}
