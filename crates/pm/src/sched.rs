//! The per-CPU round-robin scheduler.
//!
//! Atmosphere partitions CPU cores among containers (a container's
//! reservation, §3); each core runs a round-robin queue of threads whose
//! containers own that core. Strict core partitioning is part of what
//! makes the non-interference argument go through: a thread of container A
//! can never occupy a core reserved for container B.

use atmo_spec::harness::{check, VerifResult};
use atmo_spec::PermMap;
use atmo_trace::{KernelEvent, TraceHandle, TraceShare};

use crate::container::Container;
use crate::staticlist::StaticList;
use crate::thread::Thread;
use crate::types::{CpuId, ThrdPtr, ThreadState};

/// Ready-queue capacity per CPU.
pub const MAX_READY_QUEUE: usize = 64;

/// Per-CPU scheduling state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuSched {
    /// The thread currently executing on this CPU.
    pub current: Option<ThrdPtr>,
    /// Runnable threads, FIFO.
    pub ready: StaticList<ThrdPtr, MAX_READY_QUEUE>,
}

impl CpuSched {
    fn new() -> Self {
        CpuSched {
            current: None,
            ready: StaticList::new(),
        }
    }
}

/// The scheduler: one queue per CPU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scheduler {
    cpus: Vec<CpuSched>,
    /// Context-switch event sink (always-equal share: tracing does not
    /// change scheduler state).
    trace: TraceShare,
}

impl Scheduler {
    /// A scheduler for `ncpus` cores, all idle.
    pub fn new(ncpus: usize) -> Self {
        Scheduler {
            cpus: (0..ncpus).map(|_| CpuSched::new()).collect(),
            trace: TraceShare::detached(),
        }
    }

    /// Routes context-switch events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Emits a context-switch event when the running thread actually
    /// changed.
    fn note_switch(&self, cpu: CpuId, from: Option<ThrdPtr>, to: Option<ThrdPtr>) {
        if from != to {
            self.trace
                .emit(KernelEvent::ContextSwitch { cpu, from, to });
        }
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> usize {
        self.cpus.len()
    }

    /// The running thread on `cpu`.
    pub fn current(&self, cpu: CpuId) -> Option<ThrdPtr> {
        self.cpus.get(cpu).and_then(|c| c.current)
    }

    /// Read-only view of `cpu`'s ready queue. Borrows the queue's
    /// backing storage — no per-call allocation (the `sched_wf` audit
    /// walks every queue on every syscall, so a `Vec` clone here was a
    /// hot allocation).
    pub fn ready_queue(&self, cpu: CpuId) -> &[ThrdPtr] {
        self.cpus
            .get(cpu)
            .map(|c| c.ready.as_slice())
            .unwrap_or(&[])
    }

    /// Enqueues a runnable thread on `cpu`. Returns `false` when the queue
    /// is full or the CPU does not exist.
    pub fn enqueue(&mut self, cpu: CpuId, t: ThrdPtr) -> bool {
        match self.cpus.get_mut(cpu) {
            Some(c) => c.ready.push(t),
            None => false,
        }
    }

    /// Removes `t` from wherever it is queued or running. Returns `true`
    /// when it was found.
    pub fn remove(&mut self, t: ThrdPtr) -> bool {
        for cpu in 0..self.cpus.len() {
            if self.cpus[cpu].current == Some(t) {
                self.cpus[cpu].current = None;
                self.note_switch(cpu, Some(t), None);
                return true;
            }
            if self.cpus[cpu].ready.remove(&t) {
                return true;
            }
        }
        false
    }

    /// Round-robin step on `cpu`: the current thread (if any) goes to the
    /// back of the queue, the front becomes current. Returns the new
    /// current thread.
    pub fn rotate(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        let c = self.cpus.get_mut(cpu)?;
        let prev = c.current;
        if let Some(cur) = c.current.take() {
            let pushed = c.ready.push(cur);
            debug_assert!(pushed, "ready queue overflow on rotate");
        }
        c.current = c.ready.pop_front();
        let next = c.current;
        self.note_switch(cpu, prev, next);
        next
    }

    /// Makes the front of `cpu`'s queue current without requeueing the
    /// previous thread (used when the previous thread blocked).
    pub fn dispatch(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        let c = self.cpus.get_mut(cpu)?;
        debug_assert!(c.current.is_none(), "dispatch over a running thread");
        c.current = c.ready.pop_front();
        let next = c.current;
        self.note_switch(cpu, None, next);
        next
    }

    /// Marks `t` as the thread currently running on `cpu` (boot/init path).
    pub fn set_current(&mut self, cpu: CpuId, t: ThrdPtr) {
        let c = &mut self.cpus[cpu];
        debug_assert!(c.current.is_none(), "CPU already running a thread");
        c.current = Some(t);
        self.note_switch(cpu, None, Some(t));
    }

    /// Direct handoff: replaces `cpu`'s current thread `from` with `to`
    /// without touching the ready queue — the fastpath IPC switch. The
    /// displaced thread is the caller's responsibility (it blocks on the
    /// endpoint or its reply slot, never lands in the ready queue).
    pub fn switch_current(&mut self, cpu: CpuId, from: ThrdPtr, to: ThrdPtr) {
        let c = &mut self.cpus[cpu];
        debug_assert_eq!(c.current, Some(from), "handoff from a non-running thread");
        debug_assert!(
            !c.ready.contains(&to),
            "handoff target must come from an endpoint, not the ready queue"
        );
        c.current = Some(to);
        self.note_switch(cpu, Some(from), Some(to));
    }

    /// Takes the current thread off `cpu` (it blocked or exited).
    pub fn clear_current(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        let prev = self.cpus.get_mut(cpu).and_then(|c| c.current.take());
        self.note_switch(cpu, prev, None);
        prev
    }
}

/// Scheduler well-formedness: every queued/running thread is live and in
/// the matching state, appears on at most one CPU, and runs only on a core
/// its container (or one of its ancestors) owns.
pub fn sched_wf(
    sched: &Scheduler,
    cntrs: &PermMap<Container>,
    thrds: &PermMap<Thread>,
) -> VerifResult {
    let mut seen: Vec<ThrdPtr> = Vec::new();
    for cpu in 0..sched.ncpus() {
        let queued = sched.ready_queue(cpu).iter().copied();
        for t in queued.chain(sched.current(cpu)) {
            check(
                thrds.contains(t),
                "scheduler",
                format!("dead thread {t:#x} scheduled on CPU {cpu}"),
            )?;
            check(
                !seen.contains(&t),
                "scheduler",
                format!("thread {t:#x} scheduled twice"),
            )?;
            seen.push(t);

            let thread = thrds.value(t);
            let expected = if sched.current(cpu) == Some(t) {
                matches!(thread.state, ThreadState::Running(c) if c == cpu)
            } else {
                thread.state == ThreadState::Ready
            };
            check(
                expected,
                "scheduler",
                format!(
                    "thread {t:#x} state {:?} inconsistent with CPU {cpu}",
                    thread.state
                ),
            )?;

            // CPU ownership: the owning container or an ancestor owns the core.
            let c = thread.owning_cntr;
            check(
                cntrs.contains(c),
                "scheduler",
                format!("scheduled thread {t:#x} of unknown container"),
            )?;
            let cntr = cntrs.value(c);
            let owns = cntr.owned_cpus.contains(&cpu)
                || cntr
                    .path
                    .iter()
                    .any(|anc| cntrs.contains(*anc) && cntrs.value(*anc).owned_cpus.contains(&cpu));
            check(
                owns,
                "scheduler",
                format!("thread {t:#x} runs on CPU {cpu} its container does not own"),
            )?;
        }
    }

    // Conversely, every Ready/Running thread is scheduled somewhere.
    for (t_ptr, perm) in thrds.iter() {
        match perm.value().state {
            ThreadState::Ready | ThreadState::Running(_) => {
                check(
                    seen.contains(&t_ptr),
                    "scheduler",
                    format!("runnable thread {t_ptr:#x} not scheduled on any CPU"),
                )?;
            }
            _ => {
                check(
                    !seen.contains(&t_ptr),
                    "scheduler",
                    format!("blocked thread {t_ptr:#x} still scheduled"),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_is_round_robin() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 0xa);
        s.enqueue(0, 0xb);
        assert_eq!(s.rotate(0), Some(0xa));
        assert_eq!(s.rotate(0), Some(0xb));
        assert_eq!(s.rotate(0), Some(0xa), "wraps around");
        assert_eq!(s.ready_queue(0), &[0xb]);
    }

    #[test]
    fn dispatch_after_block() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 0xa);
        s.enqueue(0, 0xb);
        s.dispatch(0);
        assert_eq!(s.current(0), Some(0xa));
        // 0xa blocks: clear and dispatch the next.
        assert_eq!(s.clear_current(0), Some(0xa));
        assert_eq!(s.dispatch(0), Some(0xb));
    }

    #[test]
    fn remove_finds_thread_anywhere() {
        let mut s = Scheduler::new(2);
        s.enqueue(0, 0xa);
        s.enqueue(1, 0xb);
        s.dispatch(1);
        assert!(s.remove(0xa), "from a ready queue");
        assert!(s.remove(0xb), "from current");
        assert!(!s.remove(0xc));
        assert_eq!(s.current(1), None);
    }

    #[test]
    fn switch_current_bypasses_ready_queue() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 0xa);
        s.enqueue(0, 0xc);
        s.dispatch(0);
        assert_eq!(s.current(0), Some(0xa));
        // Direct handoff to 0xb (a thread parked on an endpoint, not in
        // the queue): current changes, the queue is untouched.
        s.switch_current(0, 0xa, 0xb);
        assert_eq!(s.current(0), Some(0xb));
        assert_eq!(s.ready_queue(0), &[0xc]);
    }

    #[test]
    fn rotate_on_empty_cpu_idles() {
        let mut s = Scheduler::new(1);
        assert_eq!(s.rotate(0), None);
        assert_eq!(s.current(0), None);
    }

    #[test]
    fn per_cpu_isolation_of_queues() {
        let mut s = Scheduler::new(2);
        s.enqueue(0, 0xa);
        assert!(s.ready_queue(1).is_empty());
        assert_eq!(s.ready_queue(0), &[0xa]);
    }
}
