//! The O(1) multi-tenant scheduler: bitmap-indexed MLFQ run queues with
//! per-container CPU-budget accounts and IPC budget inheritance.
//!
//! Atmosphere partitions CPU cores among containers (a container's
//! reservation, §3); each core runs a queue of threads whose containers
//! own that core (directly or through an ancestor — the rule that lets
//! thousands of zero-core tenants share an ancestor's cores). Three
//! mechanisms generalize the paper's fixed 3-container configuration to
//! N tenants:
//!
//! * **Bitmap-indexed MLFQ run queues.** Each CPU holds
//!   [`MLFQ_LEVELS`] intrusive doubly-linked lists over a shared slab
//!   of nodes, plus a one-word occupancy bitmap. Enqueue links at a
//!   tail, pick is `trailing_zeros` + unlink-head, and a per-thread
//!   location index makes [`remove`](Scheduler::remove) O(1) from
//!   anywhere — no 64-entry cap, no linear scans, pick cost flat in
//!   both queue depth and tenant count. With MLFQ demotion off (the
//!   default) every thread lives at level 0 and the pick order is
//!   bit-for-bit the old round-robin FIFO.
//! * **Per-container budget accounts.** A weighted container holds a
//!   [`BudgetAccount`]; its threads' timer ticks consume units and a
//!   hierarchical timer wheel grants `weight` units per refill period,
//!   so long-run CPU shares are weight-proportional. An exhausted
//!   account is *throttled*: its Ready threads are parked off the run
//!   queues entirely, so an idle or throttled tenant costs the pick
//!   path nothing.
//! * **Budget inheritance.** A client's direct IPC handoff into a
//!   shared server marks the server thread as billed to the client's
//!   account, so one verified service can multiplex thousands of
//!   clients without its own account being drained by any one of them.
//!
//! The budget ledger is a linear resource: every account satisfies
//! `granted = consumed + refunded + remaining`, checked per account by
//! [`sched_wf`] and globally by the kernel's budget-conservation audit
//! (grants, charges and refunds emit [`AuditDelta`]s into the
//! incremental audit ledger; retired accounts fold into running totals
//! so the stop-the-world cross-check stays bit-for-bit).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Instant;

use atmo_spec::harness::{check, VerifResult};
use atmo_spec::PermMap;
use atmo_trace::{ns_to_cycles, AuditDelta, KernelEvent, SchedOutcome, TraceHandle, TraceShare};

use crate::container::Container;
use crate::thread::Thread;
use crate::types::{CpuId, CtnrPtr, ThrdPtr, ThreadState};

/// MLFQ priority levels per CPU (level 0 is highest; all threads live
/// at level 0 while demotion is disabled, reproducing the old FIFO).
pub const MLFQ_LEVELS: usize = 4;

/// Timer ticks between budget refills of one account.
pub const REFILL_PERIOD: u64 = 16;

/// An account's `remaining` budget is capped at `weight` times this
/// (the burst a tenant can accumulate while idle).
pub const BURST_MULTIPLIER: u64 = 4;

/// Slots per timer-wheel level (PR 9 idiom: 64-slot levels, one tick
/// per low-level slot, 64 ticks per high-level slot).
const WHEEL_SLOTS: usize = 64;

/// Null link in the intrusive slab.
const NIL: usize = usize::MAX;

/// One slab node: a queued thread and its intrusive list links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SlabNode {
    thread: ThrdPtr,
    prev: usize,
    next: usize,
}

/// Where a thread known to the scheduler currently lives — the O(1)
/// location index behind [`Scheduler::remove`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Loc {
    /// Linked into `cpu`'s level-`level` run queue at slab slot `slot`.
    Queued {
        cpu: CpuId,
        level: usize,
        slot: usize,
    },
    /// Parked off the run queues in its container's throttled account,
    /// at index `idx` of that account's parked list.
    Parked { cntr: CtnrPtr, idx: usize },
    /// Currently running on `cpu`.
    Running { cpu: CpuId },
}

/// Per-CPU scheduling state: the running thread plus [`MLFQ_LEVELS`]
/// intrusive lists indexed by an occupancy bitmap.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CpuSched {
    /// The thread currently executing on this CPU.
    current: Option<ThrdPtr>,
    /// The level `current` was picked from (demotion target on rotate).
    current_level: usize,
    /// Head slab slot per level (`NIL` = empty).
    head: [usize; MLFQ_LEVELS],
    /// Tail slab slot per level.
    tail: [usize; MLFQ_LEVELS],
    /// Queued threads per level.
    len: [u64; MLFQ_LEVELS],
    /// Bit `l` set iff level `l` is non-empty (`trailing_zeros` pick).
    occupancy: u64,
}

impl CpuSched {
    fn new() -> Self {
        CpuSched {
            current: None,
            current_level: 0,
            head: [NIL; MLFQ_LEVELS],
            tail: [NIL; MLFQ_LEVELS],
            len: [0; MLFQ_LEVELS],
            occupancy: 0,
        }
    }
}

/// One container's CPU-budget account (a linear resource: the
/// conservation equation `granted = consumed + refunded + remaining`
/// holds at every step and is audited by [`sched_wf`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BudgetAccount {
    /// Scheduling weight (units granted per refill period; never 0 for
    /// a live account — weight 0 means "no account", the unmetered
    /// strict-partition degenerate case).
    pub weight: u32,
    /// Units currently available to spend.
    pub remaining: u64,
    /// Lifetime units granted by refills (monotone).
    pub granted: u64,
    /// Lifetime units consumed by running threads (monotone).
    pub consumed: u64,
    /// Lifetime units refunded at teardown (monotone).
    pub refunded: u64,
    /// Ticks that ran on this account while `remaining` was already 0
    /// (a thread current on another CPU when the budget hit zero, or
    /// one last tick before the throttle lands). Settled out of the
    /// next refill grant — `consumed` grows instead of `remaining` —
    /// so the time is billed late rather than never. Outside the
    /// conservation equation until settled; dropped at teardown.
    pub debt: u64,
    /// Throttled — by exhaustion or administratively: the container's
    /// Ready threads are parked here instead of occupying run-queue
    /// slots.
    pub throttled: bool,
    /// Administratively throttled via `SchedThrottle`. Refills never
    /// clear this — only an explicit administrative unthrottle does —
    /// whereas a pure exhaustion throttle lifts as soon as a refill
    /// restores budget.
    pub admin_throttled: bool,
    /// Parked threads and the home CPU each re-enqueues to on refill.
    parked: Vec<(ThrdPtr, CpuId)>,
}

impl BudgetAccount {
    /// Threads currently parked in this account.
    pub fn parked(&self) -> &[(ThrdPtr, CpuId)] {
        &self.parked
    }
}

/// Outcome of charging one timer tick to a container's account.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeOutcome {
    /// The billed container has no account (weight 0): the unmetered
    /// strict-partition degenerate case.
    Unmetered,
    /// One unit consumed; budget remains.
    Charged,
    /// The charge consumed the last unit (or none remained): the
    /// container should be throttled until the wheel refills it.
    Exhausted,
}

/// The scheduler: per-CPU bitmap-indexed MLFQ run queues over a shared
/// intrusive slab, per-container budget accounts driven by a
/// hierarchical refill wheel, and the per-thread location index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scheduler {
    cpus: Vec<CpuSched>,
    /// Shared node slab for every CPU's intrusive lists.
    slab: Vec<SlabNode>,
    /// Free slab slots (stack).
    free: Vec<usize>,
    /// Thread → current location. Never iterated (iteration order would
    /// be nondeterministic); every lookup is point-wise.
    index: HashMap<ThrdPtr, Loc>,
    /// Container budget accounts, keyed by container page (`BTreeMap`
    /// so [`budget_totals`](Self::budget_totals) folds
    /// deterministically).
    budgets: BTreeMap<CtnrPtr, BudgetAccount>,
    /// Budget totals of accounts already torn down, so lifetime sums
    /// survive container churn and the stop-the-world audit can
    /// cross-check the incremental ledger bit-for-bit:
    /// `(granted, consumed, refunded)`.
    retired: (u64, u64, u64),
    /// Thread → container whose account its CPU time bills to (set on
    /// an inheriting IPC handoff, cleared when the handoff unwinds).
    /// Never iterated.
    inherited: HashMap<ThrdPtr, CtnrPtr>,
    /// Accounts with a pending refill-wheel entry (guards against
    /// double-arming across teardown/re-create churn).
    armed: BTreeSet<CtnrPtr>,
    /// Low wheel level: one slot per tick.
    wheel_lo: Vec<Vec<CtnrPtr>>,
    /// High wheel level: one slot per [`WHEEL_SLOTS`] ticks; entries
    /// carry their due tick for the boundary cascade.
    wheel_hi: Vec<Vec<(CtnrPtr, u64)>>,
    /// Global tick count (advanced once per [`timer_tick`] on any CPU).
    ///
    /// [`timer_tick`]: crate::ProcessManager::timer_tick
    wheel_now: u64,
    /// MLFQ demotion switch. Off by default: every thread stays at
    /// level 0 and the scheduler is bit-identical to the old FIFO.
    mlfq_enabled: bool,
    /// Context-switch / scheduler-counter sink (always-equal share:
    /// tracing does not change scheduler state).
    trace: TraceShare,
}

impl Scheduler {
    /// A scheduler for `ncpus` cores, all idle, no accounts.
    pub fn new(ncpus: usize) -> Self {
        Scheduler {
            cpus: (0..ncpus).map(|_| CpuSched::new()).collect(),
            slab: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            budgets: BTreeMap::new(),
            retired: (0, 0, 0),
            inherited: HashMap::new(),
            armed: BTreeSet::new(),
            wheel_lo: vec![Vec::new(); WHEEL_SLOTS],
            wheel_hi: vec![Vec::new(); WHEEL_SLOTS],
            wheel_now: 0,
            mlfq_enabled: false,
            trace: TraceShare::detached(),
        }
    }

    /// Routes context-switch events and scheduler counters into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Enables or disables MLFQ demotion on rotate. Disabled (the
    /// default) reproduces the old round-robin FIFO bit-for-bit.
    pub fn set_mlfq(&mut self, on: bool) {
        self.mlfq_enabled = on;
    }

    /// Emits a context-switch event when the running thread actually
    /// changed.
    fn note_switch(&self, cpu: CpuId, from: Option<ThrdPtr>, to: Option<ThrdPtr>) {
        if from != to {
            self.trace
                .emit(KernelEvent::ContextSwitch { cpu, from, to });
        }
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> usize {
        self.cpus.len()
    }

    /// The running thread on `cpu`.
    pub fn current(&self, cpu: CpuId) -> Option<ThrdPtr> {
        self.cpus.get(cpu).and_then(|c| c.current)
    }

    // ----- intrusive slab plumbing -----------------------------------------

    fn alloc_node(&mut self, t: ThrdPtr) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = SlabNode {
                    thread: t,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(SlabNode {
                    thread: t,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        }
    }

    /// Links `t` at the tail of `cpu`'s level-`level` list and indexes
    /// it. O(1).
    fn push_level(&mut self, cpu: CpuId, t: ThrdPtr, level: usize) {
        debug_assert!(
            !self.index.contains_key(&t),
            "thread {t:#x} enqueued while already scheduled"
        );
        let slot = self.alloc_node(t);
        let c = &mut self.cpus[cpu];
        let old_tail = c.tail[level];
        self.slab[slot].prev = old_tail;
        if old_tail == NIL {
            c.head[level] = slot;
        } else {
            self.slab[old_tail].next = slot;
        }
        c.tail[level] = slot;
        c.len[level] += 1;
        c.occupancy |= 1 << level;
        self.index.insert(t, Loc::Queued { cpu, level, slot });
        self.trace.sched(SchedOutcome::Enqueue, 1);
    }

    /// Unlinks slab `slot` from `cpu`'s level-`level` list (index entry
    /// is the caller's responsibility). O(1).
    fn unlink(&mut self, cpu: CpuId, level: usize, slot: usize) {
        let (prev, next) = {
            let n = &self.slab[slot];
            (n.prev, n.next)
        };
        let c = &mut self.cpus[cpu];
        if prev == NIL {
            c.head[level] = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            c.tail[level] = prev;
        } else {
            self.slab[next].prev = prev;
        }
        c.len[level] -= 1;
        if c.len[level] == 0 {
            c.occupancy &= !(1 << level);
        }
        self.free.push(slot);
    }

    /// Finds-first-set on the occupancy bitmap and dequeues the head of
    /// that level. O(1).
    fn pop_first(&mut self, cpu: CpuId) -> Option<(ThrdPtr, usize)> {
        let occ = self.cpus[cpu].occupancy;
        if occ == 0 {
            return None;
        }
        let level = occ.trailing_zeros() as usize;
        let slot = self.cpus[cpu].head[level];
        let t = self.slab[slot].thread;
        self.unlink(cpu, level, slot);
        self.index.remove(&t);
        Some((t, level))
    }

    /// Linear presence scan — the old O(ncpus·queue) path, kept only to
    /// cross-validate the O(1) location index in debug builds.
    #[cfg(debug_assertions)]
    fn scan_presence(&self, t: ThrdPtr) -> bool {
        for c in &self.cpus {
            if c.current == Some(t) {
                return true;
            }
            for level in 0..MLFQ_LEVELS {
                let mut slot = c.head[level];
                while slot != NIL {
                    if self.slab[slot].thread == t {
                        return true;
                    }
                    slot = self.slab[slot].next;
                }
            }
        }
        self.budgets
            .values()
            .any(|a| a.parked.iter().any(|&(p, _)| p == t))
    }

    // ----- run-queue operations --------------------------------------------

    /// Read-only view of `cpu`'s ready queue in pick order (level 0
    /// first, FIFO within a level). Builds a `Vec` on demand — external
    /// callers only inspect it; the hot `sched_wf` walk iterates the
    /// intrusive lists directly via [`queued`](Self::queued).
    pub fn ready_queue(&self, cpu: CpuId) -> Vec<ThrdPtr> {
        self.queued(cpu).collect()
    }

    /// Iterates `cpu`'s queued threads in pick order without
    /// allocating.
    pub fn queued(&self, cpu: CpuId) -> QueuedIter<'_> {
        QueuedIter {
            sched: self,
            cpu,
            level: 0,
            slot: self.cpus.get(cpu).map(|c| c.head[0]).unwrap_or(NIL),
        }
    }

    /// Enqueues a runnable thread on `cpu` at the top MLFQ level.
    /// Overflow is impossible: the intrusive slab grows as needed, so —
    /// unlike the old fixed 64-slot queue — a runnable thread is never
    /// silently dropped.
    pub fn enqueue(&mut self, cpu: CpuId, t: ThrdPtr) {
        if cpu >= self.cpus.len() {
            debug_assert!(false, "enqueue on nonexistent CPU {cpu}");
            return;
        }
        self.push_level(cpu, t, 0);
    }

    /// Removes `t` from wherever it is queued, parked or running, in
    /// O(1) via the location index. Returns `true` when it was found.
    pub fn remove(&mut self, t: ThrdPtr) -> bool {
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.index.contains_key(&t),
            self.scan_presence(t),
            "location index disagrees with linear scan for thread {t:#x}"
        );
        let loc = match self.index.remove(&t) {
            Some(loc) => loc,
            None => return false,
        };
        match loc {
            Loc::Queued { cpu, level, slot } => {
                debug_assert_eq!(self.slab[slot].thread, t, "stale location index entry");
                self.unlink(cpu, level, slot);
            }
            Loc::Parked { cntr, idx } => {
                let acct = self
                    .budgets
                    .get_mut(&cntr)
                    .expect("parked thread without an account");
                debug_assert_eq!(acct.parked[idx].0, t, "stale parked index entry");
                acct.parked.swap_remove(idx);
                // The swapped-in entry (if any) moved to `idx`.
                if let Some(&(moved, _)) = acct.parked.get(idx) {
                    self.index.insert(moved, Loc::Parked { cntr, idx });
                }
            }
            Loc::Running { cpu } => {
                debug_assert_eq!(self.cpus[cpu].current, Some(t));
                self.cpus[cpu].current = None;
                self.note_switch(cpu, Some(t), None);
            }
        }
        self.inherited.remove(&t);
        self.trace.sched(SchedOutcome::Remove, 1);
        true
    }

    /// Round-robin step on `cpu`: the current thread (if any) goes to
    /// the back of a queue — its own level with MLFQ off, one level
    /// down with MLFQ on — and the bitmap's first occupied level yields
    /// the new current thread.
    pub fn rotate(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        if cpu >= self.cpus.len() {
            return None;
        }
        let start = Instant::now();
        let prev = self.cpus[cpu].current;
        if let Some(cur) = self.cpus[cpu].current.take() {
            self.index.remove(&cur);
            let picked = self.cpus[cpu].current_level;
            let level = if self.mlfq_enabled {
                let demoted = (picked + 1).min(MLFQ_LEVELS - 1);
                if demoted > picked {
                    self.trace.sched(SchedOutcome::Demote, 1);
                }
                demoted
            } else {
                0
            };
            self.push_level(cpu, cur, level);
        }
        let next = self.take_next(cpu);
        self.note_switch(cpu, prev, next);
        self.trace
            .sched_pick(ns_to_cycles(start.elapsed().as_nanos() as u64));
        next
    }

    /// Makes the bitmap's first queued thread current without
    /// requeueing the previous thread (used when the previous thread
    /// blocked).
    pub fn dispatch(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        if cpu >= self.cpus.len() {
            return None;
        }
        let start = Instant::now();
        debug_assert!(
            self.cpus[cpu].current.is_none(),
            "dispatch over a running thread"
        );
        let next = self.take_next(cpu);
        self.note_switch(cpu, None, next);
        self.trace
            .sched_pick(ns_to_cycles(start.elapsed().as_nanos() as u64));
        next
    }

    /// Pops the first queued thread and installs it as current.
    fn take_next(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        match self.pop_first(cpu) {
            Some((t, level)) => {
                let c = &mut self.cpus[cpu];
                c.current = Some(t);
                c.current_level = level;
                self.index.insert(t, Loc::Running { cpu });
                Some(t)
            }
            None => None,
        }
    }

    /// Marks `t` as the thread currently running on `cpu` (boot/init
    /// path).
    pub fn set_current(&mut self, cpu: CpuId, t: ThrdPtr) {
        debug_assert!(
            self.cpus[cpu].current.is_none(),
            "CPU already running a thread"
        );
        debug_assert!(
            !self.index.contains_key(&t),
            "set_current on an already-scheduled thread"
        );
        let c = &mut self.cpus[cpu];
        c.current = Some(t);
        c.current_level = 0;
        self.index.insert(t, Loc::Running { cpu });
        self.note_switch(cpu, None, Some(t));
    }

    /// Direct handoff: replaces `cpu`'s current thread `from` with `to`
    /// without touching the ready queue — the fastpath IPC switch. The
    /// displaced thread is the caller's responsibility (it blocks on
    /// the endpoint or its reply slot, never lands in the ready queue).
    /// `to` keeps `from`'s MLFQ level: a handoff is the same scheduling
    /// turn continuing in the server.
    pub fn switch_current(&mut self, cpu: CpuId, from: ThrdPtr, to: ThrdPtr) {
        debug_assert_eq!(
            self.cpus[cpu].current,
            Some(from),
            "handoff from a non-running thread"
        );
        debug_assert!(
            !self.index.contains_key(&to),
            "handoff target must come from an endpoint, not the run queues"
        );
        self.index.remove(&from);
        self.cpus[cpu].current = Some(to);
        self.index.insert(to, Loc::Running { cpu });
        self.note_switch(cpu, Some(from), Some(to));
    }

    /// Takes the current thread off `cpu` (it blocked or exited).
    pub fn clear_current(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        let prev = match self.cpus.get_mut(cpu) {
            Some(c) => c.current.take(),
            None => None,
        };
        if let Some(t) = prev {
            self.index.remove(&t);
        }
        self.note_switch(cpu, prev, None);
        prev
    }

    // ----- budget accounts -------------------------------------------------

    /// Sets `cntr`'s scheduling weight. A fresh account starts with a
    /// full burst of budget and one armed refill-wheel entry. Weight 0
    /// tears the account down (see
    /// [`remove_account`](Self::remove_account)) and returns the
    /// formerly parked threads exactly like it.
    pub fn set_weight(&mut self, cntr: CtnrPtr, weight: u32) -> Vec<(ThrdPtr, CpuId)> {
        if weight == 0 {
            return self.remove_account(cntr);
        }
        match self.budgets.get_mut(&cntr) {
            Some(acct) => {
                acct.weight = weight;
            }
            None => {
                let grant = weight as u64 * BURST_MULTIPLIER;
                self.budgets.insert(
                    cntr,
                    BudgetAccount {
                        weight,
                        remaining: grant,
                        granted: grant,
                        ..BudgetAccount::default()
                    },
                );
                self.trace.audit(AuditDelta::BudgetGrant(grant));
            }
        }
        self.arm_refill(cntr, self.wheel_now + REFILL_PERIOD);
        Vec::new()
    }

    /// `cntr`'s scheduling weight (0 = no account).
    pub fn weight(&self, cntr: CtnrPtr) -> u32 {
        self.budgets.get(&cntr).map(|a| a.weight).unwrap_or(0)
    }

    /// `true` when `cntr`'s account is currently throttled.
    pub fn throttled(&self, cntr: CtnrPtr) -> bool {
        self.budgets
            .get(&cntr)
            .map(|a| a.throttled)
            .unwrap_or(false)
    }

    /// `cntr`'s account, when it has one (diagnostics and tests).
    pub fn account(&self, cntr: CtnrPtr) -> Option<&BudgetAccount> {
        self.budgets.get(&cntr)
    }

    /// Tears down `cntr`'s account: the remaining budget is refunded
    /// (the linear resource is returned, never dropped), lifetime
    /// totals fold into the retired sums, and any parked threads are
    /// unindexed and returned so the caller can re-enqueue or terminate
    /// them.
    pub fn remove_account(&mut self, cntr: CtnrPtr) -> Vec<(ThrdPtr, CpuId)> {
        let mut acct = match self.budgets.remove(&cntr) {
            Some(a) => a,
            None => return Vec::new(),
        };
        if acct.remaining > 0 {
            let refund = acct.remaining;
            acct.refunded += refund;
            acct.remaining = 0;
            self.trace.audit(AuditDelta::BudgetRefund(refund));
        }
        self.retired.0 += acct.granted;
        self.retired.1 += acct.consumed;
        self.retired.2 += acct.refunded;
        // A stale wheel entry (if armed) is dropped lazily on drain.
        for &(t, _) in &acct.parked {
            self.index.remove(&t);
        }
        acct.parked
    }

    /// Parks Ready thread `t` (homed on `cpu`) in its throttled
    /// container's account, off the run queues.
    pub fn park(&mut self, t: ThrdPtr, cpu: CpuId, cntr: CtnrPtr) {
        debug_assert!(
            !self.index.contains_key(&t),
            "park of a thread still scheduled"
        );
        let acct = self
            .budgets
            .get_mut(&cntr)
            .expect("park into a container without an account");
        debug_assert!(acct.throttled, "park into an unthrottled account");
        let idx = acct.parked.len();
        acct.parked.push((t, cpu));
        self.index.insert(t, Loc::Parked { cntr, idx });
        self.trace.sched(SchedOutcome::Park, 1);
    }

    /// Charges one timer tick of CPU time to `cntr`'s account.
    /// [`ChargeOutcome::Exhausted`] tells the caller to throttle the
    /// container (which [`throttle`](Self::throttle) records). A tick
    /// that lands on an already-empty account (a thread still running
    /// on another CPU when the budget hit zero) accrues as `debt` and
    /// is billed out of the next refill grant instead of going
    /// unmetered.
    pub fn charge_tick(&mut self, cntr: CtnrPtr) -> ChargeOutcome {
        let acct = match self.budgets.get_mut(&cntr) {
            Some(a) => a,
            None => return ChargeOutcome::Unmetered,
        };
        if acct.remaining == 0 {
            acct.debt += 1;
            return ChargeOutcome::Exhausted;
        }
        acct.remaining -= 1;
        acct.consumed += 1;
        let out = if acct.remaining == 0 {
            ChargeOutcome::Exhausted
        } else {
            ChargeOutcome::Charged
        };
        self.trace.audit(AuditDelta::BudgetCharge(1));
        out
    }

    /// Marks `cntr`'s account throttled by exhaustion (its Ready
    /// threads are then parked by the caller); the next refill that
    /// restores budget lifts it. Idempotent.
    pub fn throttle(&mut self, cntr: CtnrPtr) {
        if let Some(acct) = self.budgets.get_mut(&cntr) {
            if !acct.throttled {
                acct.throttled = true;
                self.trace.sched(SchedOutcome::Throttle, 1);
            }
        }
    }

    /// Marks `cntr`'s account administratively throttled: it stays
    /// throttled across refills until
    /// [`unthrottle_admin`](Self::unthrottle_admin) clears it.
    /// Idempotent; composes with an exhaustion throttle already in
    /// force.
    pub fn throttle_admin(&mut self, cntr: CtnrPtr) {
        if let Some(acct) = self.budgets.get_mut(&cntr) {
            acct.admin_throttled = true;
            if !acct.throttled {
                acct.throttled = true;
                self.trace.sched(SchedOutcome::Throttle, 1);
            }
        }
    }

    /// Clears `cntr`'s administrative throttle. When budget remains the
    /// account unthrottles fully (parked threads re-enqueue, as
    /// [`unthrottle`](Self::unthrottle)); an exhausted account stays
    /// throttled-by-exhaustion until the wheel refills it. Returns the
    /// re-enqueued `(thread, cpu)` pairs.
    pub fn unthrottle_admin(&mut self, cntr: CtnrPtr) -> Vec<(ThrdPtr, CpuId)> {
        match self.budgets.get_mut(&cntr) {
            Some(acct) if acct.admin_throttled => {
                acct.admin_throttled = false;
                if acct.remaining == 0 {
                    return Vec::new();
                }
            }
            _ => return Vec::new(),
        }
        self.unthrottle(cntr)
    }

    /// Arms a refill for `cntr` at absolute tick `due` (one pending
    /// entry per account; re-arming while armed is a no-op, which keeps
    /// teardown/re-create churn from double-scheduling).
    fn arm_refill(&mut self, cntr: CtnrPtr, due: u64) {
        if !self.armed.insert(cntr) {
            return;
        }
        self.schedule_at(cntr, due);
    }

    /// Inserts a wheel entry for `cntr` at tick `due`: the low level
    /// resolves single ticks within the next [`WHEEL_SLOTS`]; anything
    /// further lands in the high level and cascades down when its
    /// 64-tick slot opens.
    fn schedule_at(&mut self, cntr: CtnrPtr, due: u64) {
        debug_assert!(due > self.wheel_now, "refill scheduled in the past");
        if due - self.wheel_now < WHEEL_SLOTS as u64 {
            self.wheel_lo[(due % WHEEL_SLOTS as u64) as usize].push(cntr);
        } else {
            let hi_slot = ((due / WHEEL_SLOTS as u64) % WHEEL_SLOTS as u64) as usize;
            self.wheel_hi[hi_slot].push((cntr, due));
        }
    }

    /// Advances the refill wheel one tick: cascades the high level at
    /// 64-tick boundaries, refills every due account, unthrottles
    /// accounts that regained budget and re-enqueues their parked
    /// threads. Returns the re-enqueued `(thread, cpu)` pairs (state
    /// unchanged — an idle CPU picks them up at its next tick or
    /// dispatch, so unparking is a Ψ-noop). O(1) + O(due) per tick.
    pub fn advance_wheel(&mut self) -> Vec<(ThrdPtr, CpuId)> {
        self.wheel_now += 1;
        let now = self.wheel_now;
        if now.is_multiple_of(WHEEL_SLOTS as u64) {
            // The next 64-tick window opened: cascade its high-level
            // slot down into per-tick resolution.
            let hi_slot = ((now / WHEEL_SLOTS as u64) % WHEEL_SLOTS as u64) as usize;
            let entries = std::mem::take(&mut self.wheel_hi[hi_slot]);
            for (cntr, due) in entries {
                if due <= now {
                    // Due exactly at the boundary: fold into this tick.
                    self.wheel_lo[(now % WHEEL_SLOTS as u64) as usize].push(cntr);
                } else {
                    self.wheel_lo[(due % WHEEL_SLOTS as u64) as usize].push(cntr);
                }
            }
        }
        let due = std::mem::take(&mut self.wheel_lo[(now % WHEEL_SLOTS as u64) as usize]);
        let mut unparked = Vec::new();
        for cntr in due {
            self.armed.remove(&cntr);
            let (grant, settled, regained) = match self.budgets.get_mut(&cntr) {
                Some(acct) if acct.weight > 0 => {
                    let cap = acct.weight as u64 * BURST_MULTIPLIER;
                    let grant = (acct.weight as u64).min(cap.saturating_sub(acct.remaining));
                    // Ticks that ran while the account was already
                    // empty settle out of the grant first: they were
                    // consumed, just billed late.
                    let settled = grant.min(acct.debt);
                    acct.debt -= settled;
                    acct.consumed += settled;
                    acct.remaining += grant - settled;
                    acct.granted += grant;
                    // An administrative throttle never lifts on refill
                    // — only the exhaustion case auto-unthrottles.
                    (
                        grant,
                        settled,
                        acct.throttled && !acct.admin_throttled && acct.remaining > 0,
                    )
                }
                // Torn down (or re-created with weight 0) since it was
                // armed: drop the stale entry.
                _ => continue,
            };
            if grant > 0 {
                self.trace.audit(AuditDelta::BudgetGrant(grant));
            }
            if settled > 0 {
                self.trace.audit(AuditDelta::BudgetCharge(settled));
            }
            self.trace.sched(SchedOutcome::Refill, 1);
            if regained {
                unparked.extend(self.unthrottle(cntr));
            }
            self.arm_refill(cntr, now + REFILL_PERIOD);
        }
        unparked
    }

    /// Clears `cntr`'s throttle and re-enqueues its parked threads on
    /// their home CPUs (state unchanged — Ψ-noop; an idle CPU picks
    /// them up at its next tick or dispatch). Returns the re-enqueued
    /// pairs. No-op on an unthrottled or absent account.
    pub fn unthrottle(&mut self, cntr: CtnrPtr) -> Vec<(ThrdPtr, CpuId)> {
        let parked = match self.budgets.get_mut(&cntr) {
            Some(acct) if acct.throttled => {
                acct.throttled = false;
                std::mem::take(&mut acct.parked)
            }
            _ => return Vec::new(),
        };
        self.trace.sched(SchedOutcome::Unthrottle, 1);
        for &(t, cpu) in &parked {
            self.index.remove(&t);
            self.push_level(cpu, t, 0);
            self.trace.sched(SchedOutcome::Unpark, 1);
        }
        parked
    }

    // ----- budget inheritance ----------------------------------------------

    /// Marks `t`'s CPU time as billed to `cntr`'s account (the client's
    /// account on an IPC direct handoff into a shared server). The
    /// caller resolves nested inheritance before calling, so chains
    /// collapse to the originating client.
    pub fn inherit(&mut self, t: ThrdPtr, cntr: CtnrPtr) {
        self.inherited.insert(t, cntr);
        self.trace.sched(SchedOutcome::InheritHandoff, 1);
    }

    /// Clears `t`'s inherited billing (the handoff unwound).
    pub fn clear_inherit(&mut self, t: ThrdPtr) {
        self.inherited.remove(&t);
    }

    /// The container `t`'s CPU time bills to: its inherited account
    /// when a handoff is outstanding, otherwise `owner`.
    pub fn billed(&self, t: ThrdPtr, owner: CtnrPtr) -> CtnrPtr {
        self.inherited.get(&t).copied().unwrap_or(owner)
    }

    /// Lifetime budget totals across live and retired accounts:
    /// `(granted, consumed, refunded, remaining)`. The stop-the-world
    /// audit reconstructs its budget components from this, so the
    /// incremental ledger cross-checks bit-for-bit even across
    /// container churn.
    pub fn budget_totals(&self) -> (u64, u64, u64, u64) {
        let mut totals = (self.retired.0, self.retired.1, self.retired.2, 0);
        for acct in self.budgets.values() {
            totals.0 += acct.granted;
            totals.1 += acct.consumed;
            totals.2 += acct.refunded;
            totals.3 += acct.remaining;
        }
        totals
    }
}

/// Non-allocating iterator over one CPU's queued threads in pick order.
pub struct QueuedIter<'a> {
    sched: &'a Scheduler,
    cpu: CpuId,
    level: usize,
    slot: usize,
}

impl Iterator for QueuedIter<'_> {
    type Item = ThrdPtr;

    fn next(&mut self) -> Option<ThrdPtr> {
        let c = self.sched.cpus.get(self.cpu)?;
        while self.slot == NIL {
            self.level += 1;
            if self.level >= MLFQ_LEVELS {
                return None;
            }
            self.slot = c.head[self.level];
        }
        let node = &self.sched.slab[self.slot];
        self.slot = node.next;
        Some(node.thread)
    }
}

/// Scheduler well-formedness: every queued/parked/running thread is
/// live and in the matching state, appears in exactly one place (with a
/// coherent location-index entry), runs only on a core its container
/// (or one of its ancestors) owns, and every budget account conserves
/// its linear resource (`granted = consumed + refunded + remaining`).
pub fn sched_wf(
    sched: &Scheduler,
    cntrs: &PermMap<Container>,
    thrds: &PermMap<Thread>,
) -> VerifResult {
    let mut seen: Vec<ThrdPtr> = Vec::new();
    let check_scheduled = |t: ThrdPtr, cpu: CpuId, running: bool, seen: &mut Vec<ThrdPtr>| {
        check(
            thrds.contains(t),
            "scheduler",
            format!("dead thread {t:#x} scheduled on CPU {cpu}"),
        )?;
        check(
            !seen.contains(&t),
            "scheduler",
            format!("thread {t:#x} scheduled twice"),
        )?;
        seen.push(t);

        let thread = thrds.value(t);
        let expected = if running {
            matches!(thread.state, ThreadState::Running(c) if c == cpu)
        } else {
            thread.state == ThreadState::Ready
        };
        check(
            expected,
            "scheduler",
            format!(
                "thread {t:#x} state {:?} inconsistent with CPU {cpu}",
                thread.state
            ),
        )?;

        // CPU ownership: the owning container or an ancestor owns the
        // core.
        let c = thread.owning_cntr;
        check(
            cntrs.contains(c),
            "scheduler",
            format!("scheduled thread {t:#x} of unknown container"),
        )?;
        let cntr = cntrs.value(c);
        let owns = cntr.owned_cpus.contains(&cpu)
            || cntr
                .path
                .iter()
                .any(|anc| cntrs.contains(*anc) && cntrs.value(*anc).owned_cpus.contains(&cpu));
        check(
            owns,
            "scheduler",
            format!("thread {t:#x} runs on CPU {cpu} its container does not own"),
        )
    };

    for cpu in 0..sched.ncpus() {
        // Per-level list/bitmap coherence.
        let c = &sched.cpus[cpu];
        for level in 0..MLFQ_LEVELS {
            check(
                (c.len[level] > 0) == (c.occupancy & (1 << level) != 0)
                    && (c.len[level] > 0) == (c.head[level] != NIL),
                "scheduler",
                format!("CPU {cpu} level {level}: occupancy bitmap out of sync"),
            )?;
        }
        for t in sched.queued(cpu) {
            check_scheduled(t, cpu, false, &mut seen)?;
            check(
                matches!(sched.index.get(&t), Some(Loc::Queued { cpu: c2, .. }) if *c2 == cpu),
                "scheduler",
                format!("queued thread {t:#x} has no matching index entry"),
            )?;
        }
        if let Some(t) = sched.current(cpu) {
            check_scheduled(t, cpu, true, &mut seen)?;
            check(
                matches!(sched.index.get(&t), Some(Loc::Running { cpu: c2 }) if *c2 == cpu),
                "scheduler",
                format!("running thread {t:#x} has no matching index entry"),
            )?;
        }
    }

    // Parked threads: live, Ready, owned cores, indexed — and only in
    // throttled accounts (an unthrottled account never holds threads
    // back).
    for (cntr_ptr, acct) in sched.budgets.iter() {
        check(
            acct.weight > 0,
            "scheduler",
            format!("container {cntr_ptr:#x} holds a zero-weight account"),
        )?;
        check(
            acct.granted == acct.consumed + acct.refunded + acct.remaining,
            "scheduler",
            format!(
                "container {cntr_ptr:#x} budget not conserved: {} granted != {} consumed + {} refunded + {} remaining",
                acct.granted, acct.consumed, acct.refunded, acct.remaining
            ),
        )?;
        check(
            acct.parked.is_empty() || acct.throttled,
            "scheduler",
            format!("container {cntr_ptr:#x} parks threads while unthrottled"),
        )?;
        check(
            !acct.admin_throttled || acct.throttled,
            "scheduler",
            format!("container {cntr_ptr:#x} admin-throttled but not throttled"),
        )?;
        for (idx, &(t, cpu)) in acct.parked.iter().enumerate() {
            check_scheduled(t, cpu, false, &mut seen)?;
            check(
                sched.index.get(&t)
                    == Some(&Loc::Parked {
                        cntr: *cntr_ptr,
                        idx,
                    }),
                "scheduler",
                format!("parked thread {t:#x} has no matching index entry"),
            )?;
        }
    }

    check(
        sched.index.len() == seen.len(),
        "scheduler",
        format!(
            "location index holds {} entries for {} scheduled threads",
            sched.index.len(),
            seen.len()
        ),
    )?;

    // Conversely, every Ready/Running thread is scheduled somewhere.
    for (t_ptr, perm) in thrds.iter() {
        match perm.value().state {
            ThreadState::Ready | ThreadState::Running(_) => {
                check(
                    seen.contains(&t_ptr),
                    "scheduler",
                    format!("runnable thread {t_ptr:#x} not scheduled on any CPU"),
                )?;
            }
            _ => {
                check(
                    !seen.contains(&t_ptr),
                    "scheduler",
                    format!("blocked thread {t_ptr:#x} still scheduled"),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_is_round_robin() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 0xa);
        s.enqueue(0, 0xb);
        assert_eq!(s.rotate(0), Some(0xa));
        assert_eq!(s.rotate(0), Some(0xb));
        assert_eq!(s.rotate(0), Some(0xa), "wraps around");
        assert_eq!(s.ready_queue(0), &[0xb]);
    }

    #[test]
    fn dispatch_after_block() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 0xa);
        s.enqueue(0, 0xb);
        s.dispatch(0);
        assert_eq!(s.current(0), Some(0xa));
        // 0xa blocks: clear and dispatch the next.
        assert_eq!(s.clear_current(0), Some(0xa));
        assert_eq!(s.dispatch(0), Some(0xb));
    }

    #[test]
    fn remove_finds_thread_anywhere() {
        let mut s = Scheduler::new(2);
        s.enqueue(0, 0xa);
        s.enqueue(1, 0xb);
        s.dispatch(1);
        assert!(s.remove(0xa), "from a ready queue");
        assert!(s.remove(0xb), "from current");
        assert!(!s.remove(0xc));
        assert_eq!(s.current(1), None);
    }

    #[test]
    fn switch_current_bypasses_ready_queue() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 0xa);
        s.enqueue(0, 0xc);
        s.dispatch(0);
        assert_eq!(s.current(0), Some(0xa));
        // Direct handoff to 0xb (a thread parked on an endpoint, not in
        // the queue): current changes, the queue is untouched.
        s.switch_current(0, 0xa, 0xb);
        assert_eq!(s.current(0), Some(0xb));
        assert_eq!(s.ready_queue(0), &[0xc]);
    }

    #[test]
    fn rotate_on_empty_cpu_idles() {
        let mut s = Scheduler::new(1);
        assert_eq!(s.rotate(0), None);
        assert_eq!(s.current(0), None);
    }

    #[test]
    fn per_cpu_isolation_of_queues() {
        let mut s = Scheduler::new(2);
        s.enqueue(0, 0xa);
        assert!(s.ready_queue(1).is_empty());
        assert_eq!(s.ready_queue(0), &[0xa]);
    }

    /// Regression for the old 64-slot cap: `enqueue` used to return
    /// `false` — and callers that ignored it silently lost runnable
    /// threads — past `MAX_READY_QUEUE = 64`. The intrusive slab has no
    /// cap: a thousand threads enqueue, stay FIFO, and every one is
    /// individually removable.
    #[test]
    fn enqueue_never_overflows() {
        let mut s = Scheduler::new(1);
        for t in 0..1000usize {
            s.enqueue(0, 0x1000 + t);
        }
        let q = s.ready_queue(0);
        assert_eq!(q.len(), 1000, "no 64-entry cap, nothing dropped");
        assert_eq!(q[0], 0x1000);
        assert_eq!(q[999], 0x1000 + 999);
        assert!(s.remove(0x1000 + 500), "O(1) removal from the middle");
        assert_eq!(s.ready_queue(0).len(), 999);
    }

    #[test]
    fn remove_is_indexed_from_queue_park_and_current() {
        let mut s = Scheduler::new(2);
        for t in 0..100usize {
            s.enqueue(0, 0x2000 + t);
        }
        // Middle, head, tail removals keep FIFO order of the rest.
        assert!(s.remove(0x2000 + 50));
        assert!(s.remove(0x2000));
        assert!(s.remove(0x2000 + 99));
        let q = s.ready_queue(0);
        assert_eq!(q.len(), 97);
        assert_eq!(q[0], 0x2001);
        assert_eq!(q[96], 0x2000 + 98);
        // Parked removal fixes the swapped entry's index.
        s.set_weight(0x9000, 1);
        s.throttle(0x9000);
        s.park(0xaa, 1, 0x9000);
        s.park(0xbb, 1, 0x9000);
        s.park(0xcc, 1, 0x9000);
        assert!(s.remove(0xaa));
        assert!(s.remove(0xcc), "swap_remove moved 0xcc's index");
        assert!(s.remove(0xbb));
        assert!(!s.remove(0xbb), "second removal finds nothing");
    }

    #[test]
    fn mlfq_demotes_on_rotate_and_bitmap_picks_lowest_level() {
        let mut s = Scheduler::new(1);
        s.set_mlfq(true);
        s.enqueue(0, 0xa);
        s.enqueue(0, 0xb);
        assert_eq!(s.rotate(0), Some(0xa), "picked from level 0");
        // 0xa was picked from level 0: rotating demotes it to level 1,
        // so 0xb (still level 0) runs before 0xa comes around again.
        assert_eq!(s.rotate(0), Some(0xb));
        assert_eq!(s.rotate(0), Some(0xa), "level-1 thread runs when 0 empty");
        // Pick order lists level-0 entries first.
        s.enqueue(0, 0xc);
        let q = s.ready_queue(0);
        assert_eq!(q[0], 0xc, "fresh level-0 thread ahead of demoted ones");
    }

    #[test]
    fn budget_accounts_conserve_and_throttle_round_trips() {
        let mut s = Scheduler::new(1);
        s.set_weight(0x9000, 2);
        let initial = 2 * BURST_MULTIPLIER;
        assert_eq!(s.account(0x9000).unwrap().remaining, initial);
        // Drain the account one tick at a time.
        for i in 0..initial {
            let out = s.charge_tick(0x9000);
            if i == initial - 1 {
                assert_eq!(out, ChargeOutcome::Exhausted);
            } else {
                assert_eq!(out, ChargeOutcome::Charged);
            }
        }
        assert_eq!(s.charge_tick(0x9000), ChargeOutcome::Exhausted);
        s.throttle(0x9000);
        s.park(0xaa, 0, 0x9000);
        assert!(s.throttled(0x9000));
        // The refill wheel unthrottles at the next period boundary.
        let mut unparked = Vec::new();
        for _ in 0..REFILL_PERIOD {
            unparked.extend(s.advance_wheel());
        }
        assert_eq!(unparked, vec![(0xaa, 0)]);
        assert!(!s.throttled(0x9000));
        assert_eq!(s.ready_queue(0), &[0xaa], "unparked threads re-enqueue");
        let acct = s.account(0x9000).unwrap();
        assert_eq!(
            acct.granted,
            acct.consumed + acct.refunded + acct.remaining,
            "conservation"
        );
        // Teardown refunds the remainder; totals survive retirement.
        let before = s.budget_totals();
        s.remove_account(0x9000);
        let after = s.budget_totals();
        assert_eq!(after.0, before.0, "granted survives retirement");
        assert_eq!(after.3, 0, "remaining refunded on teardown");
        assert_eq!(after.0, after.1 + after.2 + after.3);
    }

    #[test]
    fn admin_throttle_survives_refills_until_cleared() {
        let mut s = Scheduler::new(1);
        s.set_weight(0x9000, 2);
        assert!(s.account(0x9000).unwrap().remaining > 0);
        s.throttle_admin(0x9000);
        s.park(0xaa, 0, 0x9000);
        // Several full refill periods: the account keeps its budget
        // (burst-capped, grant 0) yet must stay throttled — a refill
        // never lifts an administrative throttle.
        for _ in 0..4 * REFILL_PERIOD {
            assert!(s.advance_wheel().is_empty(), "refill lifted admin throttle");
        }
        assert!(s.throttled(0x9000));
        // Explicit unthrottle with budget remaining: full round trip.
        assert_eq!(s.unthrottle_admin(0x9000), vec![(0xaa, 0)]);
        assert!(!s.throttled(0x9000));
        assert_eq!(s.ready_queue(0), &[0xaa]);
    }

    #[test]
    fn admin_unthrottle_of_exhausted_account_waits_for_refill() {
        let mut s = Scheduler::new(1);
        s.set_weight(0x9000, 1);
        while s.charge_tick(0x9000) == ChargeOutcome::Charged {}
        s.throttle(0x9000); // exhaustion throttle first
        s.throttle_admin(0x9000); // then the admin one on top
        s.park(0xaa, 0, 0x9000);
        // Clearing the admin throttle alone must not release the
        // threads: the account is still out of budget.
        assert!(s.unthrottle_admin(0x9000).is_empty());
        assert!(s.throttled(0x9000), "still exhaustion-throttled");
        // The next refill restores budget and lifts the rest.
        let mut unparked = Vec::new();
        for _ in 0..REFILL_PERIOD {
            unparked.extend(s.advance_wheel());
        }
        assert_eq!(unparked, vec![(0xaa, 0)]);
        assert!(!s.throttled(0x9000));
    }

    #[test]
    fn exhausted_ticks_accrue_debt_settled_by_the_next_grant() {
        let mut s = Scheduler::new(1);
        s.set_weight(0x9000, 2);
        while s.charge_tick(0x9000) == ChargeOutcome::Charged {}
        let consumed_spent = s.account(0x9000).unwrap().consumed;
        // Three more ticks land on the empty account (threads still
        // running elsewhere): unbilled for now, recorded as debt.
        for _ in 0..3 {
            assert_eq!(s.charge_tick(0x9000), ChargeOutcome::Exhausted);
        }
        let acct = s.account(0x9000).unwrap();
        assert_eq!(acct.debt, 3);
        assert_eq!(acct.consumed, consumed_spent, "not yet billed");
        // The refill grant (weight 2) pays debt first: 2 of 3 units go
        // straight to `consumed`, none to `remaining`, debt 1 carries.
        for _ in 0..REFILL_PERIOD {
            s.advance_wheel();
        }
        let acct = s.account(0x9000).unwrap();
        assert_eq!(acct.debt, 1);
        assert_eq!(acct.consumed, consumed_spent + 2);
        assert_eq!(acct.remaining, 0);
        // Next refill clears the rest and budget starts accruing again.
        for _ in 0..REFILL_PERIOD {
            s.advance_wheel();
        }
        let acct = s.account(0x9000).unwrap();
        assert_eq!(acct.debt, 0);
        assert_eq!(acct.consumed, consumed_spent + 3);
        assert_eq!(acct.remaining, 1);
        // Conservation holds throughout — debt lives outside it.
        assert_eq!(acct.granted, acct.consumed + acct.refunded + acct.remaining);
    }

    #[test]
    fn unmetered_containers_charge_nothing() {
        let mut s = Scheduler::new(1);
        assert_eq!(s.charge_tick(0x9000), ChargeOutcome::Unmetered);
        assert_eq!(s.budget_totals(), (0, 0, 0, 0));
    }

    #[test]
    fn refill_wheel_caps_bursts_and_survives_churn() {
        let mut s = Scheduler::new(1);
        s.set_weight(0x9000, 4);
        // Fully charged at creation: refills grant nothing until spent.
        for _ in 0..REFILL_PERIOD {
            s.advance_wheel();
        }
        let acct = s.account(0x9000).unwrap();
        assert_eq!(acct.remaining, 4 * BURST_MULTIPLIER, "burst cap holds");
        // Tear down and re-create while a wheel entry is still armed:
        // the stale entry must not double-arm the new account.
        s.remove_account(0x9000);
        s.set_weight(0x9000, 1);
        for _ in 0..4 * REFILL_PERIOD {
            s.charge_tick(0x9000);
            s.advance_wheel();
        }
        let acct = s.account(0x9000).unwrap();
        assert_eq!(
            acct.granted,
            acct.consumed + acct.refunded + acct.remaining,
            "conservation across churn"
        );
    }

    #[test]
    fn wheel_cascades_entries_beyond_one_revolution() {
        let mut s = Scheduler::new(1);
        // Place an entry 100 ticks out: it lands in the high level and
        // must cascade down at the 64-tick boundary, firing exactly at
        // its due tick.
        s.budgets.insert(
            0x9000,
            BudgetAccount {
                weight: 1,
                ..BudgetAccount::default()
            },
        );
        s.armed.insert(0x9000);
        s.schedule_at(0x9000, 100);
        for tick in 1..=99 {
            s.advance_wheel();
            assert_eq!(
                s.account(0x9000).unwrap().granted,
                0,
                "no refill before the due tick (tick {tick})"
            );
        }
        s.advance_wheel();
        assert_eq!(s.account(0x9000).unwrap().granted, 1, "fires at tick 100");
    }

    #[test]
    fn inheritance_bills_the_client_until_cleared() {
        let mut s = Scheduler::new(1);
        assert_eq!(s.billed(0xaa, 0x1111), 0x1111, "defaults to the owner");
        s.inherit(0xaa, 0x2222);
        assert_eq!(s.billed(0xaa, 0x1111), 0x2222, "handoff bills the client");
        s.clear_inherit(0xaa);
        assert_eq!(s.billed(0xaa, 0x1111), 0x1111);
        // Removal clears any outstanding inheritance.
        s.enqueue(0, 0xaa);
        s.inherit(0xaa, 0x2222);
        s.remove(0xaa);
        assert_eq!(s.billed(0xaa, 0x1111), 0x1111);
    }
}
