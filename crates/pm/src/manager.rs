//! The `ProcessManager`: flat permission maps + all object lifecycle and
//! IPC operations (Listing 2 of the paper).

use atmo_mem::{PageClosure, PagePermission, PagePtr, PageSource};
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::{Map, PPtr, PermMap, Set};
use atmo_trace::{AuditDelta, FastpathOutcome, KernelEvent, TraceHandle, TraceShare};

use crate::container::{container_tree_wf, cpu_partition_wf, quota_wf, Container};
use crate::endpoint::{endpoints_wf, Endpoint, QueueSide};
use crate::process::{process_forest_wf, Process};
use crate::sched::{sched_wf, ChargeOutcome, Scheduler};
use crate::thread::{threads_wf, Thread};
use crate::types::{
    CpuId, CtnrPtr, EdptIdx, EdptPtr, IpcPayload, PmError, ProcPtr, ThrdPtr, ThreadState,
    MAX_ENDPOINT_SLOTS,
};

/// Outcome of an IPC send-side operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message was handed directly to a waiting receiver.
    Delivered(ThrdPtr),
    /// The sender blocked waiting for a receiver.
    Blocked,
}

/// Outcome of an IPC receive-side operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A waiting sender's message was consumed.
    Received(IpcPayload),
    /// The receiver blocked waiting for a sender.
    Blocked,
}

/// Outcome of a combined `reply_recv` operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyRecvOutcome {
    /// Direct handoff: the reply went straight to the caller, which now
    /// runs on this CPU; the replier is parked on the endpoint.
    Handoff(ThrdPtr),
    /// Slow path: reply sent, and a queued sender's next request was
    /// consumed immediately.
    Received(IpcPayload),
    /// Slow path: reply sent, replier blocked awaiting the next request.
    Blocked,
}

/// Maximum consecutive direct handoffs on one CPU before the fast path
/// yields to the ready queue (starvation guard: a ping-pong pair must
/// not lock out other runnable threads on the same core).
pub const HANDOFF_BUDGET: u32 = 8;

/// The abstract view of the process manager (the Φ the `*_ensures`
/// transition specifications quantify over).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PmView {
    /// Root container.
    pub root: CtnrPtr,
    /// Abstract container map.
    pub containers: Map<CtnrPtr, Container>,
    /// Abstract process map.
    pub processes: Map<ProcPtr, Process>,
    /// Abstract thread map.
    pub threads: Map<ThrdPtr, Thread>,
    /// Abstract endpoint map.
    pub endpoints: Map<EdptPtr, Endpoint>,
}

/// The process manager (Listing 2): the root pointer plus flat permission
/// maps over every container, process, thread and endpoint in the system.
#[derive(Debug)]
pub struct ProcessManager {
    /// The boot container.
    pub root_container: CtnrPtr,
    /// Flat permissions to all containers.
    pub cntr_perms: PermMap<Container>,
    /// Flat permissions to all processes.
    pub proc_perms: PermMap<Process>,
    /// Flat permissions to all threads.
    pub thrd_perms: PermMap<Thread>,
    /// Flat permissions to all endpoints.
    pub edpt_perms: PermMap<Endpoint>,
    /// The per-CPU scheduler.
    pub sched: Scheduler,
    /// Per-thread home CPU (chosen at creation; used to requeue on wake).
    home_cpu: std::collections::BTreeMap<ThrdPtr, CpuId>,
    /// Descriptor-slot cache: `(thread, slot) → endpoint` for slots that
    /// validated successfully, so repeated IPC on the same slot skips
    /// the descriptor-table lookup. Not part of [`PmView`] — entries are
    /// derivable from `edpt_descriptors` and invalidated on descriptor
    /// removal, thread teardown and endpoint destruction.
    slot_cache: std::collections::BTreeMap<(ThrdPtr, EdptIdx), EdptPtr>,
    /// Consecutive direct handoffs per CPU since that CPU last went
    /// through its ready queue (bounded by [`HANDOFF_BUDGET`]).
    handoff_streak: Vec<u32>,
    next_addr_space: usize,
    /// IPC event sink (tracing is diagnostic: not part of the view).
    trace: TraceShare,
}

impl ProcessManager {
    // ----- accessors (Listing 1 lines 35–40 idiom) -----------------------

    /// Immutable view of a container.
    ///
    /// # Panics
    ///
    /// Panics when the permission is absent (verification failure).
    pub fn cntr(&self, c: CtnrPtr) -> &Container {
        self.cntr_perms.value(c)
    }

    fn cntr_mut(&mut self, c: CtnrPtr) -> &mut Container {
        PPtr::<Container>::from_usize(c).borrow_mut(self.cntr_perms.tracked_borrow_mut(c))
    }

    /// Immutable view of a process.
    pub fn proc(&self, p: ProcPtr) -> &Process {
        self.proc_perms.value(p)
    }

    fn proc_mut(&mut self, p: ProcPtr) -> &mut Process {
        PPtr::<Process>::from_usize(p).borrow_mut(self.proc_perms.tracked_borrow_mut(p))
    }

    /// Immutable view of a thread.
    pub fn thrd(&self, t: ThrdPtr) -> &Thread {
        self.thrd_perms.value(t)
    }

    fn thrd_mut(&mut self, t: ThrdPtr) -> &mut Thread {
        PPtr::<Thread>::from_usize(t).borrow_mut(self.thrd_perms.tracked_borrow_mut(t))
    }

    /// Immutable view of an endpoint.
    pub fn edpt(&self, e: EdptPtr) -> &Endpoint {
        self.edpt_perms.value(e)
    }

    fn edpt_mut(&mut self, e: EdptPtr) -> &mut Endpoint {
        PPtr::<Endpoint>::from_usize(e).borrow_mut(self.edpt_perms.tracked_borrow_mut(e))
    }

    /// The abstract view Φ.
    pub fn view(&self) -> PmView {
        PmView {
            root: self.root_container,
            containers: self.cntr_perms.view(),
            processes: self.proc_perms.view(),
            threads: self.thrd_perms.view(),
            endpoints: self.edpt_perms.view(),
        }
    }

    // ----- boot -----------------------------------------------------------

    /// Boots the process manager: root container (owning all CPUs and the
    /// whole `quota`), an init process and an init thread running on CPU 0.
    pub fn boot(
        alloc: &mut dyn PageSource,
        ncpus: usize,
        quota: usize,
    ) -> Result<(Self, CtnrPtr, ProcPtr, ThrdPtr), PmError> {
        if ncpus == 0 || quota < 3 {
            return Err(PmError::InvalidArgument);
        }
        let cpus: Set<CpuId> = (0..ncpus).collect();

        let (c_ptr, c_page) = alloc.alloc_page_4k()?;
        let mut root = Container::new_root(quota, cpus);
        root.used = 3; // its own page + init process + init thread
        let (_, c_perm) = c_page.into_object(root);

        let (p_ptr, p_page) = alloc.alloc_page_4k()?;
        let mut init_proc = Process::new(c_ptr, None, atmo_spec::Seq::empty(), 0);
        let (t_ptr, t_page) = alloc.alloc_page_4k()?;
        init_proc.threads.push(t_ptr);
        let (_, p_perm) = p_page.into_object(init_proc);

        let mut init_thread = Thread::new(p_ptr, c_ptr);
        init_thread.state = ThreadState::Running(0);
        let (_, t_perm) = t_page.into_object(init_thread);

        let mut pm = ProcessManager {
            root_container: c_ptr,
            cntr_perms: PermMap::new(),
            proc_perms: PermMap::new(),
            thrd_perms: PermMap::new(),
            edpt_perms: PermMap::new(),
            sched: Scheduler::new(ncpus),
            home_cpu: std::collections::BTreeMap::new(),
            slot_cache: std::collections::BTreeMap::new(),
            handoff_streak: vec![0; ncpus],
            next_addr_space: 1,
            trace: TraceShare::detached(),
        };
        pm.cntr_perms.tracked_insert(c_ptr, c_perm);
        pm.proc_perms.tracked_insert(p_ptr, p_perm);
        pm.thrd_perms.tracked_insert(t_ptr, t_perm);
        {
            let c = pm.cntr_mut(c_ptr);
            c.root_procs.push(p_ptr);
            c.owned_procs.assign(Set::from_slice(&[p_ptr]));
            c.owned_thrds.assign(Set::from_slice(&[t_ptr]));
        }
        pm.sched.set_current(0, t_ptr);
        pm.home_cpu.insert(t_ptr, 0);
        Ok((pm, c_ptr, p_ptr, t_ptr))
    }

    /// Routes IPC events (and, via the scheduler, context switches) into
    /// `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink.clone());
        self.sched.attach_trace(sink);
    }

    // ----- quota accounting ------------------------------------------------

    /// Charges `n` pages against container `c`'s quota.
    pub fn charge(&mut self, c: CtnrPtr, n: usize) -> Result<(), PmError> {
        if !self.cntr_perms.contains(c) {
            return Err(PmError::NotFound);
        }
        let cntr = self.cntr_mut(c);
        if cntr.used + n > cntr.quota {
            return Err(PmError::QuotaExceeded);
        }
        cntr.used += n;
        Ok(())
    }

    /// Releases `n` pages of container `c`'s charge.
    ///
    /// # Panics
    ///
    /// Panics when more is released than was charged (accounting bug).
    pub fn uncharge(&mut self, c: CtnrPtr, n: usize) {
        let cntr = self.cntr_mut(c);
        assert!(cntr.used >= n, "uncharge below zero");
        cntr.used -= n;
    }

    // ----- container lifecycle ---------------------------------------------

    /// Creates a child container under `parent` with the given memory
    /// `quota` (pages) and CPU reservation `cpus` (taken from the parent).
    ///
    /// The parent is charged `quota + 1` pages (the reservation plus the
    /// container object's page).
    pub fn new_container(
        &mut self,
        alloc: &mut dyn PageSource,
        parent: CtnrPtr,
        quota: usize,
        cpus: &[CpuId],
    ) -> Result<CtnrPtr, PmError> {
        if !self.cntr_perms.contains(parent) {
            return Err(PmError::NotFound);
        }
        {
            let p = self.cntr(parent);
            if p.children.is_full() {
                return Err(PmError::CapacityExceeded);
            }
            for cpu in cpus {
                if !p.owned_cpus.contains(cpu) {
                    return Err(PmError::CpuNotOwned);
                }
            }
        }
        self.charge(parent, quota + 1)?;

        let (c_ptr, page) = match alloc.alloc_page_4k() {
            Ok(x) => x,
            Err(e) => {
                self.uncharge(parent, quota + 1);
                return Err(e.into());
            }
        };
        self.trace.audit(AuditDelta::PmAcquire(c_ptr));
        let (parent_path, parent_depth) = {
            let p = self.cntr(parent);
            (p.path.view().clone(), p.depth)
        };
        let cpu_set: Set<CpuId> = cpus.iter().copied().collect();
        let child = Container::new_child(
            parent,
            &parent_path,
            parent_depth + 1,
            quota,
            cpu_set.clone(),
        );
        let (_, perm) = page.into_object(child);
        self.cntr_perms.tracked_insert(c_ptr, perm);

        {
            let p = self.cntr_mut(parent);
            p.children.push(c_ptr);
            p.owned_cpus = p.owned_cpus.difference(&cpu_set);
        }
        // Extend the subtree of every ancestor (parent + parent's path) —
        // direct flat access, no recursion (new_container_ensures).
        let mut ancestors = parent_path.to_vec();
        ancestors.push(parent);
        for anc in ancestors {
            let a = self.cntr_mut(anc);
            a.subtree.assign(a.subtree.insert(c_ptr));
        }
        Ok(c_ptr)
    }

    /// Terminates the container `c` (which must not be the root) and its
    /// entire subtree, harvesting resources back to `c`'s parent (§3).
    ///
    /// Returns the address-space identifiers of every destroyed process so
    /// the kernel can tear down their page tables and mapped frames.
    pub fn terminate_container(
        &mut self,
        alloc: &mut dyn PageSource,
        c: CtnrPtr,
    ) -> Result<Vec<usize>, PmError> {
        if !self.cntr_perms.contains(c) {
            return Err(PmError::NotFound);
        }
        let parent = match self.cntr(c).parent {
            Some(p) => p,
            None => return Err(PmError::Denied), // the root cannot be terminated
        };

        // The dead set: c plus its ghost subtree (flat, non-recursive).
        let mut dead: Vec<CtnrPtr> = self.cntr(c).subtree.view().to_vec();
        dead.push(c);
        // The reservation the parent charged when `c` was created.
        let c_reservation = self.cntr(c).quota + 1;

        let mut freed_spaces = Vec::new();
        let mut harvested_cpus: Set<CpuId> = Set::empty();

        for &dc in &dead {
            // Terminate every process of the container (roots first; the
            // recursive teardown handles their subtrees).
            let roots: Vec<ProcPtr> = self.cntr(dc).root_procs.to_vec();
            for p in roots {
                freed_spaces.extend(self.terminate_process(alloc, p)?);
            }
            harvested_cpus = harvested_cpus.union(&self.cntr(dc).owned_cpus);

            // Endpoints still charged to this container but referenced from
            // outside survive; their charge moves to the surviving parent
            // (the paper's "resources passed outside are not revoked").
            let orphan_edpts: Vec<EdptPtr> = self
                .edpt_perms
                .iter()
                .filter(|(_, e)| e.value().owning_cntr == dc)
                .map(|(ptr, _)| ptr)
                .collect();
            for e in orphan_edpts {
                self.edpt_mut(e).owning_cntr = parent;
                self.charge(parent, 1).map_err(|_| PmError::QuotaExceeded)?;
                let p = self.cntr_mut(parent);
                p.owned_edpts.assign(p.owned_edpts.insert(e));
            }
        }

        // Remove the dead containers and free their pages. Budget
        // accounts retire with them: remaining budget is refunded to
        // the conservation ledger, lifetime totals fold into the
        // scheduler's retired sums. Every thread of the subtree was
        // terminated above, so no parked threads can come back.
        for &dc in &dead {
            let parked = self.sched.remove_account(dc);
            debug_assert!(
                parked.is_empty(),
                "terminated container still parks threads"
            );
            let perm = self.cntr_perms.tracked_remove(dc);
            let (page, _) = PagePermission::from_object(PPtr::<Container>::from_usize(dc), perm);
            self.trace.audit(AuditDelta::PmRelease(dc));
            alloc.free_page_4k(page);
        }

        // Unlink from the parent and return the reservation + CPUs.
        {
            let p = self.cntr_mut(parent);
            p.children.remove(&c);
            p.owned_cpus = p.owned_cpus.union(&harvested_cpus);
        }
        // Release the reservation the parent charged when `c` was created
        // (c's own quota covered the entire subtree's reservations).
        self.uncharge(parent, c_reservation);

        // Shrink ancestors' subtrees.
        let dead_set: Set<CtnrPtr> = dead.iter().copied().collect();
        let anc_path = self.cntr(parent).path.view().clone();
        let mut ancestors = anc_path.to_vec();
        ancestors.push(parent);
        for anc in ancestors {
            let a = self.cntr_mut(anc);
            a.subtree.assign(a.subtree.difference(&dead_set));
        }
        Ok(freed_spaces)
    }

    // ----- process / thread lifecycle --------------------------------------

    /// Creates a process in `cntr`, optionally as a child of
    /// `parent_proc` (which must live in the same container).
    pub fn new_process(
        &mut self,
        alloc: &mut dyn PageSource,
        cntr: CtnrPtr,
        parent_proc: Option<ProcPtr>,
    ) -> Result<ProcPtr, PmError> {
        if !self.cntr_perms.contains(cntr) {
            return Err(PmError::NotFound);
        }
        if let Some(pp) = parent_proc {
            if !self.proc_perms.contains(pp) {
                return Err(PmError::NotFound);
            }
            if self.proc(pp).owning_container != cntr {
                return Err(PmError::Denied);
            }
            if self.proc(pp).children.is_full() {
                return Err(PmError::CapacityExceeded);
            }
        } else if self.cntr(cntr).root_procs.is_full() {
            return Err(PmError::CapacityExceeded);
        }
        self.charge(cntr, 1)?;
        let (p_ptr, page) = match alloc.alloc_page_4k() {
            Ok(x) => x,
            Err(e) => {
                self.uncharge(cntr, 1);
                return Err(e.into());
            }
        };
        self.trace.audit(AuditDelta::PmAcquire(p_ptr));
        let parent_path = parent_proc
            .map(|pp| self.proc(pp).path.view().clone())
            .unwrap_or_default();
        let addr_space = self.next_addr_space;
        self.next_addr_space += 1;
        self.trace.audit(AuditDelta::ProcSpace(addr_space));
        let proc = Process::new(cntr, parent_proc, parent_path, addr_space);
        let (_, perm) = page.into_object(proc);
        self.proc_perms.tracked_insert(p_ptr, perm);

        match parent_proc {
            Some(pp) => {
                self.proc_mut(pp).children.push(p_ptr);
            }
            None => {
                self.cntr_mut(cntr).root_procs.push(p_ptr);
            }
        }
        let c = self.cntr_mut(cntr);
        c.owned_procs.assign(c.owned_procs.insert(p_ptr));
        Ok(p_ptr)
    }

    /// Terminates process `p`, its threads, and its descendant processes.
    /// Returns the freed address-space identifiers.
    pub fn terminate_process(
        &mut self,
        alloc: &mut dyn PageSource,
        p: ProcPtr,
    ) -> Result<Vec<usize>, PmError> {
        if !self.proc_perms.contains(p) {
            return Err(PmError::NotFound);
        }
        // Collect the process subtree iteratively (children lists).
        let mut stack = vec![p];
        let mut order = Vec::new();
        while let Some(q) = stack.pop() {
            order.push(q);
            stack.extend(self.proc(q).children.iter());
        }

        let mut freed = Vec::new();
        // Tear down leaves first so parent links stay valid for unlinking.
        for &q in order.iter().rev() {
            let threads: Vec<ThrdPtr> = self.proc(q).threads.to_vec();
            for t in threads {
                self.terminate_thread(alloc, t)?;
            }
            let (cntr, parent) = {
                let pr = self.proc(q);
                (pr.owning_container, pr.parent)
            };
            match parent {
                Some(pp) if self.proc_perms.contains(pp) => {
                    self.proc_mut(pp).children.remove(&q);
                }
                _ => {
                    self.cntr_mut(cntr).root_procs.remove(&q);
                }
            }
            freed.push(self.proc(q).addr_space);
            self.trace
                .audit(AuditDelta::ProcSpaceGone(self.proc(q).addr_space));
            let perm = self.proc_perms.tracked_remove(q);
            let (page, _) = PagePermission::from_object(PPtr::<Process>::from_usize(q), perm);
            self.trace.audit(AuditDelta::PmRelease(q));
            alloc.free_page_4k(page);
            let c = self.cntr_mut(cntr);
            c.owned_procs.assign(c.owned_procs.remove(&q));
            self.uncharge(cntr, 1);
        }
        Ok(freed)
    }

    /// Creates a thread in `proc`, homed on `cpu` (which the owning
    /// container — or an ancestor — must own), initially Ready.
    pub fn new_thread(
        &mut self,
        alloc: &mut dyn PageSource,
        proc: ProcPtr,
        cpu: CpuId,
    ) -> Result<ThrdPtr, PmError> {
        if !self.proc_perms.contains(proc) {
            return Err(PmError::NotFound);
        }
        let cntr = self.proc(proc).owning_container;
        if !self.container_owns_cpu(cntr, cpu) {
            return Err(PmError::CpuNotOwned);
        }
        if self.proc(proc).threads.is_full() {
            return Err(PmError::CapacityExceeded);
        }
        self.charge(cntr, 1)?;
        let (t_ptr, page) = match alloc.alloc_page_4k() {
            Ok(x) => x,
            Err(e) => {
                self.uncharge(cntr, 1);
                return Err(e.into());
            }
        };
        self.trace.audit(AuditDelta::PmAcquire(t_ptr));
        let thread = Thread::new(proc, cntr);
        let (_, perm) = page.into_object(thread);
        self.thrd_perms.tracked_insert(t_ptr, perm);
        self.proc_mut(proc).threads.push(t_ptr);
        let c = self.cntr_mut(cntr);
        c.owned_thrds.assign(c.owned_thrds.insert(t_ptr));
        self.home_cpu.insert(t_ptr, cpu);
        // Enqueue cannot overflow (intrusive slab lists); a thread born
        // into a throttled container parks until the next refill.
        if self.sched.throttled(cntr) {
            self.sched.park(t_ptr, cpu, cntr);
        } else {
            self.sched.enqueue(cpu, t_ptr);
        }
        Ok(t_ptr)
    }

    /// Terminates a single thread: dequeues it everywhere, fixes endpoint
    /// queues and reply partners, releases its descriptors (destroying
    /// endpoints whose refcount reaches zero), and frees its page.
    pub fn terminate_thread(
        &mut self,
        alloc: &mut dyn PageSource,
        t: ThrdPtr,
    ) -> Result<(), PmError> {
        if !self.thrd_perms.contains(t) {
            return Err(PmError::NotFound);
        }
        // Scheduler removal.
        self.sched.remove(t);

        // An in-flight page grant (queued send or delivered-but-untaken
        // message) holds a mapping reference; release it so the frame is
        // not leaked (§4.2 leak freedom).
        if let Some(payload) = self.thrd(t).ipc_buf {
            if let Some(frame) = payload.page_grant {
                self.trace.audit(AuditDelta::RefDec(frame));
                alloc.dec_map_ref(frame);
            }
        }

        // Endpoint queue removal for blocked states.
        match self.thrd(t).state {
            ThreadState::BlockedSend(e) | ThreadState::BlockedRecv(e) => {
                let ep = self.edpt_mut(e);
                ep.queue.remove(&t);
                if ep.queue.is_empty() {
                    ep.side = QueueSide::Idle;
                }
            }
            _ => {}
        }
        // Threads awaiting a reply from `t` are woken empty-handed (the
        // functional-correctness guarantee of V relies on this: a crashed
        // peer cannot wedge the service, §3).
        if let Some(rp) = self.thrd(t).reply_partner {
            if self.thrd_perms.contains(rp)
                && matches!(self.thrd(rp).state, ThreadState::BlockedReply(_))
            {
                self.thrd_mut(rp).ipc_buf = None;
                self.make_ready(rp);
            }
        }
        // And a receiver owing `t` a reply forgets the obligation.
        let owing: Vec<ThrdPtr> = self
            .thrd_perms
            .iter()
            .filter(|(_, q)| q.value().reply_partner == Some(t))
            .map(|(ptr, _)| ptr)
            .collect();
        for q in owing {
            self.thrd_mut(q).reply_partner = None;
        }

        // Release descriptors.
        let descriptors: Vec<EdptPtr> = self
            .thrd(t)
            .edpt_descriptors
            .iter()
            .flatten()
            .copied()
            .collect();
        for e in descriptors {
            self.release_endpoint_ref(alloc, e);
        }

        self.remove_thread_object(alloc, t);
        Ok(())
    }

    fn remove_thread_object(&mut self, alloc: &mut dyn PageSource, t: ThrdPtr) {
        let (proc, cntr) = {
            let th = self.thrd(t);
            (th.owning_proc, th.owning_cntr)
        };
        self.sched.remove(t);
        if self.proc_perms.contains(proc) {
            self.proc_mut(proc).threads.remove(&t);
        }
        let c = self.cntr_mut(cntr);
        c.owned_thrds.assign(c.owned_thrds.remove(&t));
        self.home_cpu.remove(&t);
        self.slot_cache.retain(|(owner, _), _| *owner != t);
        let perm = self.thrd_perms.tracked_remove(t);
        let (page, _) = PagePermission::from_object(PPtr::<Thread>::from_usize(t), perm);
        self.trace.audit(AuditDelta::PmRelease(t));
        alloc.free_page_4k(page);
        self.uncharge(cntr, 1);
    }

    /// Drops one descriptor reference to `e`; destroys the endpoint when
    /// the last reference goes.
    ///
    /// A thread can be *queued* on an endpoint it no longer holds a
    /// descriptor to (its descriptor was removed while it was blocked, or
    /// it was granted away). When the last descriptor reference goes, any
    /// such threads can never rendezvous again: each is dequeued, its
    /// in-flight payload is discarded (releasing any granted page's
    /// mapping reference), and it is woken with no message delivered —
    /// the error signal for an aborted IPC.
    fn release_endpoint_ref(&mut self, alloc: &mut dyn PageSource, e: EdptPtr) {
        let (refcount, owner) = {
            let ep = self.edpt_mut(e);
            ep.refcount -= 1;
            (ep.refcount, ep.owning_cntr)
        };
        if refcount == 0 {
            let orphans: Vec<ThrdPtr> = {
                let ep = self.edpt_mut(e);
                let q = ep.queue.to_vec();
                for t in &q {
                    ep.queue.remove(t);
                }
                ep.side = QueueSide::Idle;
                q
            };
            for t in orphans {
                // An aborted send abandons its in-flight payload.
                if let Some(p) = self.thrd_mut(t).ipc_buf.take() {
                    if let Some(frame) = p.page_grant {
                        self.trace.audit(AuditDelta::RefDec(frame));
                        alloc.dec_map_ref(frame);
                    }
                }
                self.thrd_mut(t).is_calling = false;
                self.make_ready(t);
            }
            let c = self.cntr_mut(owner);
            c.owned_edpts.assign(c.owned_edpts.remove(&e));
            self.slot_cache.retain(|_, cached| *cached != e);
            let perm = self.edpt_perms.tracked_remove(e);
            let (page, _) = PagePermission::from_object(PPtr::<Endpoint>::from_usize(e), perm);
            self.trace.audit(AuditDelta::PmRelease(e));
            self.trace.audit(AuditDelta::CapDestroy(e));
            alloc.free_page_4k(page);
            self.uncharge(owner, 1);
        }
    }

    /// `true` when `cntr` or one of its ancestors owns `cpu`.
    pub fn container_owns_cpu(&self, cntr: CtnrPtr, cpu: CpuId) -> bool {
        if !self.cntr_perms.contains(cntr) {
            return false;
        }
        let c = self.cntr(cntr);
        c.owned_cpus.contains(&cpu)
            || c.path
                .iter()
                .any(|a| self.cntr_perms.contains(*a) && self.cntr(*a).owned_cpus.contains(&cpu))
    }

    // ----- endpoints and IPC ------------------------------------------------

    /// Creates an endpoint, installing a descriptor into `slot` of thread
    /// `t` and charging `t`'s container for its page.
    pub fn new_endpoint(
        &mut self,
        alloc: &mut dyn PageSource,
        t: ThrdPtr,
        slot: EdptIdx,
    ) -> Result<EdptPtr, PmError> {
        if !self.thrd_perms.contains(t) {
            return Err(PmError::NotFound);
        }
        if slot >= MAX_ENDPOINT_SLOTS || self.thrd(t).edpt_descriptors[slot].is_some() {
            return Err(PmError::InvalidArgument);
        }
        let cntr = self.thrd(t).owning_cntr;
        self.charge(cntr, 1)?;
        let (e_ptr, page) = match alloc.alloc_page_4k() {
            Ok(x) => x,
            Err(e) => {
                self.uncharge(cntr, 1);
                return Err(e.into());
            }
        };
        self.trace.audit(AuditDelta::PmAcquire(e_ptr));
        self.trace.audit(AuditDelta::CapCreate(e_ptr));
        let (_, perm) = page.into_object(Endpoint::new(cntr));
        self.edpt_perms.tracked_insert(e_ptr, perm);
        self.thrd_mut(t).edpt_descriptors[slot] = Some(e_ptr);
        let c = self.cntr_mut(cntr);
        c.owned_edpts.assign(c.owned_edpts.insert(e_ptr));
        Ok(e_ptr)
    }

    /// Installs an additional descriptor for an existing endpoint into
    /// `slot` of thread `t` (the receive side of an endpoint grant).
    pub fn install_descriptor(
        &mut self,
        t: ThrdPtr,
        slot: EdptIdx,
        e: EdptPtr,
    ) -> Result<(), PmError> {
        if !self.thrd_perms.contains(t) || !self.edpt_perms.contains(e) {
            return Err(PmError::NotFound);
        }
        if slot >= MAX_ENDPOINT_SLOTS || self.thrd(t).edpt_descriptors[slot].is_some() {
            return Err(PmError::InvalidArgument);
        }
        self.thrd_mut(t).edpt_descriptors[slot] = Some(e);
        self.edpt_mut(e).refcount += 1;
        Ok(())
    }

    /// Removes the descriptor in `slot` of `t`, releasing the reference.
    pub fn remove_descriptor(
        &mut self,
        alloc: &mut dyn PageSource,
        t: ThrdPtr,
        slot: EdptIdx,
    ) -> Result<(), PmError> {
        if !self.thrd_perms.contains(t) {
            return Err(PmError::NotFound);
        }
        let e = self
            .thrd(t)
            .descriptor(slot)
            .ok_or(PmError::InvalidArgument)?;
        self.thrd_mut(t).edpt_descriptors[slot] = None;
        self.slot_cache.remove(&(t, slot));
        self.release_endpoint_ref(alloc, e);
        Ok(())
    }

    /// Resolves `slot` of thread `t` through the descriptor-slot cache;
    /// a hit skips the descriptor-table walk entirely. Misses populate
    /// the cache so the next IPC on the same slot is a hit.
    fn cached_descriptor(&mut self, t: ThrdPtr, slot: EdptIdx) -> Result<EdptPtr, PmError> {
        if let Some(&e) = self.slot_cache.get(&(t, slot)) {
            debug_assert_eq!(
                self.thrd(t).descriptor(slot),
                Some(e),
                "stale descriptor-slot cache entry"
            );
            self.trace.fastpath(FastpathOutcome::SlotCacheHit);
            return Ok(e);
        }
        let e = self
            .thrd(t)
            .descriptor(slot)
            .ok_or(PmError::InvalidArgument)?;
        self.trace.fastpath(FastpathOutcome::SlotCacheMiss);
        self.slot_cache.insert((t, slot), e);
        Ok(e)
    }

    fn make_ready(&mut self, t: ThrdPtr) {
        self.thrd_mut(t).state = ThreadState::Ready;
        let cpu = *self.home_cpu.get(&t).expect("thread without home CPU");
        let cntr = self.thrd(t).owning_cntr;
        // A thread of a throttled container parks off the run queues
        // until the refill wheel unthrottles it; enqueue itself cannot
        // overflow (intrusive slab lists).
        if self.sched.throttled(cntr) {
            self.sched.park(t, cpu, cntr);
            return;
        }
        self.sched.enqueue(cpu, t);
        // An idle CPU picks up the newly runnable thread immediately (the
        // hardware would take the reschedule IPI).
        if self.sched.current(cpu).is_none() {
            if let Some(next) = self.sched.dispatch(cpu) {
                self.thrd_mut(next).state = ThreadState::Running(cpu);
            }
        }
    }

    /// Blocks the running thread on `cpu` with `state` and dispatches the
    /// next ready thread.
    fn block_current(&mut self, cpu: CpuId, t: ThrdPtr, state: ThreadState) {
        debug_assert_eq!(self.sched.current(cpu), Some(t));
        self.thrd_mut(t).state = state;
        // Going through the ready queue ends any IPC billing handoff.
        self.sched.clear_inherit(t);
        self.sched.clear_current(cpu);
        if let Some(next) = self.sched.dispatch(cpu) {
            self.thrd_mut(next).state = ThreadState::Running(cpu);
        }
        // The CPU went through its ready queue: the handoff starvation
        // budget starts over.
        self.handoff_streak[cpu] = 0;
    }

    /// Delivers `payload` into `receiver`'s buffer, installing any
    /// endpoint grant into a free descriptor slot.
    fn deliver(&mut self, receiver: ThrdPtr, mut payload: IpcPayload) {
        if let Some(grant) = payload.endpoint_grant {
            match self.thrd(receiver).free_slot() {
                Some(slot) => {
                    self.thrd_mut(receiver).edpt_descriptors[slot] = Some(grant);
                    self.edpt_mut(grant).refcount += 1;
                }
                None => {
                    // No free slot: the grant is dropped (documented
                    // behaviour; the scalar payload still arrives).
                    payload.endpoint_grant = None;
                }
            }
        }
        self.thrd_mut(receiver).ipc_buf = Some(payload);
    }

    /// The `send` operation of thread `t` (running on `cpu`) over the
    /// endpoint in `slot`.
    pub fn send(
        &mut self,
        t: ThrdPtr,
        cpu: CpuId,
        slot: EdptIdx,
        payload: IpcPayload,
    ) -> Result<SendOutcome, PmError> {
        self.check_running(t, cpu)?;
        let e = self.cached_descriptor(t, slot)?;
        if self.edpt(e).side == QueueSide::Receivers {
            let r = {
                let ep = self.edpt_mut(e);
                let r = ep.queue.pop_front().expect("non-idle queue is nonempty");
                if ep.queue.is_empty() {
                    ep.side = QueueSide::Idle;
                }
                r
            };
            self.deliver(r, payload);
            self.make_ready(r);
            // Fast path: one message transferred — submit + consume.
            self.trace.emit(KernelEvent::EndpointSend {
                endpoint: e,
                rendezvous: true,
            });
            self.trace.emit(KernelEvent::EndpointRecv {
                endpoint: e,
                rendezvous: false,
            });
            Ok(SendOutcome::Delivered(r))
        } else {
            if self.edpt(e).queue.is_full() {
                return Err(PmError::EndpointFull);
            }
            {
                let th = self.thrd_mut(t);
                th.ipc_buf = Some(payload);
                th.is_calling = false;
            }
            {
                let ep = self.edpt_mut(e);
                ep.queue.push(t);
                ep.side = QueueSide::Senders;
            }
            self.block_current(cpu, t, ThreadState::BlockedSend(e));
            self.trace.emit(KernelEvent::EndpointSend {
                endpoint: e,
                rendezvous: false,
            });
            Ok(SendOutcome::Blocked)
        }
    }

    /// Completes a receive against a waiting sender on endpoint `e`:
    /// dequeues the sender, transfers the payload into `t`, and either
    /// readies the sender or parks it awaiting `t`'s reply.
    fn complete_recv_from_sender(&mut self, t: ThrdPtr, e: EdptPtr) -> IpcPayload {
        let s = {
            let ep = self.edpt_mut(e);
            let s = ep.queue.pop_front().expect("non-idle queue is nonempty");
            if ep.queue.is_empty() {
                ep.side = QueueSide::Idle;
            }
            s
        };
        let payload = self
            .thrd_mut(s)
            .ipc_buf
            .take()
            .expect("blocked sender carries a payload");
        self.deliver(t, payload);
        let delivered = self.thrd(t).ipc_buf.expect("just delivered");
        if self.thrd(s).is_calling {
            // The sender awaits our reply.
            self.thrd_mut(s).state = ThreadState::BlockedReply(e);
            self.thrd_mut(t).reply_partner = Some(s);
        } else {
            self.make_ready(s);
        }
        // A queued sender's message was consumed (receive fast path).
        self.trace.emit(KernelEvent::EndpointRecv {
            endpoint: e,
            rendezvous: true,
        });
        delivered
    }

    /// Non-blocking receive (`poll`): delivers a waiting sender's message
    /// or reports that none is queued, never blocking the caller.
    pub fn try_recv(
        &mut self,
        t: ThrdPtr,
        cpu: CpuId,
        slot: EdptIdx,
    ) -> Result<Option<IpcPayload>, PmError> {
        self.check_running(t, cpu)?;
        let e = self.cached_descriptor(t, slot)?;
        if self.edpt(e).side == QueueSide::Senders {
            Ok(Some(self.complete_recv_from_sender(t, e)))
        } else {
            Ok(None)
        }
    }

    /// The `recv` operation of thread `t` (running on `cpu`) over the
    /// endpoint in `slot`.
    pub fn recv(&mut self, t: ThrdPtr, cpu: CpuId, slot: EdptIdx) -> Result<RecvOutcome, PmError> {
        self.check_running(t, cpu)?;
        let e = self.cached_descriptor(t, slot)?;
        self.recv_with(t, cpu, e)
    }

    /// The `recv` body against a resolved endpoint `e`.
    fn recv_with(&mut self, t: ThrdPtr, cpu: CpuId, e: EdptPtr) -> Result<RecvOutcome, PmError> {
        if self.edpt(e).side == QueueSide::Senders {
            let delivered = self.complete_recv_from_sender(t, e);
            Ok(RecvOutcome::Received(delivered))
        } else {
            if self.edpt(e).queue.is_full() {
                return Err(PmError::EndpointFull);
            }
            {
                let ep = self.edpt_mut(e);
                ep.queue.push(t);
                ep.side = QueueSide::Receivers;
            }
            self.block_current(cpu, t, ThreadState::BlockedRecv(e));
            Ok(RecvOutcome::Blocked)
        }
    }

    /// The `call` operation: send + await reply (the paper's measured
    /// call/reply round trip, Table 3).
    pub fn call(
        &mut self,
        t: ThrdPtr,
        cpu: CpuId,
        slot: EdptIdx,
        payload: IpcPayload,
    ) -> Result<SendOutcome, PmError> {
        self.check_running(t, cpu)?;
        let e = self.cached_descriptor(t, slot)?;
        self.call_with(t, cpu, e, payload)
    }

    /// The slow-rendezvous `call` body against a resolved endpoint `e`.
    fn call_with(
        &mut self,
        t: ThrdPtr,
        cpu: CpuId,
        e: EdptPtr,
        payload: IpcPayload,
    ) -> Result<SendOutcome, PmError> {
        if self.edpt(e).side == QueueSide::Receivers {
            let r = {
                let ep = self.edpt_mut(e);
                let r = ep.queue.pop_front().expect("non-idle queue is nonempty");
                if ep.queue.is_empty() {
                    ep.side = QueueSide::Idle;
                }
                r
            };
            self.deliver(r, payload);
            self.thrd_mut(r).reply_partner = Some(t);
            self.make_ready(r);
            self.block_current(cpu, t, ThreadState::BlockedReply(e));
            self.trace.emit(KernelEvent::EndpointSend {
                endpoint: e,
                rendezvous: true,
            });
            self.trace.emit(KernelEvent::EndpointRecv {
                endpoint: e,
                rendezvous: false,
            });
            Ok(SendOutcome::Delivered(r))
        } else {
            if self.edpt(e).queue.is_full() {
                return Err(PmError::EndpointFull);
            }
            {
                let th = self.thrd_mut(t);
                th.ipc_buf = Some(payload);
                th.is_calling = true;
            }
            {
                let ep = self.edpt_mut(e);
                ep.queue.push(t);
                ep.side = QueueSide::Senders;
            }
            self.block_current(cpu, t, ThreadState::BlockedSend(e));
            self.trace.emit(KernelEvent::EndpointSend {
                endpoint: e,
                rendezvous: false,
            });
            Ok(SendOutcome::Blocked)
        }
    }

    /// The `reply` operation: wakes the caller this thread owes a reply.
    pub fn reply(
        &mut self,
        t: ThrdPtr,
        cpu: CpuId,
        payload: IpcPayload,
    ) -> Result<ThrdPtr, PmError> {
        self.check_running(t, cpu)?;
        let caller = self.thrd(t).reply_partner.ok_or(PmError::WrongState)?;
        let e = match self.thrd(caller).state {
            ThreadState::BlockedReply(e) => e,
            _ => return Err(PmError::WrongState),
        };
        self.deliver(caller, payload);
        self.thrd_mut(t).reply_partner = None;
        self.make_ready(caller);
        // A reply is a direct transfer to the waiting caller.
        self.trace.emit(KernelEvent::EndpointSend {
            endpoint: e,
            rendezvous: true,
        });
        self.trace.emit(KernelEvent::EndpointRecv {
            endpoint: e,
            rendezvous: false,
        });
        Ok(caller)
    }

    /// `true` when `payload` carries a capability grant — those paths
    /// need mem-domain work at delivery time, so the pm-only fast path
    /// refuses them.
    fn payload_carries_grant(payload: &IpcPayload) -> bool {
        payload.page_grant.is_some()
            || payload.endpoint_grant.is_some()
            || payload.iommu_grant.is_some()
    }

    /// Why a `call` on endpoint `e` from `cpu` cannot take the direct
    /// handoff, or `None` when it can.
    fn call_miss_reason(
        &self,
        e: EdptPtr,
        cpu: CpuId,
        payload: &IpcPayload,
    ) -> Option<FastpathOutcome> {
        if Self::payload_carries_grant(payload) {
            return Some(FastpathOutcome::CapTransfer);
        }
        let ep = self.edpt(e);
        if ep.side != QueueSide::Receivers {
            return Some(if ep.queue.is_full() {
                FastpathOutcome::QueueFull
            } else {
                FastpathOutcome::WrongSide
            });
        }
        let r = ep.queue.get(0);
        if self.home_cpu.get(&r) != Some(&cpu) {
            return Some(FastpathOutcome::CrossCpu);
        }
        if self.handoff_streak[cpu] >= HANDOFF_BUDGET {
            return Some(FastpathOutcome::Budget);
        }
        None
    }

    /// The `call` operation with the direct-handoff fast path: when a
    /// receiver is already parked on the endpoint, homed on this CPU,
    /// and the payload is scalar-only, the message moves by permission
    /// transfer and the CPU switches straight to the receiver — no
    /// ready-queue round trip. Any miss falls back to the slow
    /// rendezvous in [`call`](Self::call), which reaches the same
    /// abstract send/recv transition. Returns the outcome plus whether
    /// the fast path was taken (for cycle charging).
    pub fn call_fast(
        &mut self,
        t: ThrdPtr,
        cpu: CpuId,
        slot: EdptIdx,
        payload: IpcPayload,
    ) -> Result<(SendOutcome, bool), PmError> {
        self.check_running(t, cpu)?;
        let e = self.cached_descriptor(t, slot)?;
        if let Some(reason) = self.call_miss_reason(e, cpu, &payload) {
            self.trace.fastpath(reason);
            return self.call_with(t, cpu, e, payload).map(|o| (o, false));
        }
        let r = {
            let ep = self.edpt_mut(e);
            let r = ep.queue.pop_front().expect("non-idle queue is nonempty");
            if ep.queue.is_empty() {
                ep.side = QueueSide::Idle;
            }
            r
        };
        // The payload moves through the receiver's permission (no copy,
        // no intermediate buffer), exactly as `deliver` does on the slow
        // path; the caller parks in its reply slot and the CPU is handed
        // to the receiver without touching the ready queue.
        self.deliver(r, payload);
        self.thrd_mut(r).reply_partner = Some(t);
        self.thrd_mut(t).state = ThreadState::BlockedReply(e);
        self.sched.switch_current(cpu, t, r);
        self.thrd_mut(r).state = ThreadState::Running(cpu);
        // Budget inheritance: the server runs on the client's account
        // (resolving nested handoffs to the originating client), so a
        // shared service is never drained by any one tenant.
        let billed = self.sched.billed(t, self.thrd(t).owning_cntr);
        if billed != self.thrd(r).owning_cntr {
            self.sched.inherit(r, billed);
        }
        self.handoff_streak[cpu] += 1;
        self.trace.fastpath(FastpathOutcome::Hit);
        // Same event pair as the slow rendezvous arm: the trace audit
        // reconciles counters against events exactly, so fast and slow
        // paths must be indistinguishable at the event level.
        self.trace.emit(KernelEvent::EndpointSend {
            endpoint: e,
            rendezvous: true,
        });
        self.trace.emit(KernelEvent::EndpointRecv {
            endpoint: e,
            rendezvous: false,
        });
        Ok((SendOutcome::Delivered(r), true))
    }

    /// Why a `reply_recv` replying to `caller` and re-opening `e` from
    /// `cpu` cannot take the direct handoff, or `None` when it can.
    fn reply_recv_miss_reason(
        &self,
        e: EdptPtr,
        cpu: CpuId,
        caller: ThrdPtr,
        payload: &IpcPayload,
    ) -> Option<FastpathOutcome> {
        if Self::payload_carries_grant(payload) {
            return Some(FastpathOutcome::CapTransfer);
        }
        if self.home_cpu.get(&caller) != Some(&cpu) {
            return Some(FastpathOutcome::CrossCpu);
        }
        if self.edpt(e).side == QueueSide::Senders {
            // A request is already queued: the slow path consumes it
            // instead of parking the replier.
            return Some(FastpathOutcome::WrongSide);
        }
        if self.handoff_streak[cpu] >= HANDOFF_BUDGET {
            return Some(FastpathOutcome::Budget);
        }
        None
    }

    /// The combined `reply_recv` operation: answer the caller this
    /// thread owes a reply and re-open the endpoint in `slot` for the
    /// next request, in one trap. On the fast path the CPU is handed
    /// straight back to the caller and the replier parks as the
    /// endpoint's receiver; on a miss the reply goes through
    /// [`reply`](Self::reply) and the receive through the slow `recv`
    /// body. Returns the outcome plus whether the fast path was taken.
    pub fn reply_recv(
        &mut self,
        t: ThrdPtr,
        cpu: CpuId,
        slot: EdptIdx,
        payload: IpcPayload,
    ) -> Result<(ReplyRecvOutcome, bool), PmError> {
        self.check_running(t, cpu)?;
        let e = self.cached_descriptor(t, slot)?;
        let caller = self.thrd(t).reply_partner.ok_or(PmError::WrongState)?;
        let reply_e = match self.thrd(caller).state {
            ThreadState::BlockedReply(re) => re,
            _ => return Err(PmError::WrongState),
        };
        // Validate the receive half before any mutation: the combined
        // syscall must be all-or-nothing so failed calls stay noops
        // under the refinement audit.
        if self.edpt(e).side != QueueSide::Senders && self.edpt(e).queue.is_full() {
            return Err(PmError::EndpointFull);
        }
        if let Some(reason) = self.reply_recv_miss_reason(e, cpu, caller, &payload) {
            self.trace.fastpath(reason);
            self.reply(t, cpu, payload)?;
            let out = match self.recv_with(t, cpu, e)? {
                RecvOutcome::Received(p) => ReplyRecvOutcome::Received(p),
                RecvOutcome::Blocked => ReplyRecvOutcome::Blocked,
            };
            return Ok((out, false));
        }
        // Fast path: park the replier as the endpoint's receiver, then
        // hand the CPU straight back to the caller.
        {
            let ep = self.edpt_mut(e);
            let pushed = ep.queue.push(t);
            debug_assert!(pushed, "capacity checked above");
            ep.side = QueueSide::Receivers;
        }
        self.deliver(caller, payload);
        self.thrd_mut(t).reply_partner = None;
        self.thrd_mut(t).state = ThreadState::BlockedRecv(e);
        self.sched.switch_current(cpu, t, caller);
        self.thrd_mut(caller).state = ThreadState::Running(cpu);
        // The handoff unwound: the replier stops billing to the
        // client's account.
        self.sched.clear_inherit(t);
        self.handoff_streak[cpu] += 1;
        self.trace.fastpath(FastpathOutcome::Hit);
        // Same event pair as the slow `reply`.
        self.trace.emit(KernelEvent::EndpointSend {
            endpoint: reply_e,
            rendezvous: true,
        });
        self.trace.emit(KernelEvent::EndpointRecv {
            endpoint: reply_e,
            rendezvous: false,
        });
        Ok((ReplyRecvOutcome::Handoff(caller), true))
    }

    /// Timer tick / `yield` on `cpu`: charges the tick to the running
    /// thread's billed account (the client's under an IPC inheritance
    /// handoff), advances the budget refill wheel, throttles exhausted
    /// containers — parking their Ready threads off the run queues —
    /// and round-robin rotates with state bookkeeping.
    pub fn timer_tick(&mut self, cpu: CpuId) -> Option<ThrdPtr> {
        self.handoff_streak[cpu] = 0;
        // One global wheel tick; refilled accounts unthrottle and their
        // parked threads re-enqueue (still Ready) to their home CPUs.
        self.sched.advance_wheel();
        if let Some(cur) = self.sched.current(cpu) {
            let owner = self.thrd(cur).owning_cntr;
            let billed = self.sched.billed(cur, owner);
            let exhausted = self.sched.charge_tick(billed) == ChargeOutcome::Exhausted;
            // Going through the ready queue ends any billing handoff.
            self.sched.clear_inherit(cur);
            if exhausted {
                self.sched.throttle(billed);
                // `cur` is still Running here, so the Ready filter
                // leaves it to the explicit handling below.
                self.park_ready_threads(billed);
            }
            if self.sched.throttled(owner) {
                // The thread's own container is throttled — it just
                // exhausted its budget, exhausted it from another CPU,
                // or was administratively throttled mid-run: park it
                // instead of requeueing, and run someone else.
                self.thrd_mut(cur).state = ThreadState::Ready;
                self.sched.clear_current(cpu);
                let home = *self.home_cpu.get(&cur).expect("thread without home CPU");
                self.sched.park(cur, home, owner);
                let next = self.sched.dispatch(cpu)?;
                self.thrd_mut(next).state = ThreadState::Running(cpu);
                return Some(next);
            }
            self.thrd_mut(cur).state = ThreadState::Ready;
        }
        let next = self.sched.rotate(cpu)?;
        self.thrd_mut(next).state = ThreadState::Running(cpu);
        Some(next)
    }

    /// Parks every Ready thread of `cntr` off the run queues into its
    /// (throttled) budget account.
    fn park_ready_threads(&mut self, cntr: CtnrPtr) {
        if !self.cntr_perms.contains(cntr) || !self.sched.throttled(cntr) {
            return;
        }
        let ready: Vec<ThrdPtr> = self
            .cntr(cntr)
            .owned_thrds
            .iter()
            .copied()
            .filter(|&t| self.thrd(t).state == ThreadState::Ready)
            .collect();
        for t in ready {
            self.sched.remove(t);
            let home = *self.home_cpu.get(&t).expect("thread without home CPU");
            self.sched.park(t, home, cntr);
        }
    }

    /// Sets `cntr`'s scheduling weight (0 tears the account down and
    /// refunds its budget). Threads parked in a torn-down account
    /// return to their run queues.
    pub fn sched_set_weight(&mut self, cntr: CtnrPtr, weight: u32) -> Result<(), PmError> {
        if !self.cntr_perms.contains(cntr) {
            return Err(PmError::NotFound);
        }
        for (t, cpu) in self.sched.set_weight(cntr, weight) {
            self.sched.enqueue(cpu, t);
        }
        Ok(())
    }

    /// Administratively throttles or unthrottles `cntr`. Throttling
    /// parks its Ready threads (running ones park at their next tick)
    /// and holds across refills until the matching unthrottle;
    /// unthrottling re-enqueues them — unless the account is also
    /// budget-exhausted, in which case the threads stay parked until
    /// the wheel refills it. Requires a budget account.
    pub fn sched_throttle(&mut self, cntr: CtnrPtr, throttle: bool) -> Result<(), PmError> {
        if !self.cntr_perms.contains(cntr) {
            return Err(PmError::NotFound);
        }
        if self.sched.weight(cntr) == 0 {
            return Err(PmError::InvalidArgument);
        }
        if throttle {
            self.sched.throttle_admin(cntr);
            self.park_ready_threads(cntr);
        } else {
            // Re-enqueue happens inside unthrottle; threads stay Ready.
            self.sched.unthrottle_admin(cntr);
        }
        Ok(())
    }

    /// Takes the delivered message out of `t`'s buffer.
    pub fn take_message(&mut self, t: ThrdPtr) -> Option<IpcPayload> {
        self.thrd_mut(t).ipc_buf.take()
    }

    /// Wakes `t` if it is blocked on an endpoint (removing it from the
    /// queue) — the interrupt-notification path. Runnable or
    /// reply-blocked threads are left alone. Returns `true` when woken.
    pub fn wake_if_blocked(&mut self, _alloc: &mut dyn PageSource, t: ThrdPtr) -> bool {
        if !self.thrd_perms.contains(t) {
            return false;
        }
        match self.thrd(t).state {
            ThreadState::BlockedSend(e) | ThreadState::BlockedRecv(e) => {
                let ep = self.edpt_mut(e);
                ep.queue.remove(&t);
                if ep.queue.is_empty() {
                    ep.side = QueueSide::Idle;
                }
                // An aborted send abandons its in-flight payload.
                if let Some(p) = self.thrd_mut(t).ipc_buf.take() {
                    if let Some(frame) = p.page_grant {
                        self.trace.audit(AuditDelta::RefDec(frame));
                        _alloc.dec_map_ref(frame);
                    }
                }
                self.make_ready(t);
                true
            }
            _ => false,
        }
    }

    fn check_running(&self, t: ThrdPtr, cpu: CpuId) -> Result<(), PmError> {
        if !self.thrd_perms.contains(t) {
            return Err(PmError::NotFound);
        }
        if self.thrd(t).state != ThreadState::Running(cpu) || self.sched.current(cpu) != Some(t) {
            return Err(PmError::WrongState);
        }
        Ok(())
    }
}

impl PageClosure for ProcessManager {
    /// Every object page owned by the process manager: containers,
    /// processes, threads and endpoints (§4.2).
    fn page_closure(&self) -> Set<PagePtr> {
        self.cntr_perms
            .dom()
            .union(&self.proc_perms.dom())
            .union(&self.thrd_perms.dom())
            .union(&self.edpt_perms.dom())
    }
}

impl Invariant for ProcessManager {
    /// `total_wf` for the process-manager subsystem: permission-map
    /// coherence, the container tree, quotas, the CPU partition, the
    /// process forest, threads, endpoints and the scheduler.
    fn wf(&self) -> VerifResult {
        check(
            self.cntr_perms.wf()
                && self.proc_perms.wf()
                && self.thrd_perms.wf()
                && self.edpt_perms.wf(),
            "process_manager",
            "permission map incoherent",
        )?;
        // Object pages never collide across types (type safety at the
        // page level).
        let doms = [
            self.cntr_perms.dom(),
            self.proc_perms.dom(),
            self.thrd_perms.dom(),
            self.edpt_perms.dom(),
        ];
        check(
            atmo_spec::set::pairwise_disjoint(&doms),
            "process_manager",
            "two kernel objects share a page",
        )?;
        container_tree_wf(self.root_container, &self.cntr_perms)?;
        quota_wf(&self.cntr_perms)?;
        cpu_partition_wf(&self.cntr_perms)?;
        process_forest_wf(&self.cntr_perms, &self.proc_perms)?;
        threads_wf(
            &self.cntr_perms,
            &self.proc_perms,
            &self.thrd_perms,
            &self.edpt_perms,
        )?;
        endpoints_wf(&self.thrd_perms, &self.edpt_perms)?;
        sched_wf(&self.sched, &self.cntr_perms, &self.thrd_perms)?;
        // Endpoint ghost ownership.
        for (c_ptr, perm) in self.cntr_perms.iter() {
            for e in perm.value().owned_edpts.iter() {
                check(
                    self.edpt_perms.contains(*e) && self.edpt(*e).owning_cntr == c_ptr,
                    "process_manager",
                    format!("container {c_ptr:#x} claims foreign/dead endpoint {e:#x}"),
                )?;
            }
        }
        for (e_ptr, perm) in self.edpt_perms.iter() {
            let owner = perm.value().owning_cntr;
            check(
                self.cntr_perms.contains(owner) && self.cntr(owner).owned_edpts.contains(&e_ptr),
                "process_manager",
                format!("endpoint {e_ptr:#x} not recorded by its owner"),
            )?;
        }
        Ok(())
    }
}
