//! Flat vs. recursive reasoning — the paper's key design ablation (§4.1,
//! §6.2), executable.
//!
//! Atmosphere stores ghost `path`/`subtree` state so that specifications
//! over unbounded trees are *flat* (single quantifiers over the permission
//! map). The alternative — what a hierarchical-ownership design must do —
//! recomputes reachability by walking the tree recursively. This module
//! implements both versions of the same two queries so the ablation
//! benchmark can measure the gap directly:
//!
//! * **subtree** — all containers reachable below a node: ghost-set
//!   lookup (O(1) + copy) vs. recursive child-list walk (O(n));
//! * **tree validation** — the full structural check: the flat
//!   `container_tree_wf` (quantifier-style loops over the map) vs. a
//!   recursive descent that re-derives paths and subtree sets top-down,
//!   the shape whose SMT encoding the paper shows does not scale.

use atmo_spec::{PermMap, Set};

use crate::container::Container;
use crate::types::CtnrPtr;

/// Flat subtree query: read the ghost set maintained by the operations.
pub fn flat_subtree(cntrs: &PermMap<Container>, c: CtnrPtr) -> Set<CtnrPtr> {
    cntrs.value(c).subtree.view().clone()
}

/// Recursive subtree query: walk the children lists (the
/// hierarchical-ownership formulation).
pub fn recursive_subtree(cntrs: &PermMap<Container>, c: CtnrPtr) -> Set<CtnrPtr> {
    let mut acc = Set::empty();
    fn walk(cntrs: &PermMap<Container>, c: CtnrPtr, acc: &mut Set<CtnrPtr>) {
        for child in cntrs.value(c).children.iter() {
            *acc = acc.insert(child);
            walk(cntrs, child, acc);
        }
    }
    walk(cntrs, c, &mut acc);
    acc
}

/// Flat validation: parent/child, depth, path-prefix and subtree/path
/// duality checked as direct loops over the flat map (the
/// `container_tree_wf` style).
pub fn flat_tree_check(root: CtnrPtr, cntrs: &PermMap<Container>) -> bool {
    crate::container::container_tree_wf(root, cntrs).is_ok()
}

/// Recursive validation: descend from the root, re-deriving each node's
/// expected path and subtree from its parent's, and compare — the
/// unrolled-induction shape.
pub fn recursive_tree_check(root: CtnrPtr, cntrs: &PermMap<Container>) -> bool {
    fn descend(
        cntrs: &PermMap<Container>,
        c: CtnrPtr,
        expected_path: &atmo_spec::Seq<CtnrPtr>,
        expected_depth: usize,
        visited: &mut usize,
    ) -> Option<Set<CtnrPtr>> {
        let node = cntrs.value(c);
        *visited += 1;
        if node.depth != expected_depth || *node.path.view() != *expected_path {
            return None;
        }
        let child_path = expected_path.push(c);
        let mut subtree = Set::empty();
        for child in node.children.iter() {
            if !cntrs.contains(child) || cntrs.value(child).parent != Some(c) {
                return None;
            }
            let child_sub = descend(cntrs, child, &child_path, expected_depth + 1, visited)?;
            subtree = subtree.union(&child_sub).insert(child);
        }
        // The ghost subtree must equal the recursively derived one.
        if *node.subtree.view() != subtree {
            return None;
        }
        Some(subtree)
    }
    let mut visited = 0;
    let ok = descend(cntrs, root, &atmo_spec::Seq::empty(), 0, &mut visited).is_some();
    ok && visited == cntrs.len()
}

/// Builds a container tree of `n` nodes (plus the root) in the given
/// shape for ablation runs: `fanout = 1` produces a chain (worst case for
/// recursion depth), larger fanouts produce bushy trees.
pub fn build_tree(n: usize, fanout: usize) -> (CtnrPtr, PermMap<Container>) {
    use atmo_spec::PointsTo;

    assert!(fanout >= 1);
    let addr = |i: usize| 0x10_0000 + i * 0x1000;
    let root = addr(0);
    let mut cntrs: PermMap<Container> = PermMap::new();
    cntrs.tracked_insert(
        root,
        PointsTo::new_init(root, Container::new_root(usize::MAX / 2, Set::empty())),
    );

    for i in 1..=n {
        let me = addr(i);
        let parent = addr((i - 1) / fanout);
        let (parent_path, parent_depth) = {
            let p = cntrs.value(parent);
            (p.path.view().clone(), p.depth)
        };
        let child = Container::new_child(parent, &parent_path, parent_depth + 1, 1, Set::empty());
        cntrs.tracked_insert(me, PointsTo::new_init(me, child));
        {
            let perm = cntrs.tracked_borrow_mut(parent);
            atmo_spec::PPtr::<Container>::from_usize(parent)
                .borrow_mut(perm)
                .children
                .push(me);
        }
        // Maintain ancestor ghost subtrees (the flat design's O(depth)
        // update).
        let mut ancestors = parent_path.to_vec();
        ancestors.push(parent);
        for anc in ancestors {
            let perm = cntrs.tracked_borrow_mut(anc);
            let a = atmo_spec::PPtr::<Container>::from_usize(anc).borrow_mut(perm);
            a.subtree.assign(a.subtree.insert(me));
        }
    }
    (root, cntrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_subtree_queries_agree() {
        for fanout in [1, 2, 4] {
            let (root, cntrs) = build_tree(30, fanout);
            assert_eq!(
                flat_subtree(&cntrs, root),
                recursive_subtree(&cntrs, root),
                "fanout {fanout}"
            );
        }
    }

    #[test]
    fn both_checks_accept_well_formed_trees() {
        for fanout in [1, 3] {
            let (root, cntrs) = build_tree(40, fanout);
            assert!(flat_tree_check(root, &cntrs), "flat, fanout {fanout}");
            assert!(
                recursive_tree_check(root, &cntrs),
                "recursive, fanout {fanout}"
            );
        }
    }

    #[test]
    fn both_checks_reject_corrupt_subtree() {
        let (root, mut cntrs) = build_tree(20, 2);
        let victim = 0x10_0000 + 5 * 0x1000;
        let perm = cntrs.tracked_borrow_mut(victim);
        let c = atmo_spec::PPtr::<Container>::from_usize(victim).borrow_mut(perm);
        c.subtree.assign(c.subtree.insert(0xdead_b000));
        assert!(!flat_tree_check(root, &cntrs));
        assert!(!recursive_tree_check(root, &cntrs));
    }

    #[test]
    fn recursive_check_detects_unreachable_nodes() {
        // An orphan node never visited by the descent.
        let (root, mut cntrs) = build_tree(10, 2);
        let orphan = 0x99_0000;
        cntrs.tracked_insert(
            orphan,
            atmo_spec::PointsTo::new_init(
                orphan,
                Container::new_child(root, &atmo_spec::Seq::empty(), 1, 1, Set::empty()),
            ),
        );
        assert!(!recursive_tree_check(root, &cntrs));
    }

    #[test]
    fn chain_tree_has_expected_depth() {
        let (root, cntrs) = build_tree(16, 1);
        let deepest = 0x10_0000 + 16 * 0x1000;
        assert_eq!(cntrs.value(deepest).depth, 16);
        assert_eq!(flat_subtree(&cntrs, root).len(), 16);
    }
}
