//! `StaticList<T, N>`: a fixed-capacity list with internal storage.
//!
//! Atmosphere does not use the Rust standard library's heap collections
//! (§5: "our code does not use many common types like vectors"); kernel
//! objects embed fixed-capacity lists instead (Listing 2:
//! `children: StaticList<CtnrPtr>`). This is that type: a `[T; N]`-backed
//! list with O(1) push, order-preserving removal and no allocation.

/// A fixed-capacity, stack-allocated list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticList<T: Copy + Default, const N: usize> {
    items: [T; N],
    len: usize,
}

impl<T: Copy + Default, const N: usize> StaticList<T, N> {
    /// An empty list.
    pub fn new() -> Self {
        StaticList {
            items: [T::default(); N],
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the list has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when no further element fits.
    pub fn is_full(&self) -> bool {
        self.len == N
    }

    /// Capacity `N`.
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Appends `item`; returns `false` when full.
    pub fn push(&mut self, item: T) -> bool {
        if self.len == N {
            return false;
        }
        self.items[self.len] = item;
        self.len += 1;
        true
    }

    /// Element at `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len` (spatial safety; Verus would discharge the
    /// bound statically).
    pub fn get(&self, i: usize) -> T {
        assert!(i < self.len, "StaticList index out of bounds");
        self.items[i]
    }

    /// Iterator over the live elements.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.items[..self.len].iter().copied()
    }

    /// The live elements as a borrowed slice (no allocation).
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len]
    }

    /// The live elements as a vector (spec-level convenience).
    pub fn to_vec(&self) -> Vec<T> {
        self.items[..self.len].to_vec()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> StaticList<T, N> {
    /// `true` when some element equals `item`.
    pub fn contains(&self, item: &T) -> bool {
        self.items[..self.len].contains(item)
    }

    /// Removes the first occurrence of `item`, preserving order.
    /// Returns `true` when an element was removed.
    pub fn remove(&mut self, item: &T) -> bool {
        match self.items[..self.len].iter().position(|x| x == item) {
            None => false,
            Some(i) => {
                self.items.copy_within(i + 1..self.len, i);
                self.len -= 1;
                true
            }
        }
    }

    /// Removes and returns the first element (FIFO pop), if any.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let first = self.items[0];
        self.items.copy_within(1..self.len, 0);
        self.len -= 1;
        Some(first)
    }

    /// `true` when no element occurs twice.
    pub fn no_duplicates(&self) -> bool {
        for i in 0..self.len {
            for j in (i + 1)..self.len {
                if self.items[i] == self.items[j] {
                    return false;
                }
            }
        }
        true
    }
}

impl<T: Copy + Default, const N: usize> Default for StaticList<T, N> {
    fn default() -> Self {
        StaticList::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full() {
        let mut l: StaticList<u32, 3> = StaticList::new();
        assert!(l.push(1) && l.push(2) && l.push(3));
        assert!(l.is_full());
        assert!(!l.push(4), "push on a full list fails");
        assert_eq!(l.len(), 3);
        assert_eq!(l.capacity(), 3);
    }

    #[test]
    fn remove_preserves_order() {
        let mut l: StaticList<u32, 4> = StaticList::new();
        for x in [1, 2, 3, 4] {
            l.push(x);
        }
        assert!(l.remove(&2));
        assert_eq!(l.to_vec(), vec![1, 3, 4]);
        assert!(!l.remove(&9));
    }

    #[test]
    fn pop_front_is_fifo() {
        let mut l: StaticList<u32, 4> = StaticList::new();
        l.push(1);
        l.push(2);
        assert_eq!(l.pop_front(), Some(1));
        assert_eq!(l.pop_front(), Some(2));
        assert_eq!(l.pop_front(), None);
    }

    #[test]
    fn as_slice_views_live_elements() {
        let mut l: StaticList<u32, 4> = StaticList::new();
        l.push(7);
        l.push(8);
        assert_eq!(l.as_slice(), &[7, 8]);
        l.pop_front();
        assert_eq!(l.as_slice(), &[8]);
    }

    #[test]
    fn contains_and_get() {
        let mut l: StaticList<u32, 4> = StaticList::new();
        l.push(5);
        assert!(l.contains(&5));
        assert!(!l.contains(&6));
        assert_eq!(l.get(0), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_len_panics() {
        let l: StaticList<u32, 4> = StaticList::new();
        let _ = l.get(0);
    }

    #[test]
    fn no_duplicates_predicate() {
        let mut l: StaticList<u32, 4> = StaticList::new();
        l.push(1);
        l.push(2);
        assert!(l.no_duplicates());
        l.push(1);
        assert!(!l.no_duplicates());
    }
}
