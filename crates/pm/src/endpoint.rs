//! Endpoints: the IPC rendezvous objects (§3).
//!
//! "Processes can communicate via endpoints. A sender thread can pass
//! scalar data, references to memory pages, IOMMU identifiers, and
//! references to other endpoints." An endpoint queues either senders *or*
//! receivers (never both — a waiting sender would have matched a waiting
//! receiver immediately), and is reference-counted by the descriptor
//! slots that name it across all threads.

use atmo_spec::harness::{check, VerifResult};
use atmo_spec::PermMap;

use crate::staticlist::StaticList;
use crate::thread::Thread;
use crate::types::{CtnrPtr, ThrdPtr, ThreadState, MAX_ENDPOINT_QUEUE};

/// Which side of the rendezvous the queued threads are waiting on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueSide {
    /// No thread queued.
    #[default]
    Idle,
    /// Queued threads are blocked senders.
    Senders,
    /// Queued threads are blocked receivers.
    Receivers,
}

/// An endpoint kernel object (one per 4 KiB page).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Endpoint {
    /// Threads blocked on this endpoint, FIFO.
    pub queue: StaticList<ThrdPtr, MAX_ENDPOINT_QUEUE>,
    /// Direction of the queued threads.
    pub side: QueueSide,
    /// Number of descriptor slots (across all threads) referencing this
    /// endpoint; the endpoint is destroyed when it reaches zero.
    pub refcount: usize,
    /// Container charged for this endpoint's page.
    pub owning_cntr: CtnrPtr,
}

impl Endpoint {
    /// A fresh endpoint charged to `cntr`, with one descriptor reference.
    pub fn new(cntr: CtnrPtr) -> Self {
        Endpoint {
            queue: StaticList::new(),
            side: QueueSide::Idle,
            refcount: 1,
            owning_cntr: cntr,
        }
    }
}

/// Global endpoint well-formedness (`endpoints_wf`), stated flat:
/// queue/side coherence, queued threads blocked in the matching direction,
/// and refcounts equal to the number of live descriptor slots.
pub fn endpoints_wf(thrds: &PermMap<Thread>, edpts: &PermMap<Endpoint>) -> VerifResult {
    for (e_ptr, perm) in edpts.iter() {
        let e = perm.value();

        check(
            e.queue.no_duplicates(),
            "endpoints",
            format!("endpoint {e_ptr:#x} queues a thread twice"),
        )?;
        check(
            (e.side == QueueSide::Idle) == e.queue.is_empty(),
            "endpoints",
            format!("endpoint {e_ptr:#x} queue/side mismatch"),
        )?;
        for t in e.queue.iter() {
            check(
                thrds.contains(t),
                "endpoints",
                format!("endpoint {e_ptr:#x} queues dead thread {t:#x}"),
            )?;
            let expected_ok = match (e.side, thrds.value(t).state) {
                (QueueSide::Senders, ThreadState::BlockedSend(on)) => on == e_ptr,
                (QueueSide::Receivers, ThreadState::BlockedRecv(on)) => on == e_ptr,
                _ => false,
            };
            check(
                expected_ok,
                "endpoints",
                format!("queued thread {t:#x} not blocked on {e_ptr:#x} in the right direction"),
            )?;
        }

        // Refcount = number of descriptor slots naming this endpoint.
        let slots: usize = thrds
            .iter()
            .map(|(_, t)| {
                t.value()
                    .edpt_descriptors
                    .iter()
                    .filter(|d| **d == Some(e_ptr))
                    .count()
            })
            .sum();
        check(
            e.refcount == slots,
            "endpoints",
            format!(
                "endpoint {e_ptr:#x} refcount {} differs from descriptor count {slots}",
                e.refcount
            ),
        )?;
        check(
            e.refcount >= 1,
            "endpoints",
            format!("endpoint {e_ptr:#x} alive with zero references"),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use atmo_spec::{PointsTo, Seq};

    fn thread_with_descriptor(_t_ptr: ThrdPtr, e_ptr: usize) -> Thread {
        let mut t = Thread::new(0x2000, 0x1000);
        t.edpt_descriptors[0] = Some(e_ptr);
        t
    }

    #[test]
    fn healthy_endpoint_is_wf() {
        let e_ptr = 0x7000;
        let t_ptr = 0x3000;
        let mut tm = PermMap::new();
        tm.tracked_insert(
            t_ptr,
            PointsTo::new_init(t_ptr, thread_with_descriptor(t_ptr, e_ptr)),
        );
        let mut em = PermMap::new();
        em.tracked_insert(e_ptr, PointsTo::new_init(e_ptr, Endpoint::new(0x1000)));
        assert!(endpoints_wf(&tm, &em).is_ok());
    }

    #[test]
    fn detects_refcount_drift() {
        let e_ptr = 0x7000;
        let t_ptr = 0x3000;
        let mut tm = PermMap::new();
        tm.tracked_insert(
            t_ptr,
            PointsTo::new_init(t_ptr, thread_with_descriptor(t_ptr, e_ptr)),
        );
        let mut em = PermMap::new();
        let mut e = Endpoint::new(0x1000);
        e.refcount = 2; // only one descriptor exists
        em.tracked_insert(e_ptr, PointsTo::new_init(e_ptr, e));
        let err = endpoints_wf(&tm, &em).unwrap_err();
        assert!(err.detail.contains("refcount"));
    }

    #[test]
    fn detects_queue_side_mismatch() {
        let e_ptr = 0x7000;
        let t_ptr = 0x3000;
        let mut t = thread_with_descriptor(t_ptr, e_ptr);
        t.state = ThreadState::BlockedRecv(e_ptr);
        let mut tm = PermMap::new();
        tm.tracked_insert(t_ptr, PointsTo::new_init(t_ptr, t));
        let mut em = PermMap::new();
        let mut e = Endpoint::new(0x1000);
        e.queue.push(t_ptr);
        e.side = QueueSide::Senders; // but the thread is receiving
        em.tracked_insert(e_ptr, PointsTo::new_init(e_ptr, e));
        assert!(endpoints_wf(&tm, &em).is_err());
    }

    #[test]
    fn detects_idle_with_queued_threads() {
        let e_ptr = 0x7000;
        let t_ptr = 0x3000;
        let mut tm = PermMap::new();
        tm.tracked_insert(
            t_ptr,
            PointsTo::new_init(t_ptr, thread_with_descriptor(t_ptr, e_ptr)),
        );
        let mut em = PermMap::new();
        let mut e = Endpoint::new(0x1000);
        e.queue.push(t_ptr); // queued but side stays Idle
        em.tracked_insert(e_ptr, PointsTo::new_init(e_ptr, e));
        assert!(endpoints_wf(&tm, &em).is_err());
    }

    // Silence the unused-import lint in this test module.
    #[allow(unused)]
    fn _uses(p: Process, s: Seq<u32>) {}
}
