//! Shared process-manager types: pointers, thread states, IPC payloads.

use atmo_mem::PagePtr;

/// Raw pointer to a [`crate::Container`] (its backing page's address).
pub type CtnrPtr = usize;
/// Raw pointer to a [`crate::Process`].
pub type ProcPtr = usize;
/// Raw pointer to a [`crate::Thread`].
pub type ThrdPtr = usize;
/// Raw pointer to an [`crate::Endpoint`].
pub type EdptPtr = usize;
/// Index into a thread's endpoint-descriptor table.
pub type EdptIdx = usize;
/// A CPU core identifier.
pub type CpuId = usize;

/// Maximum direct children per container.
pub const MAX_CHILD_CONTAINERS: usize = 32;
/// Maximum direct child processes per process.
pub const MAX_CHILD_PROCESSES: usize = 32;
/// Maximum threads per process.
pub const MAX_PROC_THREADS: usize = 16;
/// Endpoint-descriptor slots per thread.
pub const MAX_ENDPOINT_SLOTS: usize = 16;
/// Maximum threads queued on one endpoint.
pub const MAX_ENDPOINT_QUEUE: usize = 32;

/// Scheduling / blocking state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ThreadState {
    /// Runnable, waiting in a per-CPU ready queue.
    #[default]
    Ready,
    /// Currently executing on the given CPU.
    Running(CpuId),
    /// Blocked in `send`/`call` on an endpoint, waiting for a receiver.
    BlockedSend(EdptPtr),
    /// Blocked in `recv` on an endpoint, waiting for a sender.
    BlockedRecv(EdptPtr),
    /// Blocked in `call` waiting for the `reply`.
    BlockedReply(EdptPtr),
}

/// What a sender passes through an endpoint (§3: "scalar data, references
/// to memory pages, IOMMU identifiers, and references to other
/// endpoints").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct IpcPayload {
    /// Scalar register payload.
    pub scalars: [u64; 4],
    /// An optional page grant (the head frame being shared).
    pub page_grant: Option<PagePtr>,
    /// An optional endpoint grant (installed into a free descriptor slot
    /// of the receiver).
    pub endpoint_grant: Option<EdptPtr>,
    /// An optional IOMMU domain identifier grant.
    pub iommu_grant: Option<u32>,
}

impl IpcPayload {
    /// A payload carrying only scalars.
    pub fn scalars(scalars: [u64; 4]) -> Self {
        IpcPayload {
            scalars,
            ..Default::default()
        }
    }
}

/// Process-manager errors; these surface as system-call return codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PmError {
    /// The container's memory quota is exhausted.
    QuotaExceeded,
    /// The machine is out of physical memory.
    OutOfMemory,
    /// A fixed-capacity list is full.
    CapacityExceeded,
    /// The referenced object does not exist.
    NotFound,
    /// The arguments are malformed (bad slot index, bad CPU, ...).
    InvalidArgument,
    /// The operation needs a CPU the container does not own.
    CpuNotOwned,
    /// The target endpoint's queue is full.
    EndpointFull,
    /// The operation would orphan live children (e.g. terminating a
    /// container that still has child containers requires recursion).
    NotEmpty,
    /// The caller is not permitted (e.g. terminating a non-descendant).
    Denied,
    /// The thread is not in a state that allows the operation.
    WrongState,
}

impl From<atmo_mem::AllocError> for PmError {
    fn from(_: atmo_mem::AllocError) -> Self {
        PmError::OutOfMemory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_default_is_pure_scalar() {
        let p = IpcPayload::scalars([1, 2, 3, 4]);
        assert_eq!(p.scalars, [1, 2, 3, 4]);
        assert!(p.page_grant.is_none());
        assert!(p.endpoint_grant.is_none());
        assert!(p.iommu_grant.is_none());
    }

    #[test]
    fn alloc_error_converts() {
        let e: PmError = atmo_mem::AllocError::OutOfMemory.into();
        assert_eq!(e, PmError::OutOfMemory);
    }
}
