//! The Atmosphere process manager (§3, §4.1).
//!
//! "The process manager, a subsystem responsible for managing processes,
//! IPC, and scheduling, holds the permissions to all threads, processes,
//! containers, endpoints, etc., as a collection of flat maps" (Listing 2).
//! This crate implements that subsystem:
//!
//! * **Containers** form a single unbounded tree with guaranteed memory
//!   quotas and CPU-core reservations; parents can terminate children and
//!   harvest their resources (coarse-grained revocation, §3).
//! * **Processes** form a separate tree *inside* each container; threads
//!   belong to processes; endpoints connect threads for IPC.
//! * Every kernel object lives in exactly one 4 KiB page from the page
//!   allocator, charged against its container's quota, and is reached
//!   through a raw pointer whose permission sits in one of the
//!   [`ProcessManager`]'s flat [`PermMap`]s.
//! * Tree shape is exposed to specifications through the per-node ghost
//!   `path` (ancestors, root first) and `subtree` (all reachable
//!   descendants) — the paper's device for writing *non-recursive*
//!   invariants over unbounded recursive structures.
//! * Structural invariants (`container_tree_wf`, `process_forest_wf`,
//!   `threads_wf`, `endpoints_wf`, `quota_wf`, `sched_wf`) live in their
//!   defining modules, separated from the per-operation transition specs
//!   (`*_ensures`), reproducing the paper's modular proof layout
//!   (Listing 3).
//!
//! [`PermMap`]: atmo_spec::PermMap

pub mod ablation;
pub mod container;
pub mod endpoint;
pub mod manager;
pub mod process;
pub mod sched;
pub mod staticlist;
pub mod thread;
pub mod types;

pub use container::Container;
pub use endpoint::Endpoint;
pub use manager::ProcessManager;
pub use process::Process;
pub use sched::Scheduler;
pub use staticlist::StaticList;
pub use thread::Thread;
pub use types::{
    CpuId, CtnrPtr, EdptIdx, EdptPtr, IpcPayload, PmError, ProcPtr, ThrdPtr, ThreadState,
    MAX_CHILD_CONTAINERS, MAX_CHILD_PROCESSES, MAX_ENDPOINT_SLOTS, MAX_PROC_THREADS,
};
