//! Property-based exploration of the process manager: random sequences
//! of lifecycle and IPC operations across a dynamic population of
//! containers, processes, threads and endpoints. After every operation
//! the full `ProcessManager::wf()` must hold, and at the end everything
//! torn down must leave the allocator leak-free.

use atmo_hw::boot::BootInfo;
use atmo_mem::{PageAllocator, PageClosure};
use atmo_pm::types::IpcPayload;
use atmo_pm::ProcessManager;
use atmo_spec::harness::Invariant;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    NewContainer { quota: u8 },
    TerminateContainer,
    NewProcess,
    TerminateProcess,
    NewThread,
    NewEndpoint { slot: u8 },
    ShareEndpoint { slot: u8 },
    Send { payload: u8 },
    Recv,
    Call { payload: u8 },
    Reply,
    Tick,
    TerminateThread,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (4u8..32).prop_map(|quota| Op::NewContainer { quota }),
        1 => Just(Op::TerminateContainer),
        3 => Just(Op::NewProcess),
        1 => Just(Op::TerminateProcess),
        4 => Just(Op::NewThread),
        2 => (0u8..4).prop_map(|slot| Op::NewEndpoint { slot }),
        2 => (0u8..4).prop_map(|slot| Op::ShareEndpoint { slot }),
        3 => (0u8..255).prop_map(|payload| Op::Send { payload }),
        3 => Just(Op::Recv),
        2 => (0u8..255).prop_map(|payload| Op::Call { payload }),
        2 => Just(Op::Reply),
        3 => Just(Op::Tick),
        1 => Just(Op::TerminateThread),
    ]
}

/// Deterministic "pick one" over a sorted population.
fn pick<T: Copy>(items: &[T], salt: usize) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[salt % items.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn manager_wf_holds_under_random_lifecycles(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut alloc = PageAllocator::new(&BootInfo::simulated(16, 2, ""));
        let (mut pm, root, _init_p, _init_t) = ProcessManager::boot(&mut alloc, 2, 1024).unwrap();

        for (i, op) in ops.iter().enumerate() {
            let containers: Vec<usize> = pm.cntr_perms.dom().to_vec();
            let processes: Vec<usize> = pm.proc_perms.dom().to_vec();
            let threads: Vec<usize> = pm.thrd_perms.dom().to_vec();
            match op {
                Op::NewContainer { quota } => {
                    if let Some(parent) = pick(&containers, i) {
                        let _ = pm.new_container(&mut alloc, parent, *quota as usize, &[]);
                    }
                }
                Op::TerminateContainer => {
                    // Never the root; termination harvests the subtree.
                    let non_root: Vec<usize> =
                        containers.iter().copied().filter(|c| *c != root).collect();
                    if let Some(victim) = pick(&non_root, i) {
                        let _ = pm.terminate_container(&mut alloc, victim);
                    }
                }
                Op::NewProcess => {
                    if let Some(c) = pick(&containers, i) {
                        let _ = pm.new_process(&mut alloc, c, None);
                    }
                }
                Op::TerminateProcess => {
                    if let Some(p) = pick(&processes, i.wrapping_mul(7)) {
                        let _ = pm.terminate_process(&mut alloc, p);
                    }
                }
                Op::NewThread => {
                    if let Some(p) = pick(&processes, i) {
                        let cpu = i % 2;
                        let _ = pm.new_thread(&mut alloc, p, cpu);
                    }
                }
                Op::NewEndpoint { slot } => {
                    if let Some(t) = pick(&threads, i) {
                        let _ = pm.new_endpoint(&mut alloc, t, *slot as usize);
                    }
                }
                Op::ShareEndpoint { slot } => {
                    // Give a random thread a descriptor to a random live
                    // endpoint (the boot-time capability-distribution path).
                    let endpoints: Vec<usize> = pm.edpt_perms.dom().to_vec();
                    if let (Some(t), Some(e)) = (pick(&threads, i), pick(&endpoints, i / 2)) {
                        let _ = pm.install_descriptor(t, *slot as usize, e);
                    }
                }
                Op::Send { payload } => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.send(t, cpu, i % 4,
                                            IpcPayload::scalars([*payload as u64, 0, 0, 0]));
                            break;
                        }
                    }
                }
                Op::Recv => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.recv(t, cpu, i % 4);
                            break;
                        }
                    }
                }
                Op::Call { payload } => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.call(t, cpu, i % 4,
                                            IpcPayload::scalars([*payload as u64, 0, 0, 0]));
                            break;
                        }
                    }
                }
                Op::Reply => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.reply(t, cpu, IpcPayload::scalars([1, 0, 0, 0]));
                            break;
                        }
                    }
                }
                Op::Tick => {
                    let _ = pm.timer_tick(i % 2);
                }
                Op::TerminateThread => {
                    if let Some(t) = pick(&threads, i.wrapping_mul(13)) {
                        let _ = pm.terminate_thread(&mut alloc, t);
                    }
                }
            }
            prop_assert!(pm.wf().is_ok(), "op {i} ({op:?}): {:?}", pm.wf());
            // The PM's closure is always exactly the allocator's
            // allocated set (no page tables exist in this test).
            prop_assert_eq!(pm.page_closure(), alloc.allocated_pages(), "op {} ({:?})", i, op);
        }

        // Teardown: terminate every child container, then every process
        // except init's — the system must return to a lean, leak-free
        // state.
        let children: Vec<usize> = pm
            .cntr_perms
            .dom()
            .to_vec()
            .into_iter()
            .filter(|c| *c != root)
            .collect();
        for c in children {
            if pm.cntr_perms.contains(c) && pm.cntr(c).parent == Some(root) {
                let _ = pm.terminate_container(&mut alloc, c);
            }
        }
        prop_assert!(pm.wf().is_ok(), "after teardown: {:?}", pm.wf());
        prop_assert_eq!(pm.page_closure(), alloc.allocated_pages());
        prop_assert_eq!(pm.cntr_perms.len(), 1, "only the root container remains");
    }
}
