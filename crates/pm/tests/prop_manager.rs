//! Randomized exploration of the process manager: random sequences of
//! lifecycle and IPC operations across a dynamic population of
//! containers, processes, threads and endpoints. After every operation
//! the full `ProcessManager::wf()` must hold, and at the end everything
//! torn down must leave the allocator leak-free.
//!
//! Randomness comes from the deterministic in-repo [`XorShift64Star`]
//! generator; every case names its seed so failures replay exactly.

use atmo_hw::boot::BootInfo;
use atmo_mem::{PageAllocator, PageClosure};
use atmo_pm::types::IpcPayload;
use atmo_pm::ProcessManager;
use atmo_spec::harness::Invariant;
use atmo_spec::XorShift64Star;

#[derive(Clone, Debug)]
enum Op {
    NewContainer { quota: usize },
    TerminateContainer,
    NewProcess,
    TerminateProcess,
    NewThread,
    NewEndpoint { slot: usize },
    ShareEndpoint { slot: usize },
    Send { payload: u64 },
    Recv,
    Call { payload: u64 },
    Reply,
    Tick,
    TerminateThread,
}

/// Weighted operation mix, mirroring the population frequencies of the
/// original generator (lifecycle-heavy, with enough IPC to rendezvous).
fn random_op(rng: &mut XorShift64Star) -> Op {
    match rng.below(29) {
        0..=1 => Op::NewContainer {
            quota: rng.range(4, 32),
        },
        2 => Op::TerminateContainer,
        3..=5 => Op::NewProcess,
        6 => Op::TerminateProcess,
        7..=10 => Op::NewThread,
        11..=12 => Op::NewEndpoint { slot: rng.below(4) },
        13..=14 => Op::ShareEndpoint { slot: rng.below(4) },
        15..=17 => Op::Send {
            payload: rng.next_u64() & 0xff,
        },
        18..=20 => Op::Recv,
        21..=22 => Op::Call {
            payload: rng.next_u64() & 0xff,
        },
        23..=24 => Op::Reply,
        25..=27 => Op::Tick,
        _ => Op::TerminateThread,
    }
}

/// Deterministic "pick one" over a sorted population.
fn pick<T: Copy>(items: &[T], salt: usize) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[salt % items.len()])
    }
}

#[test]
fn manager_wf_holds_under_random_lifecycles() {
    for case in 0..16u64 {
        let mut rng = XorShift64Star::new(0x5eed_2001 + case);
        let mut alloc = PageAllocator::new(&BootInfo::simulated(16, 2, ""));
        let (mut pm, root, _init_p, _init_t) = ProcessManager::boot(&mut alloc, 2, 1024).unwrap();

        let nops = rng.range(1, 80);
        for i in 0..nops {
            let op = random_op(&mut rng);
            let containers: Vec<usize> = pm.cntr_perms.dom().to_vec();
            let processes: Vec<usize> = pm.proc_perms.dom().to_vec();
            let threads: Vec<usize> = pm.thrd_perms.dom().to_vec();
            match op {
                Op::NewContainer { quota } => {
                    if let Some(parent) = pick(&containers, i) {
                        let _ = pm.new_container(&mut alloc, parent, quota, &[]);
                    }
                }
                Op::TerminateContainer => {
                    // Never the root; termination harvests the subtree.
                    let non_root: Vec<usize> =
                        containers.iter().copied().filter(|c| *c != root).collect();
                    if let Some(victim) = pick(&non_root, i) {
                        let _ = pm.terminate_container(&mut alloc, victim);
                    }
                }
                Op::NewProcess => {
                    if let Some(c) = pick(&containers, i) {
                        let _ = pm.new_process(&mut alloc, c, None);
                    }
                }
                Op::TerminateProcess => {
                    if let Some(p) = pick(&processes, i.wrapping_mul(7)) {
                        let _ = pm.terminate_process(&mut alloc, p);
                    }
                }
                Op::NewThread => {
                    if let Some(p) = pick(&processes, i) {
                        let cpu = i % 2;
                        let _ = pm.new_thread(&mut alloc, p, cpu);
                    }
                }
                Op::NewEndpoint { slot } => {
                    if let Some(t) = pick(&threads, i) {
                        let _ = pm.new_endpoint(&mut alloc, t, slot);
                    }
                }
                Op::ShareEndpoint { slot } => {
                    // Give a random thread a descriptor to a random live
                    // endpoint (the boot-time capability-distribution path).
                    let endpoints: Vec<usize> = pm.edpt_perms.dom().to_vec();
                    if let (Some(t), Some(e)) = (pick(&threads, i), pick(&endpoints, i / 2)) {
                        let _ = pm.install_descriptor(t, slot, e);
                    }
                }
                Op::Send { payload } => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.send(t, cpu, i % 4, IpcPayload::scalars([payload, 0, 0, 0]));
                            break;
                        }
                    }
                }
                Op::Recv => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.recv(t, cpu, i % 4);
                            break;
                        }
                    }
                }
                Op::Call { payload } => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.call(t, cpu, i % 4, IpcPayload::scalars([payload, 0, 0, 0]));
                            break;
                        }
                    }
                }
                Op::Reply => {
                    for cpu in 0..2 {
                        if let Some(t) = pm.sched.current(cpu) {
                            let _ = pm.reply(t, cpu, IpcPayload::scalars([1, 0, 0, 0]));
                            break;
                        }
                    }
                }
                Op::Tick => {
                    let _ = pm.timer_tick(i % 2);
                }
                Op::TerminateThread => {
                    if let Some(t) = pick(&threads, i.wrapping_mul(13)) {
                        let _ = pm.terminate_thread(&mut alloc, t);
                    }
                }
            }
            assert!(
                pm.wf().is_ok(),
                "seed {case}, op {i} ({op:?}): {:?}",
                pm.wf()
            );
            // The PM's closure is always exactly the allocator's
            // allocated set (no page tables exist in this test).
            assert_eq!(
                pm.page_closure(),
                alloc.allocated_pages(),
                "seed {case}, op {i} ({op:?})"
            );
        }

        // Teardown: terminate every child container, then every process
        // except init's — the system must return to a lean, leak-free
        // state.
        let children: Vec<usize> = pm
            .cntr_perms
            .dom()
            .to_vec()
            .into_iter()
            .filter(|c| *c != root)
            .collect();
        for c in children {
            if pm.cntr_perms.contains(c) && pm.cntr(c).parent == Some(root) {
                let _ = pm.terminate_container(&mut alloc, c);
            }
        }
        assert!(pm.wf().is_ok(), "seed {case} after teardown: {:?}", pm.wf());
        assert_eq!(pm.page_closure(), alloc.allocated_pages());
        assert_eq!(pm.cntr_perms.len(), 1, "only the root container remains");
    }
}
