//! Integration tests for `ProcessManager`: object lifecycle, quota
//! accounting, IPC rendezvous, and invariant preservation across
//! operation sequences.

use atmo_hw::boot::BootInfo;
use atmo_mem::PageAllocator;
use atmo_mem::PageClosure;
use atmo_pm::manager::{RecvOutcome, ReplyRecvOutcome, SendOutcome, HANDOFF_BUDGET};
use atmo_pm::types::PmError;
use atmo_pm::{IpcPayload, ProcessManager, ThreadState};
use atmo_spec::harness::Invariant;

fn boot(ncpus: usize, quota: usize) -> (PageAllocator, ProcessManager, usize, usize, usize) {
    let mut alloc = PageAllocator::new(&BootInfo::simulated(16, ncpus, ""));
    let (pm, c, p, t) = ProcessManager::boot(&mut alloc, ncpus, quota).unwrap();
    (alloc, pm, c, p, t)
}

#[test]
fn boot_state_is_well_formed() {
    let (_a, pm, root, init_p, init_t) = boot(2, 100);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
    assert_eq!(pm.root_container, root);
    assert_eq!(pm.thrd(init_t).owning_proc, init_p);
    assert_eq!(pm.thrd(init_t).state, ThreadState::Running(0));
    assert_eq!(pm.cntr(root).used, 3);
    assert_eq!(pm.page_closure().len(), 3);
}

#[test]
fn container_creation_updates_tree_and_quota() {
    let (mut a, mut pm, root, _p, _t) = boot(4, 100);
    let c1 = pm.new_container(&mut a, root, 20, &[1]).unwrap();
    let c2 = pm.new_container(&mut a, c1, 10, &[]).unwrap();
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    // Quota: root charged 21 for c1; c1 charged 11 for c2.
    assert_eq!(pm.cntr(root).used, 3 + 21);
    assert_eq!(pm.cntr(c1).used, 11);
    // Subtrees (ghost, flat): root sees both; c1 sees c2.
    assert!(pm.cntr(root).subtree.contains(&c1));
    assert!(pm.cntr(root).subtree.contains(&c2));
    assert!(pm.cntr(c1).subtree.contains(&c2));
    // CPU 1 moved from root to c1.
    assert!(!pm.cntr(root).owned_cpus.contains(&1));
    assert!(pm.cntr(c1).owned_cpus.contains(&1));
    // Paths.
    assert_eq!(pm.cntr(c2).path.to_vec(), vec![root, c1]);
    assert_eq!(pm.cntr(c2).depth, 2);
}

#[test]
fn container_quota_is_enforced() {
    let (mut a, mut pm, root, _p, _t) = boot(1, 10);
    // used=3; requesting quota 8 needs 9 more > 7 available.
    assert_eq!(
        pm.new_container(&mut a, root, 8, &[]),
        Err(PmError::QuotaExceeded)
    );
    // Within budget works.
    let c = pm.new_container(&mut a, root, 5, &[]).unwrap();
    // Child cannot exceed its own reservation.
    let mut pm2 = pm;
    assert_eq!(
        pm2.new_container(&mut a, c, 5, &[]),
        Err(PmError::QuotaExceeded)
    );
    assert!(pm2.wf().is_ok());
}

#[test]
fn cpu_reservation_is_enforced() {
    let (mut a, mut pm, root, _p, _t) = boot(2, 100);
    let c1 = pm.new_container(&mut a, root, 20, &[1]).unwrap();
    // Root no longer owns CPU 1.
    assert_eq!(
        pm.new_container(&mut a, root, 5, &[1]),
        Err(PmError::CpuNotOwned)
    );
    // c1 cannot hand out CPU 0 (it never owned it).
    assert_eq!(
        pm.new_container(&mut a, c1, 5, &[0]),
        Err(PmError::CpuNotOwned)
    );
}

#[test]
fn process_and_thread_lifecycle() {
    let (mut a, mut pm, root, init_p, _t) = boot(2, 100);
    let child_p = pm.new_process(&mut a, root, Some(init_p)).unwrap();
    let t = pm.new_thread(&mut a, child_p, 1).unwrap();
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
    assert!(pm.proc(init_p).children.contains(&child_p));
    assert!(pm.cntr(root).owned_thrds.contains(&t));
    assert_eq!(pm.thrd(t).state, ThreadState::Ready);

    let used_before = pm.cntr(root).used;
    let freed = pm.terminate_process(&mut a, child_p).unwrap();
    assert_eq!(freed.len(), 1);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
    assert!(!pm.proc_perms.contains(child_p));
    assert!(!pm.thrd_perms.contains(t));
    assert_eq!(pm.cntr(root).used, used_before - 2);
}

#[test]
fn nested_process_termination_tears_down_subtree() {
    let (mut a, mut pm, root, init_p, _t) = boot(1, 100);
    let p1 = pm.new_process(&mut a, root, Some(init_p)).unwrap();
    let p2 = pm.new_process(&mut a, root, Some(p1)).unwrap();
    let p3 = pm.new_process(&mut a, root, Some(p2)).unwrap();
    let freed = pm.terminate_process(&mut a, p1).unwrap();
    assert_eq!(freed.len(), 3);
    for p in [p1, p2, p3] {
        assert!(!pm.proc_perms.contains(p));
    }
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn endpoint_creation_and_refcounting() {
    let (mut a, mut pm, root, init_p, init_t) = boot(1, 100);
    let e = pm.new_endpoint(&mut a, init_t, 0).unwrap();
    assert_eq!(pm.edpt(e).refcount, 1);
    assert!(pm.cntr(root).owned_edpts.contains(&e));

    // Second descriptor on another thread.
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    pm.install_descriptor(t2, 3, e).unwrap();
    assert_eq!(pm.edpt(e).refcount, 2);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    // Dropping both descriptors destroys the endpoint and releases its page.
    let used = pm.cntr(root).used;
    pm.remove_descriptor(&mut a, init_t, 0).unwrap();
    assert!(pm.edpt_perms.contains(e));
    pm.remove_descriptor(&mut a, t2, 3).unwrap();
    assert!(!pm.edpt_perms.contains(e));
    assert_eq!(pm.cntr(root).used, used - 1);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn send_blocks_until_receiver_arrives() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    // t1 (running on CPU 0) sends: no receiver → blocks; t2 dispatched.
    let out = pm
        .send(t1, 0, 0, IpcPayload::scalars([7, 0, 0, 0]))
        .unwrap();
    assert_eq!(out, SendOutcome::Blocked);
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedSend(e));
    assert_eq!(pm.sched.current(0), Some(t2));
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    // t2 receives: gets the payload, t1 becomes ready again.
    let got = pm.recv(t2, 0, 0).unwrap();
    match got {
        RecvOutcome::Received(p) => assert_eq!(p.scalars[0], 7),
        other => panic!("expected delivery, got {other:?}"),
    }
    assert_eq!(pm.thrd(t1).state, ThreadState::Ready);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn recv_blocks_until_sender_arrives() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    assert_eq!(pm.recv(t1, 0, 0).unwrap(), RecvOutcome::Blocked);
    assert_eq!(pm.sched.current(0), Some(t2));
    // t2 sends directly into the waiting receiver.
    let out = pm
        .send(t2, 0, 0, IpcPayload::scalars([9, 9, 9, 9]))
        .unwrap();
    assert_eq!(out, SendOutcome::Delivered(t1));
    assert_eq!(pm.thrd(t1).state, ThreadState::Ready);
    assert_eq!(pm.take_message(t1).unwrap().scalars[0], 9);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn call_reply_round_trip() {
    // The Figure 1 / Table 3 scenario: T1 calls, T2 receives and replies.
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    // t2 must be receiving first for the fast path; start with t1 calling.
    assert_eq!(
        pm.call(t1, 0, 0, IpcPayload::scalars([1, 2, 3, 4]))
            .unwrap(),
        SendOutcome::Blocked
    );
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedSend(e));
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    // t2 (now current) receives: message arrives, t1 switches to
    // awaiting-reply, t2 owes it a reply.
    let got = pm.recv(t2, 0, 0).unwrap();
    assert!(matches!(got, RecvOutcome::Received(p) if p.scalars == [1, 2, 3, 4]));
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedReply(e));
    assert_eq!(pm.thrd(t2).reply_partner, Some(t1));
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    // t2 replies: t1 wakes with the answer.
    pm.reply(t2, 0, IpcPayload::scalars([40, 2, 0, 0])).unwrap();
    assert_eq!(pm.thrd(t1).state, ThreadState::Ready);
    assert_eq!(pm.take_message(t1).unwrap().scalars[0], 40);
    assert_eq!(pm.thrd(t2).reply_partner, None);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn endpoint_grant_transfers_descriptor() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    let e2 = pm.new_endpoint(&mut a, t1, 1).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    // t1 sends endpoint e2 through e.
    let mut payload = IpcPayload::scalars([0; 4]);
    payload.endpoint_grant = Some(e2);
    pm.send(t1, 0, 0, payload).unwrap();
    let got = pm.recv(t2, 0, 0).unwrap();
    assert!(matches!(got, RecvOutcome::Received(p) if p.endpoint_grant == Some(e2)));
    // t2 now holds a descriptor to e2; refcount grew.
    assert!(pm.thrd(t2).edpt_descriptors.contains(&Some(e2)));
    assert_eq!(pm.edpt(e2).refcount, 2);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn terminating_a_blocked_caller_unsticks_the_receiver() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    pm.call(t1, 0, 0, IpcPayload::scalars([0; 4])).unwrap();
    pm.recv(t2, 0, 0).unwrap();
    assert_eq!(pm.thrd(t2).reply_partner, Some(t1));

    // The caller dies before the reply: the receiver's obligation clears.
    pm.terminate_thread(&mut a, t1).unwrap();
    assert_eq!(pm.thrd(t2).reply_partner, None);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn terminating_a_receiver_wakes_the_caller_empty_handed() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    pm.call(t1, 0, 0, IpcPayload::scalars([0; 4])).unwrap();
    pm.recv(t2, 0, 0).unwrap();
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedReply(e));

    // The service crashes: the caller must not stay wedged (§3: V releases
    // resources even if the peer crashes — same liveness idea). The CPU
    // went idle when t2 died, so the woken caller is dispatched directly.
    pm.terminate_thread(&mut a, t2).unwrap();
    assert_eq!(pm.thrd(t1).state, ThreadState::Running(0));
    assert_eq!(pm.take_message(t1), None);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn terminate_container_harvests_resources() {
    let (mut a, mut pm, root, _p, _t) = boot(4, 200);
    let c1 = pm.new_container(&mut a, root, 50, &[1, 2]).unwrap();
    let c2 = pm.new_container(&mut a, c1, 20, &[2]).unwrap();
    let p1 = pm.new_process(&mut a, c1, None).unwrap();
    let _t1 = pm.new_thread(&mut a, p1, 1).unwrap();
    let p2 = pm.new_process(&mut a, c2, None).unwrap();
    let _t2 = pm.new_thread(&mut a, p2, 2).unwrap();
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    let used_before = pm.cntr(root).used;
    let freed = pm.terminate_container(&mut a, c1).unwrap();
    assert_eq!(freed.len(), 2, "two address spaces died");
    assert!(!pm.cntr_perms.contains(c1));
    assert!(!pm.cntr_perms.contains(c2));
    // CPUs returned to root.
    assert!(pm.cntr(root).owned_cpus.contains(&1));
    assert!(pm.cntr(root).owned_cpus.contains(&2));
    // Quota: root released the 51 pages charged for c1.
    assert_eq!(pm.cntr(root).used, used_before - 51);
    assert!(pm.cntr(root).subtree.is_empty());
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn terminate_root_is_denied() {
    let (mut a, mut pm, root, _p, _t) = boot(1, 100);
    assert_eq!(pm.terminate_container(&mut a, root), Err(PmError::Denied));
}

#[test]
fn timer_tick_rotates_threads() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    assert_eq!(pm.timer_tick(0), Some(t2));
    assert_eq!(pm.thrd(t2).state, ThreadState::Running(0));
    assert_eq!(pm.thrd(t1).state, ThreadState::Ready);
    assert_eq!(pm.timer_tick(0), Some(t1));
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn leak_freedom_objects_equal_allocated_pages() {
    // The §4.2 leak-freedom equation at the PM level: the manager's page
    // closure equals the allocator's "allocated" set (no page tables exist
    // in this test).
    let (mut a, mut pm, root, init_p, _t) = boot(2, 100);
    let c1 = pm.new_container(&mut a, root, 20, &[1]).unwrap();
    let p1 = pm.new_process(&mut a, c1, None).unwrap();
    let t1 = pm.new_thread(&mut a, p1, 1).unwrap();
    let _e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    assert_eq!(pm.page_closure(), a.allocated_pages());

    pm.terminate_container(&mut a, c1).unwrap();
    assert_eq!(pm.page_closure(), a.allocated_pages());
    let _ = init_p;
}

#[test]
fn closing_last_descriptor_wakes_queued_sender_with_no_message() {
    // The refcount edge case: a thread blocks in `send` on an endpoint,
    // then the *last* descriptor referencing that endpoint is removed.
    // Nobody can ever rendezvous with the sleeper again, so the endpoint
    // teardown must dequeue it and wake it empty-handed (the error
    // signal for an aborted IPC) — and `endpoints_wf` must hold through
    // the whole sequence with the endpoint's page reclaimed.
    use atmo_pm::endpoint::endpoints_wf;

    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 1, e).unwrap();

    // t1 sends with no receiver: it parks on e's queue; t2 is dispatched.
    let out = pm
        .send(t1, 0, 0, IpcPayload::scalars([41, 0, 0, 0]))
        .unwrap();
    assert_eq!(out, SendOutcome::Blocked);
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedSend(e));

    // Both descriptors go while t1 is still queued. Removing t1's own
    // descriptor (refcount 2 -> 1) must NOT disturb the sleeper...
    pm.remove_descriptor(&mut a, t1, 0).unwrap();
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedSend(e));
    assert!(endpoints_wf(&pm.thrd_perms, &pm.edpt_perms).is_ok());

    // ...but dropping the last one destroys the endpoint and wakes t1.
    pm.remove_descriptor(&mut a, t2, 1).unwrap();
    assert!(!pm.edpt_perms.contains(e), "endpoint destroyed");
    assert_eq!(pm.thrd(t1).state, ThreadState::Ready, "woken, not wedged");
    assert_eq!(pm.take_message(t1), None, "no message was delivered");
    assert!(endpoints_wf(&pm.thrd_perms, &pm.edpt_perms).is_ok());
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
    // The endpoint's page went back to the allocator (leak freedom).
    assert_eq!(pm.page_closure(), a.allocated_pages());
}

#[test]
fn closing_last_descriptor_aborts_a_queued_call() {
    // Same edge case through the `call` path: the caller is woken with
    // its call flag cleared so it does not wait for a reply that can
    // never come.
    use atmo_pm::endpoint::endpoints_wf;

    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 1, e).unwrap();

    pm.call(t1, 0, 0, IpcPayload::scalars([7, 0, 0, 0]))
        .unwrap();
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedSend(e));
    assert!(pm.thrd(t1).is_calling);

    pm.remove_descriptor(&mut a, t1, 0).unwrap();
    pm.remove_descriptor(&mut a, t2, 1).unwrap();
    assert!(!pm.edpt_perms.contains(e));
    assert_eq!(pm.thrd(t1).state, ThreadState::Ready);
    assert!(
        !pm.thrd(t1).is_calling,
        "aborted call does not await a reply"
    );
    assert_eq!(pm.take_message(t1), None);
    assert!(endpoints_wf(&pm.thrd_perms, &pm.edpt_perms).is_ok());
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
    assert_eq!(pm.page_closure(), a.allocated_pages());
}

/// Parks `server` as the receiver on its slot-0 endpoint so a subsequent
/// `call_fast` from the client finds a waiting partner.
fn park_receiver(pm: &mut ProcessManager, server: usize) {
    assert_eq!(pm.recv(server, 0, 0).unwrap(), RecvOutcome::Blocked);
}

#[test]
fn call_fast_hits_with_parked_receiver() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    // t1 blocks in recv first so t2 runs, then t2 parks as receiver and
    // t1 (dispatched) calls into it: direct handoff, no ready queue.
    assert_eq!(pm.recv(t1, 0, 0).unwrap(), RecvOutcome::Blocked);
    let got = pm.send(t2, 0, 0, IpcPayload::scalars([0; 4])).unwrap();
    assert_eq!(got, SendOutcome::Delivered(t1));
    // Now t2 is still current; park it as the receiver.
    park_receiver(&mut pm, t2);
    assert_eq!(pm.sched.current(0), Some(t1));
    let _ = pm.take_message(t1);

    let (out, fast) = pm
        .call_fast(t1, 0, 0, IpcPayload::scalars([5, 6, 7, 8]))
        .unwrap();
    assert!(fast, "parked receiver on the same CPU must hit");
    assert_eq!(out, SendOutcome::Delivered(t2));
    // Direct switch: t2 runs, t1 awaits the reply, the ready queue was
    // never touched.
    assert_eq!(pm.sched.current(0), Some(t2));
    assert!(pm.sched.ready_queue(0).is_empty());
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedReply(e));
    assert_eq!(pm.thrd(t2).reply_partner, Some(t1));
    assert_eq!(pm.take_message(t2).unwrap().scalars, [5, 6, 7, 8]);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn reply_recv_fast_hands_cpu_back_to_caller() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    // Slow-path setup: t1 calls with no receiver, t2 receives the request.
    pm.call(t1, 0, 0, IpcPayload::scalars([1, 0, 0, 0]))
        .unwrap();
    pm.recv(t2, 0, 0).unwrap();
    assert_eq!(pm.thrd(t2).reply_partner, Some(t1));

    // Combined reply+recv: the CPU goes straight back to the caller and
    // the server is already parked for the next request.
    let (out, fast) = pm
        .reply_recv(t2, 0, 0, IpcPayload::scalars([2, 0, 0, 0]))
        .unwrap();
    assert!(fast);
    assert_eq!(out, ReplyRecvOutcome::Handoff(t1));
    assert_eq!(pm.sched.current(0), Some(t1));
    assert_eq!(pm.thrd(t2).state, ThreadState::BlockedRecv(e));
    assert_eq!(pm.thrd(t2).reply_partner, None);
    assert_eq!(pm.take_message(t1).unwrap().scalars, [2, 0, 0, 0]);
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    // The server is a waiting receiver again: the next call also hits.
    let (out, fast) = pm
        .call_fast(t1, 0, 0, IpcPayload::scalars([3, 0, 0, 0]))
        .unwrap();
    assert!(fast);
    assert_eq!(out, SendOutcome::Delivered(t2));
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn call_fast_misses_fall_back_to_rendezvous() {
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    let e2 = pm.new_endpoint(&mut a, t1, 1).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    // No receiver parked → wrong-side miss → slow path blocks the caller.
    let (out, fast) = pm.call_fast(t1, 0, 0, IpcPayload::scalars([0; 4])).unwrap();
    assert!(!fast, "no parked receiver cannot hit");
    assert_eq!(out, SendOutcome::Blocked);
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedSend(e));
    assert_eq!(pm.sched.current(0), Some(t2));
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());

    // Grant-carrying payloads also miss even with a parked receiver:
    // t2 receives t1's pending call, replies, then parks as receiver.
    pm.recv(t2, 0, 0).unwrap();
    pm.reply(t2, 0, IpcPayload::scalars([0; 4])).unwrap();
    park_receiver(&mut pm, t2);
    let mut payload = IpcPayload::scalars([0; 4]);
    payload.endpoint_grant = Some(e2);
    let (out, fast) = pm.call_fast(t1, 0, 0, payload).unwrap();
    assert!(!fast, "capability transfer must take the slow path");
    // The slow rendezvous still delivers (and performs the grant).
    assert_eq!(out, SendOutcome::Delivered(t2));
    assert!(pm.thrd(t2).edpt_descriptors.contains(&Some(e2)));
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}

#[test]
fn handoff_budget_yields_to_third_thread() {
    // Starvation guard: a ping-pong pair must not monopolise the core
    // while a third thread sits in the ready queue.
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let t3 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let e = pm.new_endpoint(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t2, 0, e).unwrap();

    // Prime the pair: t1's call rendezvouses slowly, t3 stays ready.
    pm.call(t1, 0, 0, IpcPayload::scalars([0; 4])).unwrap();
    pm.recv(t2, 0, 0).unwrap();
    // Current is t2 (dispatched when t1 blocked? No: t2 was dispatched
    // first, consumed the call). t3 waits in the queue throughout.
    assert!(pm.sched.ready_queue(0).contains(&t3));

    let mut t3_ran = false;
    let mut handoffs = 0u32;
    for _round in 0..(2 * HANDOFF_BUDGET + 4) {
        match pm.sched.current(0) {
            Some(cur) if cur == t3 => {
                t3_ran = true;
                // t3 politely yields back.
                pm.timer_tick(0);
            }
            Some(cur) if cur == t2 => {
                let (_out, fast) = pm
                    .reply_recv(t2, 0, 0, IpcPayload::scalars([0; 4]))
                    .unwrap();
                if fast {
                    handoffs += 1;
                    assert!(
                        handoffs <= HANDOFF_BUDGET,
                        "fast path exceeded its handoff budget"
                    );
                }
                let _ = cur;
            }
            Some(cur) if cur == t1 => {
                let _ = pm.take_message(t1);
                let (_out, _fast) = pm.call_fast(t1, 0, 0, IpcPayload::scalars([0; 4])).unwrap();
            }
            other => panic!("unexpected current {other:?}"),
        }
        assert!(pm.wf().is_ok(), "{:?}", pm.wf());
        if t3_ran {
            break;
        }
    }
    assert!(
        t3_ran,
        "third ready thread starved by the fastpath ping-pong"
    );
}

#[test]
fn slot_cache_survives_close_and_reinstall() {
    // The descriptor-slot cache must be invalidated when a slot is
    // closed; a different endpoint reinstalled in the same slot must be
    // the one IPC resolves afterwards (a stale hit would panic the
    // debug_assert in `cached_descriptor` and misroute the message).
    let (mut a, mut pm, _root, init_p, t1) = boot(1, 100);
    let t2 = pm.new_thread(&mut a, init_p, 0).unwrap();
    let ea = pm.new_endpoint(&mut a, t1, 0).unwrap();
    let eb = pm.new_endpoint(&mut a, t1, 1).unwrap();
    pm.install_descriptor(t2, 0, ea).unwrap();
    pm.install_descriptor(t2, 1, eb).unwrap();

    // Warm the cache for (t1, slot 0) → ea.
    pm.send(t1, 0, 0, IpcPayload::scalars([1, 0, 0, 0]))
        .unwrap();
    assert_eq!(pm.thrd(t1).state, ThreadState::BlockedSend(ea));
    // Drain the rendezvous so t1 can move on.
    pm.recv(t2, 0, 0).unwrap();

    // Close slot 0 and remount eb there: the cached (t1,0)→ea entry
    // must not be consulted again.
    pm.remove_descriptor(&mut a, t1, 0).unwrap();
    pm.install_descriptor(t1, 0, eb).unwrap();
    pm.timer_tick(0); // rotate back to t1
    while pm.sched.current(0) != Some(t1) {
        pm.timer_tick(0);
    }
    pm.send(t1, 0, 0, IpcPayload::scalars([2, 0, 0, 0]))
        .unwrap();
    assert_eq!(
        pm.thrd(t1).state,
        ThreadState::BlockedSend(eb),
        "send after reinstall must resolve the new endpoint"
    );
    assert!(pm.wf().is_ok(), "{:?}", pm.wf());
}
