//! Persistent, mathematical maps (the analogue of Verus `Map<K, V>`).
//!
//! Maps express the central abstract states of the paper: the abstract page
//! table is a `Map<VAddr, MapEntry>` (Listing 1, line 3), and the flat
//! permission stores of every subsystem are `Map<Ptr, PointsTo<T>>`
//! (Listing 2). The spec-level map here is persistent; the *tracked*
//! (linear) variant used to store permissions is [`crate::PermMap`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::Set;

/// A persistent map with Verus `Map` semantics.
///
/// # Examples
///
/// ```
/// use atmo_spec::Map;
///
/// let m = Map::empty().insert(0x1000usize, "page-a").insert(0x2000, "page-b");
/// assert_eq!(m.index(&0x1000), Some(&"page-a"));
/// assert_eq!(m.remove(&0x1000).len(), 1);
/// assert_eq!(m.len(), 2); // persistence
/// ```
pub struct Map<K: Ord, V> {
    items: Arc<BTreeMap<K, V>>,
}

impl<K: Ord + Clone, V: Clone> Map<K, V> {
    /// Returns the empty map.
    pub fn empty() -> Self {
        Map {
            items: Arc::new(BTreeMap::new()),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when `k` is in the domain.
    pub fn contains_key(&self, k: &K) -> bool {
        self.items.contains_key(k)
    }

    /// Looks up `k`.
    pub fn index(&self, k: &K) -> Option<&V> {
        self.items.get(k)
    }

    /// Returns the domain as a [`Set`].
    pub fn dom(&self) -> Set<K> {
        self.items.keys().cloned().collect()
    }

    /// Returns a new map with `k ↦ v` added or replaced.
    pub fn insert(&self, k: K, v: V) -> Self {
        let mut m = (*self.items).clone();
        m.insert(k, v);
        Map { items: Arc::new(m) }
    }

    /// Returns a new map with `k` removed.
    pub fn remove(&self, k: &K) -> Self {
        let mut m = (*self.items).clone();
        m.remove(k);
        Map { items: Arc::new(m) }
    }

    /// Returns `self` overridden by `other` (Verus `union_prefer_right`).
    pub fn union_prefer_right(&self, other: &Map<K, V>) -> Self {
        let mut m = (*self.items).clone();
        for (k, v) in other.items.iter() {
            m.insert(k.clone(), v.clone());
        }
        Map { items: Arc::new(m) }
    }

    /// Returns the map restricted to keys satisfying `pred`.
    pub fn restrict(&self, pred: impl Fn(&K) -> bool) -> Self {
        Map {
            items: Arc::new(
                self.items
                    .iter()
                    .filter(|(k, _)| pred(k))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        }
    }

    /// Iterator over `(key, value)` pairs in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, V> {
        self.items.iter()
    }

    /// Iterator over keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.items.keys()
    }

    /// Iterator over values in key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.items.values()
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> Map<K, V> {
    /// `true` when every entry of `self` appears identically in `other`
    /// (Verus `submap_of`).
    pub fn submap_of(&self, other: &Map<K, V>) -> bool {
        self.items
            .iter()
            .all(|(k, v)| other.items.get(k) == Some(v))
    }

    /// `true` when the two maps agree on every key they share.
    pub fn agrees(&self, other: &Map<K, V>) -> bool {
        self.items.iter().all(|(k, v)| match other.items.get(k) {
            None => true,
            Some(w) => v == w,
        })
    }
}

impl<K: Ord, V> Clone for Map<K, V> {
    fn clone(&self) -> Self {
        Map {
            items: Arc::clone(&self.items),
        }
    }
}

impl<K: Ord, V: PartialEq> PartialEq for Map<K, V> {
    fn eq(&self, other: &Self) -> bool {
        *self.items == *other.items
    }
}

impl<K: Ord, V: Eq> Eq for Map<K, V> {}

impl<K: Ord + Clone, V: Clone> Default for Map<K, V> {
    fn default() -> Self {
        Map::empty()
    }
}

impl<K: Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for Map<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.items.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        Map {
            items: Arc::new(iter.into_iter().collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m: Map<u32, u32> = Map::empty();
        assert!(m.is_empty());
        assert!(!m.contains_key(&0));
        assert_eq!(m.index(&0), None);
    }

    #[test]
    fn insert_then_lookup() {
        let m = Map::empty().insert(1, "a").insert(2, "b");
        assert_eq!(m.index(&1), Some(&"a"));
        assert_eq!(m.index(&2), Some(&"b"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_replaces() {
        let m = Map::empty().insert(1, "a").insert(1, "b");
        assert_eq!(m.index(&1), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_is_persistent() {
        let m = Map::empty().insert(1, "a");
        let n = m.remove(&1);
        assert!(m.contains_key(&1));
        assert!(!n.contains_key(&1));
    }

    #[test]
    fn dom_matches_keys() {
        let m = Map::empty().insert(3, ()).insert(1, ()).insert(2, ());
        assert_eq!(m.dom(), Set::from_slice(&[1, 2, 3]));
    }

    #[test]
    fn union_prefer_right_overrides() {
        let a = Map::empty().insert(1, "a").insert(2, "a");
        let b = Map::empty().insert(2, "b").insert(3, "b");
        let u = a.union_prefer_right(&b);
        assert_eq!(u.index(&1), Some(&"a"));
        assert_eq!(u.index(&2), Some(&"b"));
        assert_eq!(u.index(&3), Some(&"b"));
    }

    #[test]
    fn submap_and_agrees() {
        let a = Map::empty().insert(1, "x");
        let b = Map::empty().insert(1, "x").insert(2, "y");
        let c = Map::empty().insert(1, "z");
        assert!(a.submap_of(&b));
        assert!(!b.submap_of(&a));
        assert!(a.agrees(&b));
        assert!(!a.agrees(&c));
    }

    #[test]
    fn restrict_filters_domain() {
        let m = Map::empty().insert(1, "a").insert(2, "b").insert(3, "c");
        let r = m.restrict(|k| *k != 2);
        assert_eq!(r.len(), 2);
        assert!(!r.contains_key(&2));
    }
}
