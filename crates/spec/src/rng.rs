//! A tiny deterministic PRNG for randomized tests and workloads.
//!
//! The repository builds with no registry access, so nothing here may
//! depend on crates.io (`rand` and friends). This xorshift64* generator
//! (Vigna, "An experimental exploration of Marsaglia's xorshift
//! generators, scrambled") is 8 bytes of state, passes BigCrush except
//! MatrixRank, and — more importantly for a verification harness — is
//! *seeded and reproducible*: every randomized test names its seed, so
//! a failure replays exactly.

/// xorshift64* pseudo-random generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// A generator from `seed` (0 is remapped — xorshift state must be
    /// nonzero).
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is 0.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        // Modulo bias is < 2^-40 for the bounds used in tests.
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics when `den` is 0.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = XorShift64Star::new(1);
        let mut b = XorShift64Star::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_remapped_not_stuck() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_respects_bound_and_covers_it() {
        let mut r = XorShift64Star::new(7);
        let mut seen = [false; 8];
        for _ in 0..512 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = XorShift64Star::new(9);
        let mut v: Vec<usize> = (0..16).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 9 produces a nontrivial permutation");
    }
}
