//! Verification harness: invariant checking and refinement auditing.
//!
//! In the paper, two theorems are proven statically for every kernel entry
//! point (§4): *well-formedness* (`total_wf()` holds after every
//! transition) and *refinement* (the transition satisfies its abstract
//! system-call specification). This module provides the executable
//! machinery that checks the same obligations dynamically:
//!
//! * [`VerifResult`] / [`InvariantViolation`] — the outcome of checking one
//!   obligation; a violation corresponds to a proof Verus would reject.
//! * [`Invariant`] — implemented by every subsystem; `wf()` is the
//!   executable `total_wf()`.
//! * [`Obligations`] — a ledger counting discharged obligations, so test
//!   runs can report how many checks backed a passing verdict.
//! * [`check`] / [`check_all`] — helpers that turn boolean spec functions
//!   into labelled results.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A refuted proof obligation.
///
/// Carries the subsystem that owns the invariant and a human-readable
/// description of which conjunct failed. Audit-producing call sites
/// additionally attach *structured* diagnostics — which lock domain the
/// failing state lives in, which global equation was refuted, and (for
/// the incremental ledger audit) the ledger entry whose fold broke the
/// equation — so a failing fuzz run names the culprit instead of a bare
/// boolean.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Subsystem owning the violated invariant (e.g. `"container_tree"`).
    pub subsystem: &'static str,
    /// Which conjunct failed and for which object.
    pub detail: String,
    /// Lock domain owning the failing state (`"pm"`, `"mem"`, …).
    pub domain: Option<&'static str>,
    /// Which global equation was refuted (e.g. `"closure-partition"`).
    pub equation: Option<&'static str>,
    /// The ledger entry (rendered delta) whose fold broke the equation.
    pub ledger_entry: Option<String>,
}

impl InvariantViolation {
    /// Creates a violation record.
    pub fn new(subsystem: &'static str, detail: impl Into<String>) -> Self {
        InvariantViolation {
            subsystem,
            detail: detail.into(),
            domain: None,
            equation: None,
            ledger_entry: None,
        }
    }

    /// Attributes the violation to a lock domain.
    pub fn in_domain(mut self, domain: &'static str) -> Self {
        self.domain = Some(domain);
        self
    }

    /// Names the refuted global equation.
    pub fn on_equation(mut self, equation: &'static str) -> Self {
        self.equation = Some(equation);
        self
    }

    /// Attaches the ledger entry that broke the fold.
    pub fn with_ledger_entry(mut self, entry: impl Into<String>) -> Self {
        self.ledger_entry = Some(entry.into());
        self
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] invariant violated: {}",
            self.subsystem, self.detail
        )?;
        if let Some(d) = self.domain {
            write!(f, " [domain: {d}]")?;
        }
        if let Some(e) = self.equation {
            write!(f, " [equation: {e}]")?;
        }
        if let Some(l) = &self.ledger_entry {
            write!(f, " [ledger entry: {l}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for InvariantViolation {}

/// The result of checking a proof obligation.
pub type VerifResult = Result<(), InvariantViolation>;

/// Discharges one labelled obligation.
///
/// Returns `Ok(())` when `cond` holds (and records the obligation in the
/// global ledger); otherwise returns the violation.
pub fn check(cond: bool, subsystem: &'static str, detail: impl Into<String>) -> VerifResult {
    Obligations::record();
    if cond {
        Ok(())
    } else {
        Err(InvariantViolation::new(subsystem, detail))
    }
}

/// Discharges one obligation of a named global equation, attributing
/// the failure to a lock domain. The detail is built lazily so passing
/// checks on the audit hot path never format.
pub fn check_eqn(
    cond: bool,
    subsystem: &'static str,
    domain: &'static str,
    equation: &'static str,
    detail: impl FnOnce() -> String,
) -> VerifResult {
    Obligations::record();
    if cond {
        Ok(())
    } else {
        Err(InvariantViolation::new(subsystem, detail())
            .in_domain(domain)
            .on_equation(equation))
    }
}

/// Discharges a conjunction of obligations, stopping at the first failure.
pub fn check_all(results: impl IntoIterator<Item = VerifResult>) -> VerifResult {
    for r in results {
        r?;
    }
    Ok(())
}

/// A subsystem with a well-formedness invariant.
///
/// `wf()` is the executable analogue of the paper's `total_wf()` hierarchy:
/// each subsystem checks its own invariants and the kernel conjoins them.
pub trait Invariant {
    /// Checks all invariants of the subsystem.
    fn wf(&self) -> VerifResult;

    /// Convenience: `true` when well-formed.
    fn is_wf(&self) -> bool {
        self.wf().is_ok()
    }
}

/// Global ledger of discharged proof obligations.
///
/// Purely diagnostic: lets test binaries report "N obligations checked"
/// next to a passing verdict, the dynamic counterpart of a verification
/// report.
pub struct Obligations;

static OBLIGATIONS: AtomicU64 = AtomicU64::new(0);

impl Obligations {
    /// Records one discharged obligation.
    pub fn record() {
        OBLIGATIONS.fetch_add(1, Ordering::Relaxed);
    }

    /// Total obligations discharged so far in this process.
    pub fn count() -> u64 {
        OBLIGATIONS.load(Ordering::Relaxed)
    }
}

/// A state with an abstract view, used to state refinement.
///
/// The concrete kernel state implements this; `view()` projects the
/// abstract kernel Ψ the specifications quantify over.
pub trait View {
    /// The abstract-state type.
    type Abs;

    /// Projects the abstract state (Verus `@` / interpretation function).
    fn view(&self) -> Self::Abs;
}

/// Audits one transition of a concrete system against its spec.
///
/// `spec` is the paper-style transition specification over (pre, post)
/// abstract states — e.g. `syscall_mmap_spec(Ψ, Ψ', ...)`. The audit checks
/// (1) the post-state is well-formed, and (2) the spec relation holds.
pub fn audit_transition<S, F>(name: &'static str, pre: &S::Abs, post: &S, spec: F) -> VerifResult
where
    S: View + Invariant,
    F: FnOnce(&S::Abs, &S::Abs) -> bool,
{
    post.wf()?;
    let post_view = post.view();
    check(
        spec(pre, &post_view),
        "refinement",
        format!("transition `{name}` does not satisfy its specification"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: u64,
        cap: u64,
    }

    impl Invariant for Counter {
        fn wf(&self) -> VerifResult {
            check(self.n <= self.cap, "counter", "n exceeds cap")
        }
    }

    impl View for Counter {
        type Abs = u64;

        fn view(&self) -> u64 {
            self.n
        }
    }

    #[test]
    fn check_passes_and_fails() {
        assert!(check(true, "t", "ok").is_ok());
        let e = check(false, "t", "bad").unwrap_err();
        assert_eq!(e.subsystem, "t");
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn check_all_stops_at_first_failure() {
        let r = check_all([
            check(true, "a", ""),
            check(false, "b", "first"),
            check(false, "c", "second"),
        ]);
        assert_eq!(r.unwrap_err().subsystem, "b");
    }

    #[test]
    fn invariant_trait_reports() {
        assert!(Counter { n: 1, cap: 2 }.is_wf());
        assert!(!Counter { n: 3, cap: 2 }.is_wf());
    }

    #[test]
    fn audit_checks_wf_then_spec() {
        let pre = Counter { n: 1, cap: 10 };
        let pre_view = pre.view();
        let post = Counter { n: 2, cap: 10 };
        // Spec: the counter increments by exactly one.
        let ok = audit_transition("incr", &pre_view, &post, |a, b| *b == *a + 1);
        assert!(ok.is_ok());
        let bad = audit_transition("incr", &pre_view, &post, |a, b| *b == *a + 2);
        assert_eq!(bad.unwrap_err().subsystem, "refinement");
    }

    #[test]
    fn audit_rejects_ill_formed_post_state() {
        let pre_view = 1u64;
        let post = Counter { n: 99, cap: 2 };
        let r = audit_transition("incr", &pre_view, &post, |_, _| true);
        assert_eq!(r.unwrap_err().subsystem, "counter");
    }

    #[test]
    fn obligations_ledger_monotone() {
        let before = Obligations::count();
        let _ = check(true, "t", "");
        assert!(Obligations::count() > before);
    }
}
