//! Permissioned pointers: `PPtr<T>` and `PointsTo<T>`.
//!
//! This is the core of the paper's *pointer-centric design* (§4.1). Kernel
//! data structures hold raw addresses (`PPtr<T>` is a wrapper around a
//! `usize`, freely copyable, allowed to form cycles, reverse edges, and all
//! the other non-linear shapes a C kernel would use). Every *access*
//! through a pointer, however, must present the matching linear permission
//! `PointsTo<T>`:
//!
//! * a permission is created exactly once, when the object's backing memory
//!   is allocated;
//! * it cannot be duplicated (no `Clone`), so at most one owner can write;
//! * it is consumed on deallocation, so dangling pointers cannot be
//!   dereferenced (temporal safety);
//! * it records the pointee's address and initialization state, so a
//!   permission for one object can never authorize access to another
//!   (type + spatial safety).
//!
//! Following Verus, the permission also *carries the ghost value* of the
//! pointee: updates through the pointer are reflected in the permission's
//! state, which is what the proofs quantify over. In this executable
//! reproduction the permission carries the real value, which makes the
//! semantics identical while keeping the simulation self-contained.
//!
//! Address/ownership mismatches are reported by panicking: they correspond
//! to verification errors that Verus would reject at compile time, so any
//! such panic in a test run is a refuted proof obligation, not a legitimate
//! runtime error.

use std::fmt;
use std::marker::PhantomData;

/// A raw, copyable pointer to a `T` in simulated kernel memory.
///
/// Equality and ordering are on the address, so `PPtr`s can key the flat
/// permission maps of §4.1.
pub struct PPtr<T> {
    addr: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> PPtr<T> {
    /// Creates a pointer from a raw address (Verus `PPtr::from_usize`).
    pub fn from_usize(addr: usize) -> Self {
        PPtr {
            addr,
            _marker: PhantomData,
        }
    }

    /// Returns the raw address.
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// Returns the null pointer (address 0); never carries a permission.
    pub fn null() -> Self {
        PPtr::from_usize(0)
    }

    /// `true` when this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.addr == 0
    }

    /// Immutably borrows the pointee through its permission.
    ///
    /// # Panics
    ///
    /// Panics ("verification failure") when the permission is for a
    /// different address or the pointee is uninitialized — both conditions
    /// Verus discharges statically (Listing 1, line 37 of the paper).
    pub fn borrow<'a>(&self, perm: &'a PointsTo<T>) -> &'a T {
        assert_eq!(
            perm.addr, self.addr,
            "PointsTo address does not match pointer"
        );
        perm.value
            .as_ref()
            .expect("borrow through uninitialized PointsTo")
    }

    /// Mutably borrows the pointee through its permission.
    ///
    /// The analogue of the paper's trusted setter functions (§5, item 7):
    /// Verus lacks general `&mut` support for tracked data, so Atmosphere
    /// routes mutation through a small trusted API; this is that API.
    ///
    /// # Panics
    ///
    /// Panics on address mismatch or uninitialized pointee.
    pub fn borrow_mut<'a>(&self, perm: &'a mut PointsTo<T>) -> &'a mut T {
        assert_eq!(
            perm.addr, self.addr,
            "PointsTo address does not match pointer"
        );
        perm.value
            .as_mut()
            .expect("borrow_mut through uninitialized PointsTo")
    }

    /// Writes `value` through the pointer, initializing or overwriting.
    ///
    /// # Panics
    ///
    /// Panics on address mismatch.
    pub fn write(&self, perm: &mut PointsTo<T>, value: T) {
        assert_eq!(
            perm.addr, self.addr,
            "PointsTo address does not match pointer"
        );
        perm.value = Some(value);
    }

    /// Moves the pointee out, leaving the permission uninitialized.
    ///
    /// # Panics
    ///
    /// Panics on address mismatch or uninitialized pointee.
    pub fn take(&self, perm: &mut PointsTo<T>) -> T {
        assert_eq!(
            perm.addr, self.addr,
            "PointsTo address does not match pointer"
        );
        perm.value
            .take()
            .expect("take through uninitialized PointsTo")
    }

    /// Replaces the pointee, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics on address mismatch or uninitialized pointee.
    pub fn replace(&self, perm: &mut PointsTo<T>, value: T) -> T {
        assert_eq!(
            perm.addr, self.addr,
            "PointsTo address does not match pointer"
        );
        perm.value
            .replace(value)
            .expect("replace through uninitialized PointsTo")
    }
}

impl<T> PPtr<T>
where
    T: Copy,
{
    /// Reads the pointee by copy.
    ///
    /// # Panics
    ///
    /// Panics on address mismatch or uninitialized pointee.
    pub fn read(&self, perm: &PointsTo<T>) -> T {
        *self.borrow(perm)
    }
}

impl<T> Clone for PPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for PPtr<T> {}

impl<T> PartialEq for PPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}

impl<T> Eq for PPtr<T> {}

impl<T> PartialOrd for PPtr<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for PPtr<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.addr.cmp(&other.addr)
    }
}

impl<T> std::hash::Hash for PPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.addr.hash(state);
    }
}

impl<T> fmt::Debug for PPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PPtr({:#x})", self.addr)
    }
}

/// The linear permission to access a `T` through a [`PPtr<T>`].
///
/// Not `Clone`: at most one permission exists per live object. Created by
/// the trusted allocation primitives (the page allocator in `atmo-mem`) and
/// consumed on deallocation.
#[derive(Debug)]
pub struct PointsTo<T> {
    addr: usize,
    value: Option<T>,
}

impl<T> PointsTo<T> {
    /// Creates an *uninitialized* permission for the object at `addr`.
    ///
    /// **Trusted primitive**: in Verus this is produced by the memory
    /// allocator together with the pointer; forging one elsewhere would be
    /// unsound. In this reproduction only `atmo-mem`'s page-to-object
    /// conversion and test fixtures may call it.
    pub fn new_uninit(addr: usize) -> Self {
        assert_ne!(addr, 0, "cannot create a permission for the null address");
        PointsTo { addr, value: None }
    }

    /// Creates an initialized permission (trusted, allocator-only).
    pub fn new_init(addr: usize, value: T) -> Self {
        assert_ne!(addr, 0, "cannot create a permission for the null address");
        PointsTo {
            addr,
            value: Some(value),
        }
    }

    /// Address this permission is for (Verus `perm@.addr()`).
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// `true` when the pointee has been initialized (Verus `is_init`).
    pub fn is_init(&self) -> bool {
        self.value.is_some()
    }

    /// `true` when the pointee is uninitialized.
    pub fn is_uninit(&self) -> bool {
        self.value.is_none()
    }

    /// The ghost view of the pointee (Verus `perm@.value()`).
    ///
    /// # Panics
    ///
    /// Panics when the pointee is uninitialized.
    pub fn value(&self) -> &T {
        self.value
            .as_ref()
            .expect("value() on uninitialized PointsTo")
    }

    /// Consumes the permission, releasing the pointee (deallocation).
    ///
    /// Returns the final value, if initialized. After this the address can
    /// never be dereferenced again — temporal safety by construction.
    pub fn into_value(self) -> Option<T> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh<T>(addr: usize) -> (PPtr<T>, PointsTo<T>) {
        (PPtr::from_usize(addr), PointsTo::new_uninit(addr))
    }

    #[test]
    fn write_then_borrow() {
        let (p, mut perm) = fresh::<u64>(0x1000);
        assert!(perm.is_uninit());
        p.write(&mut perm, 42);
        assert!(perm.is_init());
        assert_eq!(*p.borrow(&perm), 42);
        assert_eq!(*perm.value(), 42);
    }

    #[test]
    fn take_leaves_uninit() {
        let (p, mut perm) = fresh::<u64>(0x1000);
        p.write(&mut perm, 7);
        assert_eq!(p.take(&mut perm), 7);
        assert!(perm.is_uninit());
    }

    #[test]
    fn replace_returns_old() {
        let (p, mut perm) = fresh::<u64>(0x2000);
        p.write(&mut perm, 1);
        assert_eq!(p.replace(&mut perm, 2), 1);
        assert_eq!(p.read(&perm), 2);
    }

    #[test]
    fn borrow_mut_updates_ghost_state() {
        let (p, mut perm) = fresh::<Vec<u32>>(0x3000);
        p.write(&mut perm, vec![1]);
        p.borrow_mut(&mut perm).push(2);
        assert_eq!(p.borrow(&perm), &vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_permission_is_rejected() {
        // A permission for one address cannot authorize access to another:
        // this is the executable form of the check on Listing 1 line 37.
        let (_p1, mut perm1) = fresh::<u64>(0x1000);
        let (p2, _perm2) = fresh::<u64>(0x2000);
        p2.write(&mut perm1, 3);
    }

    #[test]
    #[should_panic(expected = "uninitialized")]
    fn uninitialized_borrow_is_rejected() {
        let (p, perm) = fresh::<u64>(0x1000);
        let _ = p.borrow(&perm);
    }

    #[test]
    #[should_panic]
    fn null_permission_cannot_exist() {
        let _ = PointsTo::<u64>::new_uninit(0);
    }

    #[test]
    fn pointers_are_plain_addresses() {
        let a: PPtr<u64> = PPtr::from_usize(0x1000);
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(a.addr(), 0x1000);
        assert!(PPtr::<u64>::null().is_null());
    }

    #[test]
    fn into_value_consumes_permission() {
        let (p, mut perm) = fresh::<String>(0x4000);
        p.write(&mut perm, "obj".into());
        let v = perm.into_value();
        assert_eq!(v.as_deref(), Some("obj"));
        // `perm` is gone: the borrow checker enforces temporal safety.
    }
}
