//! Shared lock helpers.
//!
//! The kernel's concurrency story treats a poisoned mutex as recoverable:
//! a panicking worker thread may leave a lock poisoned, but the protected
//! state is either still well-formed (the panic happened outside a
//! critical section mutation) or will be caught by the next `total_wf`
//! audit. Every domain lock therefore strips the poison marker instead of
//! propagating the panic, keeping fault-injection harnesses able to keep
//! auditing after an induced panic.

use std::sync::{Mutex, MutexGuard};

/// Acquires `mutex`, recovering the guard if a previous holder panicked.
pub fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Consumes `mutex`, recovering the value if a previous holder panicked.
pub fn into_inner_recovering<T>(mutex: Mutex<T>) -> T {
    mutex.into_inner().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        *lock_recovering(&m) += 1;
        let m = Arc::try_unwrap(m).unwrap();
        assert_eq!(into_inner_recovering(m), 8);
    }
}
