//! Flat permission storage: the `PermMap<T>`.
//!
//! The paper's key architectural choice (§4.1) is to store the permissions
//! for *every* node of every recursive kernel data structure in a single
//! flat map at the top of the owning subsystem — e.g.
//! `ProcessManager::thrd_perms: Tracked<Map<ThrdPtr, PointsTo<Thread>>>`
//! (Listing 2). The global view turns recursive invariants into flat,
//! quantifier-only ones, decouples structural from non-structural proofs,
//! and permits up-and-down traversal of trees.
//!
//! `PermMap<T>` is that tracked map. It is linear (not `Clone`), its
//! entries are linear, and it maintains the *address coherence* invariant
//! the proofs rely on: the key of every entry equals the address of the
//! stored permission (`forall p. dom.contains(p) ==> perms[p].addr() == p`).

use std::collections::BTreeMap;
use std::fmt;

use crate::{Map, PointsTo, Set};

/// A flat, linear map from raw addresses to [`PointsTo`] permissions.
pub struct PermMap<T> {
    perms: BTreeMap<usize, PointsTo<T>>,
}

impl<T> PermMap<T> {
    /// Returns an empty permission map.
    pub fn new() -> Self {
        PermMap {
            perms: BTreeMap::new(),
        }
    }

    /// Number of permissions held.
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// `true` when no permissions are held.
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }

    /// `true` when a permission for `ptr` is held.
    pub fn contains(&self, ptr: usize) -> bool {
        self.perms.contains_key(&ptr)
    }

    /// The domain of held permissions (Verus `perms@.dom()`).
    pub fn dom(&self) -> Set<usize> {
        self.perms.keys().copied().collect()
    }

    /// Deposits a permission (Verus `tracked_insert`).
    ///
    /// # Panics
    ///
    /// Panics when the key does not equal the permission's address (the
    /// address-coherence invariant) or when a permission for the address is
    /// already held (linearity: a second permission for the same object
    /// cannot exist).
    pub fn tracked_insert(&mut self, ptr: usize, perm: PointsTo<T>) {
        assert_eq!(
            perm.addr(),
            ptr,
            "PermMap key must equal permission address"
        );
        let prev = self.perms.insert(ptr, perm);
        assert!(
            prev.is_none(),
            "duplicate permission for {ptr:#x}: linearity violated"
        );
    }

    /// Withdraws the permission for `ptr` (Verus `tracked_remove`).
    ///
    /// # Panics
    ///
    /// Panics when no permission for `ptr` is held.
    pub fn tracked_remove(&mut self, ptr: usize) -> PointsTo<T> {
        self.perms
            .remove(&ptr)
            .unwrap_or_else(|| panic!("no permission held for {ptr:#x}"))
    }

    /// Immutably borrows the permission for `ptr` (Verus `tracked_borrow`,
    /// Listing 1 line 36).
    ///
    /// # Panics
    ///
    /// Panics when no permission for `ptr` is held.
    pub fn tracked_borrow(&self, ptr: usize) -> &PointsTo<T> {
        self.perms
            .get(&ptr)
            .unwrap_or_else(|| panic!("no permission held for {ptr:#x}"))
    }

    /// Mutably borrows the permission for `ptr` (trusted setter analogue).
    ///
    /// # Panics
    ///
    /// Panics when no permission for `ptr` is held.
    pub fn tracked_borrow_mut(&mut self, ptr: usize) -> &mut PointsTo<T> {
        self.perms
            .get_mut(&ptr)
            .unwrap_or_else(|| panic!("no permission held for {ptr:#x}"))
    }

    /// Convenience: the ghost value of the object at `ptr`.
    ///
    /// # Panics
    ///
    /// Panics when no permission is held or the object is uninitialized.
    pub fn value(&self, ptr: usize) -> &T {
        self.tracked_borrow(ptr).value()
    }

    /// Iterator over `(addr, permission)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &PointsTo<T>)> {
        self.perms.iter().map(|(k, v)| (*k, v))
    }

    /// Checks the address-coherence and initialization invariants:
    /// every entry's key equals its permission's address, and every held
    /// permission is initialized (kernel objects are always constructed
    /// before their permission enters a subsystem's flat map).
    pub fn wf(&self) -> bool {
        self.perms
            .iter()
            .all(|(k, p)| p.addr() == *k && p.is_init())
    }
}

impl<T: Clone> PermMap<T> {
    /// The abstract view: a spec-level [`Map`] from address to ghost value.
    ///
    /// Refinement relations are stated against this view.
    pub fn view(&self) -> Map<usize, T> {
        self.perms
            .iter()
            .filter(|(_, p)| p.is_init())
            .map(|(k, p)| (*k, p.value().clone()))
            .collect()
    }
}

impl<T> Default for PermMap<T> {
    fn default() -> Self {
        PermMap::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for PermMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.perms.iter().map(|(k, v)| (format!("{k:#x}"), v)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PPtr;

    fn obj(addr: usize, v: u64) -> PointsTo<u64> {
        PointsTo::new_init(addr, v)
    }

    #[test]
    fn insert_borrow_remove_roundtrip() {
        let mut pm = PermMap::new();
        pm.tracked_insert(0x1000, obj(0x1000, 7));
        assert!(pm.contains(0x1000));
        assert_eq!(*pm.value(0x1000), 7);
        let perm = pm.tracked_remove(0x1000);
        assert_eq!(*perm.value(), 7);
        assert!(!pm.contains(0x1000));
    }

    #[test]
    fn dom_reflects_membership() {
        let mut pm = PermMap::new();
        pm.tracked_insert(0x1000, obj(0x1000, 1));
        pm.tracked_insert(0x2000, obj(0x2000, 2));
        assert_eq!(pm.dom(), Set::from_slice(&[0x1000, 0x2000]));
        assert_eq!(pm.len(), 2);
    }

    #[test]
    #[should_panic(expected = "key must equal")]
    fn key_address_mismatch_rejected() {
        let mut pm = PermMap::new();
        pm.tracked_insert(0x1000, obj(0x2000, 1));
    }

    #[test]
    #[should_panic(expected = "linearity")]
    fn duplicate_permission_rejected() {
        let mut pm = PermMap::new();
        pm.tracked_insert(0x1000, obj(0x1000, 1));
        pm.tracked_insert(0x1000, obj(0x1000, 2));
    }

    #[test]
    #[should_panic(expected = "no permission")]
    fn missing_permission_rejected() {
        let pm: PermMap<u64> = PermMap::new();
        let _ = pm.tracked_borrow(0x1000);
    }

    #[test]
    fn view_projects_ghost_values() {
        let mut pm = PermMap::new();
        pm.tracked_insert(0x1000, obj(0x1000, 1));
        pm.tracked_insert(0x2000, obj(0x2000, 2));
        let v = pm.view();
        assert_eq!(v.index(&0x1000), Some(&1));
        assert_eq!(v.index(&0x2000), Some(&2));
    }

    #[test]
    fn borrow_through_pointer_uses_flat_map() {
        // The Listing 1 idiom: fetch the permission from the flat map, then
        // dereference the raw pointer through it.
        let mut pm = PermMap::new();
        pm.tracked_insert(0x7000, obj(0x7000, 99));
        let t_ptr = 0x7000usize;
        let perm = pm.tracked_borrow(t_ptr);
        assert_eq!(perm.addr(), t_ptr);
        assert!(perm.is_init());
        let p = PPtr::<u64>::from_usize(t_ptr);
        assert_eq!(*p.borrow(perm), 99);
    }

    #[test]
    fn wf_detects_healthy_map() {
        let mut pm = PermMap::new();
        pm.tracked_insert(0x1000, obj(0x1000, 1));
        assert!(pm.wf());
    }

    #[test]
    fn mutation_via_borrow_mut() {
        let mut pm = PermMap::new();
        pm.tracked_insert(0x1000, obj(0x1000, 1));
        let p = PPtr::<u64>::from_usize(0x1000);
        p.write(pm.tracked_borrow_mut(0x1000), 5);
        assert_eq!(*pm.value(0x1000), 5);
    }
}
