//! Commutative set/multiset folds for incremental audit ledgers.
//!
//! The incremental well-formedness audit cannot afford to rebuild the
//! kernel's page-closure sets on every check — that is exactly the
//! O(kernel) scan it exists to avoid. Instead each audited set is
//! represented by a [`SetFold`]: an element count plus an XOR of
//! per-element fingerprints. Insertion and removal are O(1) and
//! *commutative*, so per-CPU delta ledgers can be folded in any order
//! and still converge to the same value, and two folds compare in O(1).
//!
//! Two folds with equal `(count, fp)` represent the same set with
//! overwhelming probability (the fingerprint is a 64-bit mix of the
//! element), and the kernel's stop-the-world cross-check audits the
//! folds against freshly scanned state bit-for-bit, so a fingerprint
//! collision cannot silently persist across an epoch boundary.
//!
//! [`RefFold`] layers per-element reference counts on top: the kernel's
//! leak-freedom equation quantifies over the *set* of referenced frames,
//! but a frame may be referenced from several sites at once (two address
//! spaces, a pending grant, an IOMMU table). The fold keeps exact
//! per-element counts and maintains the support set — elements with a
//! positive count — as a `SetFold`, handling the transient negative
//! counts that arise when per-CPU ledgers are folded out of program
//! order.

use std::collections::HashMap;

/// SplitMix64 finalizer: the per-element fingerprint mix.
///
/// Bijective on `u64`, so distinct elements never collide to the same
/// fingerprint — collisions can only arise from XOR cancellation across
/// *sets* of three or more elements.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An order-insensitive summary of a set: element count plus XOR of
/// element fingerprints. O(1) insert/remove/compare.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetFold {
    /// Signed element count (negative only transiently, while folding
    /// removals ahead of their insertions).
    pub count: i64,
    /// XOR of [`splitmix64`] fingerprints of the elements.
    pub fp: u64,
}

impl SetFold {
    /// The empty fold.
    pub fn new() -> Self {
        SetFold::default()
    }

    /// Folds an insertion of `x`.
    pub fn insert(&mut self, x: u64) {
        self.count += 1;
        self.fp ^= splitmix64(x);
    }

    /// Folds a removal of `x`.
    pub fn remove(&mut self, x: u64) {
        self.count -= 1;
        self.fp ^= splitmix64(x);
    }

    /// `true` when the fold summarizes the empty set.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.fp == 0
    }

    /// The fold of the disjoint union with `other` (counts add,
    /// fingerprints XOR).
    pub fn disjoint_union(&self, other: &SetFold) -> SetFold {
        SetFold {
            count: self.count + other.count,
            fp: self.fp ^ other.fp,
        }
    }
}

/// A multiset of reference sites over elements, maintaining the support
/// set (elements with a positive count) as a [`SetFold`].
///
/// Increments and decrements commute: folding a decrement before the
/// increment it undoes leaves a transient negative per-element count,
/// and the support updates only on the 0→1 / 1→0 edges, so any
/// interleaving of a ledger converges to the same support fold.
#[derive(Clone, Debug, Default)]
pub struct RefFold {
    counts: HashMap<u64, i64>,
    support: SetFold,
    total: i64,
}

impl RefFold {
    /// The empty fold.
    pub fn new() -> Self {
        RefFold::default()
    }

    /// Folds one new reference site for `x`.
    pub fn inc(&mut self, x: u64) {
        let c = self.counts.entry(x).or_insert(0);
        if *c == 0 {
            self.support.insert(x);
        }
        *c += 1;
        self.total += 1;
        if *c == 0 {
            self.counts.remove(&x);
        }
    }

    /// Folds one dropped reference site for `x`.
    pub fn dec(&mut self, x: u64) {
        let c = self.counts.entry(x).or_insert(0);
        if *c == 1 {
            self.support.remove(x);
        }
        *c -= 1;
        self.total -= 1;
        if *c == 0 {
            self.counts.remove(&x);
        }
    }

    /// The fold of the support set (elements with a positive count).
    pub fn support(&self) -> SetFold {
        self.support
    }

    /// Total reference sites across all elements.
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Reference sites currently held by `x`.
    pub fn count_of(&self, x: u64) -> i64 {
        self.counts.get(&x).copied().unwrap_or(0)
    }

    /// `true` when no element holds a reference (and no transient
    /// negative is outstanding).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.total == 0 && self.support.is_empty()
    }
}

impl PartialEq for RefFold {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total && self.support == other.support
    }
}

impl Eq for RefFold {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_fold_insert_remove_cancels() {
        let mut f = SetFold::new();
        f.insert(7);
        f.insert(42);
        f.remove(7);
        let mut g = SetFold::new();
        g.insert(42);
        assert_eq!(f, g);
        f.remove(42);
        assert!(f.is_empty());
    }

    #[test]
    fn set_fold_commutes() {
        let mut a = SetFold::new();
        a.insert(1);
        a.remove(2);
        a.insert(2);
        a.insert(3);
        let mut b = SetFold::new();
        b.insert(3);
        b.insert(2);
        b.insert(1);
        b.remove(2);
        assert_eq!(a, b);
    }

    #[test]
    fn disjoint_union_matches_merged_inserts() {
        let mut a = SetFold::new();
        a.insert(10);
        let mut b = SetFold::new();
        b.insert(20);
        b.insert(30);
        let mut m = SetFold::new();
        for x in [10, 20, 30] {
            m.insert(x);
        }
        assert_eq!(a.disjoint_union(&b), m);
    }

    #[test]
    fn ref_fold_support_tracks_positive_counts() {
        let mut r = RefFold::new();
        r.inc(5);
        r.inc(5);
        let mut s = SetFold::new();
        s.insert(5);
        assert_eq!(r.support(), s, "two sites, one supported element");
        r.dec(5);
        assert_eq!(r.support(), s, "still referenced once");
        r.dec(5);
        assert!(r.is_empty());
    }

    #[test]
    fn ref_fold_handles_out_of_order_deltas() {
        // A remap folded dec-before-inc (cross-shard ledger order) must
        // converge to the same support as the in-order fold.
        let mut r = RefFold::new();
        r.inc(9); // established reference
        r.dec(9); // ...the unmap half of the remap arrives first
        r.inc(9); // ...then the map half
        let mut s = SetFold::new();
        s.insert(9);
        assert_eq!(r.support(), s);
        assert_eq!(r.total(), 1);

        // A fresh reference folded dec-first dips negative transiently
        // and must not pollute the support set.
        let mut q = RefFold::new();
        q.dec(4);
        assert_eq!(q.count_of(4), -1);
        assert_eq!(q.total(), -1);
        q.inc(4);
        assert!(q.is_empty(), "support never saw the transient negative");
    }

    #[test]
    fn splitmix64_is_nontrivial() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
