//! Persistent, mathematical sets (the analogue of Verus `Set<T>`).
//!
//! Sets carry most of Atmosphere's abstract reasoning: the `subtree` of a
//! container (all reachable children, Listing 2), `page_closure()` of every
//! subsystem (§4.2), the allocator's free/allocated/mapped/merged page
//! sets, and the thread/process sets `T_A`, `P_A`, ... of the
//! non-interference proof (§4.3).
//!
//! All operations are persistent and return new sets.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A persistent set with Verus `Set` semantics.
///
/// # Examples
///
/// ```
/// use atmo_spec::Set;
///
/// let closure = Set::empty().insert(0x1000usize).insert(0x2000);
/// assert!(closure.contains(&0x1000));
/// assert!(closure.disjoint(&Set::empty().insert(0x3000)));
/// ```
pub struct Set<T: Ord> {
    items: Arc<BTreeSet<T>>,
}

impl<T: Ord + Clone> Set<T> {
    /// Returns the empty set.
    pub fn empty() -> Self {
        Set {
            items: Arc::new(BTreeSet::new()),
        }
    }

    /// Builds a set from a slice (duplicates collapse).
    pub fn from_slice(items: &[T]) -> Self {
        Set {
            items: Arc::new(items.iter().cloned().collect()),
        }
    }

    /// Cardinality of the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    /// Returns `self ∪ {item}`.
    pub fn insert(&self, item: T) -> Self {
        let mut s = (*self.items).clone();
        s.insert(item);
        Set { items: Arc::new(s) }
    }

    /// Returns `self ∖ {item}`.
    pub fn remove(&self, item: &T) -> Self {
        let mut s = (*self.items).clone();
        s.remove(item);
        Set { items: Arc::new(s) }
    }

    /// Returns `self ∪ other`.
    pub fn union(&self, other: &Set<T>) -> Self {
        let mut s = (*self.items).clone();
        s.extend(other.items.iter().cloned());
        Set { items: Arc::new(s) }
    }

    /// Returns `self ∩ other`.
    pub fn intersect(&self, other: &Set<T>) -> Self {
        Set {
            items: Arc::new(self.items.intersection(&other.items).cloned().collect()),
        }
    }

    /// Returns `self ∖ other`.
    pub fn difference(&self, other: &Set<T>) -> Self {
        Set {
            items: Arc::new(self.items.difference(&other.items).cloned().collect()),
        }
    }

    /// `true` when every element of `self` is in `other`.
    pub fn subset_of(&self, other: &Set<T>) -> bool {
        self.items.is_subset(&other.items)
    }

    /// `true` when `self ∩ other = ∅`.
    ///
    /// Pairwise disjointness of `page_closure()` sets is the heart of the
    /// paper's memory-safety argument (§4.2).
    pub fn disjoint(&self, other: &Set<T>) -> bool {
        self.items.is_disjoint(&other.items)
    }

    /// Iterator over the elements in ascending order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, T> {
        self.items.iter()
    }

    /// Returns the elements as a sorted vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }

    /// Returns the subset of elements satisfying `pred`.
    pub fn filter(&self, pred: impl Fn(&T) -> bool) -> Self {
        Set {
            items: Arc::new(self.items.iter().filter(|x| pred(x)).cloned().collect()),
        }
    }

    /// Returns an arbitrary element, if any (Verus `Set::choose`).
    pub fn choose(&self) -> Option<&T> {
        self.items.iter().next()
    }
}

impl<T: Ord> Clone for Set<T> {
    fn clone(&self) -> Self {
        Set {
            items: Arc::clone(&self.items),
        }
    }
}

impl<T: Ord> PartialEq for Set<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.items == *other.items
    }
}

impl<T: Ord> Eq for Set<T> {}

impl<T: Ord + Clone> Default for Set<T> {
    fn default() -> Self {
        Set::empty()
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for Set<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl<T: Ord + Clone> FromIterator<T> for Set<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Set {
            items: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl<'a, T: Ord> IntoIterator for &'a Set<T> {
    type Item = &'a T;
    type IntoIter = std::collections::btree_set::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// Checks that every pair of sets in `closures` is disjoint.
///
/// This is the executable form of the paper's "all objects in the kernel
/// are pairwise disjoint in memory" obligation, applied at one level of the
/// subsystem hierarchy (§4.2, bottom-up recursive memory reasoning).
pub fn pairwise_disjoint<T: Ord + Clone>(closures: &[Set<T>]) -> bool {
    for i in 0..closures.len() {
        for j in (i + 1)..closures.len() {
            if !closures[i].disjoint(&closures[j]) {
                return false;
            }
        }
    }
    true
}

/// Returns the union of all sets in `closures`.
pub fn union_all<T: Ord + Clone>(closures: &[Set<T>]) -> Set<T> {
    let mut acc = Set::empty();
    for c in closures {
        acc = acc.union(c);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s: Set<u32> = Set::empty();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(&1));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let s = Set::empty().insert(1).insert(2);
        assert!(s.contains(&1) && s.contains(&2));
        let t = s.remove(&1);
        assert!(!t.contains(&1));
        assert!(s.contains(&1), "persistence: original unchanged");
    }

    #[test]
    fn insert_idempotent() {
        let s = Set::empty().insert(7).insert(7);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_intersect_difference() {
        let a = Set::from_slice(&[1, 2, 3]);
        let b = Set::from_slice(&[3, 4]);
        assert_eq!(a.union(&b), Set::from_slice(&[1, 2, 3, 4]));
        assert_eq!(a.intersect(&b), Set::from_slice(&[3]));
        assert_eq!(a.difference(&b), Set::from_slice(&[1, 2]));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = Set::from_slice(&[1, 2]);
        let b = Set::from_slice(&[1, 2, 3]);
        let c = Set::from_slice(&[4, 5]);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(a.disjoint(&c));
        assert!(!a.disjoint(&b));
    }

    #[test]
    fn pairwise_disjoint_detects_overlap() {
        let a = Set::from_slice(&[1, 2]);
        let b = Set::from_slice(&[3]);
        let c = Set::from_slice(&[2, 4]);
        assert!(pairwise_disjoint(&[a.clone(), b.clone()]));
        assert!(!pairwise_disjoint(&[a, b, c]));
    }

    #[test]
    fn union_all_collects_everything() {
        let parts = [
            Set::from_slice(&[1]),
            Set::from_slice(&[2, 3]),
            Set::from_slice(&[4]),
        ];
        assert_eq!(union_all(&parts), Set::from_slice(&[1, 2, 3, 4]));
    }

    #[test]
    fn filter_selects_subset() {
        let s = Set::from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(s.filter(|x| x % 2 == 0), Set::from_slice(&[2, 4]));
    }

    #[test]
    fn choose_on_empty_is_none() {
        let s: Set<u32> = Set::empty();
        assert!(s.choose().is_none());
        assert_eq!(Set::from_slice(&[9]).choose(), Some(&9));
    }
}
