//! Verification substrate for the Atmosphere reproduction.
//!
//! The Atmosphere paper verifies its kernel with [Verus], an SMT-based
//! verifier for Rust. Verus provides three families of artefacts that the
//! kernel's proofs are written against:
//!
//! 1. **Ghost collections** — mathematical `Map`, `Set` and `Seq` types used
//!    to express abstract kernel state (e.g. the abstract page table is a
//!    `Map<VAddr, MapEntry>`).
//! 2. **Ghost/tracked wrappers** — `Ghost<T>` (freely duplicable
//!    specification data) and `Tracked<T>` (linear, borrow-checked proof
//!    data).
//! 3. **Linear permission pointers** — `PPtr<T>` (a raw address) paired with
//!    `PointsTo<T>` (an affine permission that both authorizes access
//!    through the pointer and carries the ghost value of the pointee).
//!
//! This crate reproduces all three families as *executable* Rust. Instead
//! of discharging verification conditions statically with Z3, the same
//! conditions are evaluated at runtime by the test and refinement harnesses
//! (see [`harness`]): every specification function, invariant and
//! refinement relation from the paper exists here as an ordinary function
//! returning `bool`, and the harness asserts them around every kernel
//! transition.
//!
//! Linearity — the property Verus gets from Rust's borrow checker — is
//! preserved by construction: [`PointsTo`] is not `Clone`, is consumed by
//! deallocation, and every dereference must present the matching permission.
//!
//! [Verus]: https://github.com/verus-lang/verus

pub mod fold;
pub mod ghost;
pub mod harness;
pub mod map;
pub mod perm_map;
pub mod ptr;
pub mod rng;
pub mod seq;
pub mod set;
pub mod storage;
pub mod sync;

pub use fold::{splitmix64, RefFold, SetFold};
pub use ghost::{Ghost, Tracked};
pub use harness::{InvariantViolation, VerifResult};
pub use map::Map;
pub use perm_map::PermMap;
pub use ptr::{PPtr, PointsTo};
pub use rng::XorShift64Star;
pub use seq::Seq;
pub use set::Set;
pub use storage::{AbstractKv, KvOp};
pub use sync::{into_inner_recovering, lock_recovering};

/// Asserts a verification condition.
///
/// Mirrors a Verus `assert(...)`: in a verified build the condition is
/// discharged statically and erased; here it is checked in debug/test
/// builds and compiled out of release builds (so, like ghost code, it adds
/// no overhead to the benchmarked hot paths).
#[macro_export]
macro_rules! vassert {
    ($cond:expr $(, $msg:expr)?) => {
        debug_assert!($cond $(, $msg)?)
    };
}

/// Asserts a function precondition (a Verus `requires` clause).
#[macro_export]
macro_rules! requires {
    ($cond:expr $(, $msg:expr)?) => {
        debug_assert!($cond $(, $msg)?)
    };
}

/// Asserts a function postcondition (a Verus `ensures` clause).
#[macro_export]
macro_rules! ensures {
    ($cond:expr $(, $msg:expr)?) => {
        debug_assert!($cond $(, $msg)?)
    };
}
