//! The abstract storage specification: a key-value map driven by a
//! sequence of operations.
//!
//! The crash-consistency story of the log-structured store is stated
//! against this model: a write-ahead log *commits* an operation when its
//! record is fully durable, and recovery from any crash image must
//! rebuild exactly [`AbstractKv::from_ops`] over the committed prefix —
//! nothing more (no torn record surfaces), nothing less (no committed
//! operation is lost). The refinement harness
//! (`atmo_kernel::refine::recovery_refines`) checks that equality after
//! every injected power cut.

use std::collections::BTreeMap;

/// One abstract key-value operation, in commit order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOp {
    /// Bind `key` to `value` (inserting or overwriting).
    Set(Vec<u8>, Vec<u8>),
    /// Remove `key` (a no-op when absent).
    Delete(Vec<u8>),
}

/// The abstract key-value state: a mathematical map from keys to
/// values, with no representation detail (no slots, no segments, no
/// checksums).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AbstractKv {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
}

impl AbstractKv {
    /// The empty map.
    pub fn new() -> Self {
        AbstractKv::default()
    }

    /// Applies one operation.
    pub fn apply(&mut self, op: &KvOp) {
        match op {
            KvOp::Set(k, v) => {
                self.map.insert(k.clone(), v.clone());
            }
            KvOp::Delete(k) => {
                self.map.remove(k);
            }
        }
    }

    /// The map after applying `ops` in order to the empty state.
    pub fn from_ops(ops: &[KvOp]) -> Self {
        let mut kv = AbstractKv::new();
        for op in ops {
            kv.apply(op);
        }
        kv
    }

    /// The map holding exactly `entries` (the shape a recovered concrete
    /// store reports for the refinement check).
    pub fn from_entries(entries: &[(Vec<u8>, Vec<u8>)]) -> Self {
        AbstractKv {
            map: entries.iter().cloned().collect(),
        }
    }

    /// The value bound to `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no key is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The bindings in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_apply_in_order() {
        let ops = vec![
            KvOp::Set(b"a".to_vec(), b"1".to_vec()),
            KvOp::Set(b"b".to_vec(), b"2".to_vec()),
            KvOp::Set(b"a".to_vec(), b"3".to_vec()),
            KvOp::Delete(b"b".to_vec()),
        ];
        let kv = AbstractKv::from_ops(&ops);
        assert_eq!(kv.get(b"a"), Some(&b"3"[..]));
        assert_eq!(kv.get(b"b"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn delete_of_absent_key_is_a_noop() {
        let kv = AbstractKv::from_ops(&[KvOp::Delete(b"ghost".to_vec())]);
        assert!(kv.is_empty());
        assert_eq!(kv, AbstractKv::new());
    }

    #[test]
    fn prefixes_are_monotone_histories() {
        // The committed-prefix discipline: every prefix of an op
        // sequence is itself a legal abstract history.
        let ops = [
            KvOp::Set(b"k".to_vec(), b"v1".to_vec()),
            KvOp::Delete(b"k".to_vec()),
            KvOp::Set(b"k".to_vec(), b"v2".to_vec()),
        ];
        let states: Vec<AbstractKv> = (0..=ops.len())
            .map(|n| AbstractKv::from_ops(&ops[..n]))
            .collect();
        assert_eq!(states[0].get(b"k"), None);
        assert_eq!(states[1].get(b"k"), Some(&b"v1"[..]));
        assert_eq!(states[2].get(b"k"), None);
        assert_eq!(states[3].get(b"k"), Some(&b"v2"[..]));
    }

    #[test]
    fn from_entries_round_trips() {
        let kv = AbstractKv::from_ops(&[
            KvOp::Set(b"x".to_vec(), b"1".to_vec()),
            KvOp::Set(b"y".to_vec(), b"2".to_vec()),
        ]);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = kv
            .entries()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        assert_eq!(AbstractKv::from_entries(&entries), kv);
    }
}
