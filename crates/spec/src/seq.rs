//! Persistent, mathematical sequences (the analogue of Verus `Seq<T>`).
//!
//! Kernel specifications use sequences for ordered abstract state — e.g.
//! the ghost `path` of a container (the chain of its direct and indirect
//! parents, Listing 2 of the paper) or the list of physical pages handed
//! out by `mmap`. Operations are persistent: they return a new sequence and
//! leave the receiver untouched, exactly like Verus spec-level sequences.
//!
//! The representation is a shared (`Arc`) vector with copy-on-write, which
//! makes the common ghost-state idiom — clone the old abstract state, apply
//! one update, compare — cheap.

use std::fmt;
use std::sync::Arc;

/// A persistent sequence with Verus `Seq` semantics.
///
/// # Examples
///
/// ```
/// use atmo_spec::Seq;
///
/// let path = Seq::empty().push(1usize).push(2).push(3);
/// assert_eq!(path.len(), 3);
/// assert_eq!(path[2], 3);
/// assert_eq!(path.subrange(0, 2), Seq::from_slice(&[1, 2]));
/// ```
pub struct Seq<T> {
    items: Arc<Vec<T>>,
}

impl<T: Clone> Seq<T> {
    /// Returns the empty sequence.
    pub fn empty() -> Self {
        Seq {
            items: Arc::new(Vec::new()),
        }
    }

    /// Builds a sequence from a slice.
    pub fn from_slice(items: &[T]) -> Self {
        Seq {
            items: Arc::new(items.to_vec()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the sequence has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns the element at `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds — the Verus counterpart would have
    /// rejected the access statically.
    // Named after Verus `Seq::index`; `ops::Index` is also implemented.
    #[allow(clippy::should_implement_trait)]
    pub fn index(&self, i: usize) -> &T {
        &self.items[i]
    }

    /// Returns a new sequence with `item` appended.
    pub fn push(&self, item: T) -> Self {
        let mut v = (*self.items).clone();
        v.push(item);
        Seq { items: Arc::new(v) }
    }

    /// Returns a new sequence with index `i` replaced by `item`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn update(&self, i: usize, item: T) -> Self {
        let mut v = (*self.items).clone();
        v[i] = item;
        Seq { items: Arc::new(v) }
    }

    /// Returns the subsequence `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `start > end` or `end > len`.
    pub fn subrange(&self, start: usize, end: usize) -> Self {
        Seq {
            items: Arc::new(self.items[start..end].to_vec()),
        }
    }

    /// Returns the concatenation `self + other`.
    pub fn add(&self, other: &Seq<T>) -> Self {
        let mut v = (*self.items).clone();
        v.extend_from_slice(&other.items);
        Seq { items: Arc::new(v) }
    }

    /// Returns the sequence without its last element.
    ///
    /// # Panics
    ///
    /// Panics on the empty sequence.
    pub fn drop_last(&self) -> Self {
        assert!(!self.is_empty(), "drop_last on empty Seq");
        self.subrange(0, self.len() - 1)
    }

    /// Returns the last element.
    ///
    /// # Panics
    ///
    /// Panics on the empty sequence.
    pub fn last(&self) -> &T {
        self.items.last().expect("last on empty Seq")
    }

    /// Returns the first element.
    ///
    /// # Panics
    ///
    /// Panics on the empty sequence.
    pub fn first(&self) -> &T {
        self.items.first().expect("first on empty Seq")
    }

    /// Iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Returns a plain vector copy of the elements.
    pub fn to_vec(&self) -> Vec<T> {
        (*self.items).clone()
    }
}

impl<T: Clone + PartialEq> Seq<T> {
    /// `true` when some element equals `item` (Verus `Seq::contains`).
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    /// Index of the first occurrence of `item`, if any.
    pub fn index_of(&self, item: &T) -> Option<usize> {
        self.items.iter().position(|x| x == item)
    }

    /// `true` when no element occurs twice (the paper's trusted
    /// "unique sequence" axioms are stated over this predicate).
    pub fn no_duplicates(&self) -> bool {
        for i in 0..self.items.len() {
            for j in (i + 1)..self.items.len() {
                if self.items[i] == self.items[j] {
                    return false;
                }
            }
        }
        true
    }

    /// Returns the sequence with the first occurrence of `item` removed.
    ///
    /// Mirrors the trusted axiom from §5 of the paper: removing an element
    /// from a unique sequence keeps it unique (tested below rather than
    /// axiomatized).
    pub fn remove_first(&self, item: &T) -> Self {
        match self.index_of(item) {
            None => self.clone(),
            Some(i) => {
                let mut v = (*self.items).clone();
                v.remove(i);
                Seq { items: Arc::new(v) }
            }
        }
    }
}

impl<T: Clone + Ord> Seq<T> {
    /// Returns the set of elements (Verus `Seq::to_set`).
    pub fn to_set(&self) -> crate::Set<T> {
        let mut s = crate::Set::empty();
        for item in self.iter() {
            s = s.insert(item.clone());
        }
        s
    }
}

impl<T> Clone for Seq<T> {
    fn clone(&self) -> Self {
        Seq {
            items: Arc::clone(&self.items),
        }
    }
}

impl<T: PartialEq> PartialEq for Seq<T> {
    fn eq(&self, other: &Self) -> bool {
        *self.items == *other.items
    }
}

impl<T: Eq> Eq for Seq<T> {}

impl<T: Clone> Default for Seq<T> {
    fn default() -> Self {
        Seq::empty()
    }
}

impl<T> std::ops::Index<usize> for Seq<T> {
    type Output = T;

    fn index(&self, i: usize) -> &T {
        &self.items[i]
    }
}

impl<T: fmt::Debug> fmt::Debug for Seq<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<T: Clone> FromIterator<T> for Seq<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Seq {
            items: Arc::new(iter.into_iter().collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_len_zero() {
        let s: Seq<u32> = Seq::empty();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn push_is_persistent() {
        let a = Seq::empty().push(1).push(2);
        let b = a.push(3);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b[2], 3);
    }

    #[test]
    fn update_replaces_single_index() {
        let a = Seq::from_slice(&[1, 2, 3]);
        let b = a.update(1, 9);
        assert_eq!(a[1], 2);
        assert_eq!(b[1], 9);
        assert_eq!(b[0], 1);
        assert_eq!(b[2], 3);
    }

    #[test]
    fn subrange_matches_slice() {
        let a = Seq::from_slice(&[10, 20, 30, 40]);
        assert_eq!(a.subrange(1, 3), Seq::from_slice(&[20, 30]));
        assert_eq!(a.subrange(0, 0), Seq::empty());
    }

    #[test]
    fn path_subrange_identity() {
        // The container-tree path invariant from the paper relies on
        // subrange/push interaction: (p.push(x)).subrange(0, p.len()) == p.
        let p = Seq::from_slice(&[1usize, 2, 3]);
        let q = p.push(4);
        assert_eq!(q.subrange(0, p.len()), p);
        assert_eq!(*q.last(), 4);
    }

    #[test]
    fn contains_and_index_of() {
        let a = Seq::from_slice(&[5, 6, 7]);
        assert!(a.contains(&6));
        assert!(!a.contains(&8));
        assert_eq!(a.index_of(&7), Some(2));
        assert_eq!(a.index_of(&8), None);
    }

    #[test]
    fn no_duplicates_detects_repeats() {
        assert!(Seq::from_slice(&[1, 2, 3]).no_duplicates());
        assert!(!Seq::from_slice(&[1, 2, 1]).no_duplicates());
        assert!(Seq::<u32>::empty().no_duplicates());
    }

    #[test]
    fn remove_first_preserves_uniqueness() {
        // The paper trusts this as an axiom (§5 item 6); here it is a test.
        let a = Seq::from_slice(&[1, 2, 3, 4]);
        let b = a.remove_first(&3);
        assert!(b.no_duplicates());
        assert_eq!(b, Seq::from_slice(&[1, 2, 4]));
    }

    #[test]
    fn add_concatenates() {
        let a = Seq::from_slice(&[1, 2]);
        let b = Seq::from_slice(&[3]);
        assert_eq!(a.add(&b), Seq::from_slice(&[1, 2, 3]));
    }

    #[test]
    fn to_set_deduplicates() {
        let a = Seq::from_slice(&[1, 2, 2, 3]);
        let s = a.to_set();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&2));
    }

    #[test]
    fn drop_last_and_last() {
        let a = Seq::from_slice(&[1, 2, 3]);
        assert_eq!(*a.last(), 3);
        assert_eq!(a.drop_last(), Seq::from_slice(&[1, 2]));
    }

    #[test]
    #[should_panic]
    fn index_out_of_bounds_panics() {
        let a = Seq::from_slice(&[1]);
        let _ = a[1];
    }
}
