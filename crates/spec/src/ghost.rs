//! `Ghost<T>` and `Tracked<T>` wrappers.
//!
//! Verus distinguishes *ghost* data (specification-only, freely duplicable,
//! erased at compile time) from *tracked* data (proof-level but linear —
//! it obeys the full Rust ownership discipline and is how permissions are
//! carried around). Atmosphere uses `Ghost` for abstract state stored
//! alongside concrete fields (e.g. `PageTable::map`, `Container::path`)
//! and `Tracked` for the flat permission maps (`ProcessManager::thrd_perms`
//! etc., Listing 2 of the paper).
//!
//! In this executable reproduction, ghost data is carried at runtime so the
//! harness can check refinement; it is still "ghost" in the sense that no
//! executable decision is ever allowed to read it (enforced by review
//! convention, as in the paper's trusted-spec discipline, and exercised by
//! tests that mutate ghost state and observe unchanged executable
//! behaviour).

/// Specification-only data stored next to executable state.
///
/// Freely clonable, like Verus `Ghost<T>`: duplicating a mathematical value
/// is always sound.
///
/// # Examples
///
/// ```
/// use atmo_spec::{Ghost, Map};
///
/// let abstract_pt: Ghost<Map<usize, usize>> = Ghost::new(Map::empty());
/// let copy = abstract_pt.clone();
/// assert_eq!(*copy, *abstract_pt);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Ghost<T>(T);

impl<T> Ghost<T> {
    /// Wraps a specification value.
    pub fn new(value: T) -> Self {
        Ghost(value)
    }

    /// Returns the specification value by reference (Verus `@`).
    pub fn view(&self) -> &T {
        &self.0
    }

    /// Replaces the specification value.
    ///
    /// Ghost state may be updated freely by proof code; it never influences
    /// executable behaviour.
    pub fn assign(&mut self, value: T) {
        self.0 = value;
    }

    /// Unwraps the specification value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for Ghost<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for Ghost<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Linear proof data: obeys full ownership, cannot be duplicated.
///
/// The container for permissions ([`crate::PointsTo`], [`crate::PermMap`]).
/// Deliberately **not** `Clone` — duplicating a permission would let two
/// owners alias the same memory, which is exactly what the linear type
/// discipline rules out.
#[derive(Debug, PartialEq, Eq, Default)]
pub struct Tracked<T>(T);

impl<T> Tracked<T> {
    /// Wraps a linear proof value.
    pub fn new(value: T) -> Self {
        Tracked(value)
    }

    /// Immutably borrows the proof value (Verus `tracked_borrow`).
    // The name deliberately mirrors Verus' tracked API, not std::borrow.
    #[allow(clippy::should_implement_trait)]
    pub fn borrow(&self) -> &T {
        &self.0
    }

    /// Mutably borrows the proof value.
    ///
    /// Verus itself has limited `&mut` support and routes mutation through
    /// trusted setter functions (§5, item 7 of the paper); this method is
    /// the equivalent trusted primitive.
    // The name deliberately mirrors Verus' tracked API.
    #[allow(clippy::should_implement_trait)]
    pub fn borrow_mut(&mut self) -> &mut T {
        &mut self.0
    }

    /// Consumes the wrapper, yielding the proof value.
    pub fn get(self) -> T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_is_clonable_and_transparent() {
        let g = Ghost::new(41);
        let h = g.clone();
        assert_eq!(*g + 1, 42);
        assert_eq!(h, g);
    }

    #[test]
    fn ghost_assign_updates() {
        let mut g = Ghost::new(1);
        g.assign(2);
        assert_eq!(*g.view(), 2);
        assert_eq!(g.into_inner(), 2);
    }

    #[test]
    fn tracked_moves_linearly() {
        let t = Tracked::new(String::from("perm"));
        // Borrow, then consume; the borrow checker forbids using `t` after.
        assert_eq!(t.borrow(), "perm");
        let inner = t.get();
        assert_eq!(inner, "perm");
    }

    #[test]
    fn tracked_borrow_mut_mutates() {
        let mut t = Tracked::new(7);
        *t.borrow_mut() = 8;
        assert_eq!(*t.borrow(), 8);
    }
}
