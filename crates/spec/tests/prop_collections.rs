//! Algebraic laws of the ghost collections.
//!
//! §5 of the paper lists ~700 lines of *trusted* axioms about sequences,
//! sets and maps that Verus lacks (e.g. "if we remove an element from a
//! unique sequence, the result sequence is still unique"). Here those
//! laws are tested against the executable collections with randomized
//! inputs instead of being trusted. Randomness comes from the
//! deterministic in-repo [`XorShift64Star`] generator.

use atmo_spec::{Map, Seq, Set, XorShift64Star};

const CASES: u64 = 64;

fn rng_for(test: u64, case: u64) -> XorShift64Star {
    XorShift64Star::new(0x5eed_3000 + test * 0x100 + case)
}

fn random_vec(rng: &mut XorShift64Star, max_len: usize, bound: u32) -> Vec<u32> {
    let len = rng.below(max_len + 1);
    (0..len).map(|_| rng.next_u32() % bound).collect()
}

// ----- Seq laws -----------------------------------------------------------

#[test]
fn seq_push_then_last() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let v = random_vec(&mut rng, 19, u32::MAX);
        let x = rng.next_u32();
        let s = Seq::from_slice(&v).push(x);
        assert_eq!(*s.last(), x);
        assert_eq!(s.len(), v.len() + 1);
        assert_eq!(s.drop_last(), Seq::from_slice(&v));
    }
}

#[test]
fn seq_subrange_composes() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let v = random_vec(&mut rng, 29, u32::MAX);
        let (a, b) = (rng.below(10).min(v.len()), rng.below(10).min(v.len()));
        let s = Seq::from_slice(&v);
        let (lo, hi) = (a.min(b), a.max(b));
        let sub = s.subrange(lo, hi);
        assert_eq!(sub.len(), hi - lo);
        for i in 0..sub.len() {
            assert_eq!(sub[i], v[lo + i]);
        }
    }
}

#[test]
fn unique_seq_remove_stays_unique() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        // The §5 axiom, as a test: build a duplicate-free sequence, remove
        // any element, uniqueness is preserved.
        let set: std::collections::BTreeSet<u32> =
            random_vec(&mut rng, 19, u32::MAX).into_iter().collect();
        let items: Vec<u32> = set.into_iter().collect();
        let s = Seq::from_slice(&items);
        assert!(s.no_duplicates());
        if !items.is_empty() {
            let victim = *rng.choose(&items);
            let removed = s.remove_first(&victim);
            assert!(removed.no_duplicates());
            assert_eq!(removed.len(), items.len() - 1);
            assert!(!removed.contains(&victim));
        }
    }
}

#[test]
fn seq_add_is_associative() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let a = random_vec(&mut rng, 9, u32::MAX);
        let b = random_vec(&mut rng, 9, u32::MAX);
        let c = random_vec(&mut rng, 9, u32::MAX);
        let (sa, sb, sc) = (
            Seq::from_slice(&a),
            Seq::from_slice(&b),
            Seq::from_slice(&c),
        );
        assert_eq!(sa.add(&sb).add(&sc), sa.add(&sb.add(&sc)));
    }
}

#[test]
fn seq_to_set_contains_exactly_elements() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let v = random_vec(&mut rng, 24, 50);
        let s = Seq::from_slice(&v).to_set();
        for x in &v {
            assert!(s.contains(x));
        }
        for x in s.iter() {
            assert!(v.contains(x));
        }
    }
}

// ----- Set laws -----------------------------------------------------------

#[test]
fn set_union_is_commutative_and_idempotent() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let a = random_vec(&mut rng, 19, 60);
        let b = random_vec(&mut rng, 19, 60);
        let (sa, sb) = (Set::from_slice(&a), Set::from_slice(&b));
        assert_eq!(sa.union(&sb), sb.union(&sa));
        assert_eq!(sa.union(&sa), sa.clone());
        assert!(sa.subset_of(&sa.union(&sb)));
    }
}

#[test]
fn set_demorgan() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        // U \ (A ∪ B) == (U \ A) ∩ (U \ B)
        let a = random_vec(&mut rng, 14, 40);
        let b = random_vec(&mut rng, 14, 40);
        let u = random_vec(&mut rng, 29, 40);
        let (sa, sb, su) = (
            Set::from_slice(&a),
            Set::from_slice(&b),
            Set::from_slice(&u),
        );
        assert_eq!(
            su.difference(&sa.union(&sb)),
            su.difference(&sa).intersect(&su.difference(&sb))
        );
    }
}

#[test]
fn set_disjoint_iff_empty_intersection() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let a = random_vec(&mut rng, 14, 30);
        let b = random_vec(&mut rng, 14, 30);
        let (sa, sb) = (Set::from_slice(&a), Set::from_slice(&b));
        assert_eq!(sa.disjoint(&sb), sa.intersect(&sb).is_empty());
    }
}

#[test]
fn set_insert_remove_inverse() {
    for case in 0..CASES {
        let mut rng = rng_for(9, case);
        let a = random_vec(&mut rng, 14, 30);
        let x = rng.next_u32() % 30;
        let s = Set::from_slice(&a);
        if !s.contains(&x) {
            assert_eq!(s.insert(x).remove(&x), s);
        } else {
            assert_eq!(s.remove(&x).insert(x), s);
        }
    }
}

// ----- Map laws -----------------------------------------------------------

fn random_pairs(rng: &mut XorShift64Star, max_len: usize, key_bound: u32) -> Vec<(u32, u32)> {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| (rng.next_u32() % key_bound, rng.next_u32()))
        .collect()
}

#[test]
fn map_insert_shadows() {
    for case in 0..CASES {
        let mut rng = rng_for(10, case);
        let pairs = random_pairs(&mut rng, 14, 20);
        let (k, v1, v2) = (rng.next_u32() % 20, rng.next_u32(), rng.next_u32());
        let m: Map<u32, u32> = pairs.into_iter().collect();
        let m2 = m.insert(k, v1).insert(k, v2);
        assert_eq!(m2.index(&k), Some(&v2));
        assert_eq!(m2.len(), m.insert(k, v2).len());
    }
}

#[test]
fn map_dom_tracks_insert_remove() {
    for case in 0..CASES {
        let mut rng = rng_for(11, case);
        let pairs = random_pairs(&mut rng, 14, 20);
        let k = rng.next_u32() % 20;
        let m: Map<u32, u32> = pairs.into_iter().collect();
        assert_eq!(m.insert(k, 1).dom(), m.dom().insert(k));
        assert_eq!(m.remove(&k).dom(), m.dom().remove(&k));
    }
}

#[test]
fn map_union_prefer_right_really_prefers_right() {
    for case in 0..CASES {
        let mut rng = rng_for(12, case);
        let a = random_pairs(&mut rng, 9, 12);
        let b = random_pairs(&mut rng, 9, 12);
        let ma: Map<u32, u32> = a.into_iter().collect();
        let mb: Map<u32, u32> = b.into_iter().collect();
        let u = ma.union_prefer_right(&mb);
        for (k, v) in mb.iter() {
            assert_eq!(u.index(k), Some(v));
        }
        for (k, v) in ma.iter() {
            if !mb.contains_key(k) {
                assert_eq!(u.index(k), Some(v));
            }
        }
        assert_eq!(u.dom(), ma.dom().union(&mb.dom()));
    }
}

#[test]
fn map_restrict_then_submap() {
    for case in 0..CASES {
        let mut rng = rng_for(13, case);
        let pairs = random_pairs(&mut rng, 14, 20);
        let m: Map<u32, u32> = pairs.into_iter().collect();
        let r = m.restrict(|k| k % 2 == 0);
        assert!(r.submap_of(&m));
        assert!(r.agrees(&m));
        for k in r.keys() {
            assert!(k % 2 == 0);
        }
    }
}
