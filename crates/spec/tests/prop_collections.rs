//! Algebraic laws of the ghost collections.
//!
//! §5 of the paper lists ~700 lines of *trusted* axioms about sequences,
//! sets and maps that Verus lacks (e.g. "if we remove an element from a
//! unique sequence, the result sequence is still unique"). Here those
//! laws are property-tested against the executable collections instead of
//! being trusted.

use atmo_spec::{Map, Seq, Set};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- Seq laws -------------------------------------------------------

    #[test]
    fn seq_push_then_last(v in proptest::collection::vec(any::<u32>(), 0..20), x in any::<u32>()) {
        let s = Seq::from_slice(&v).push(x);
        prop_assert_eq!(*s.last(), x);
        prop_assert_eq!(s.len(), v.len() + 1);
        prop_assert_eq!(s.drop_last(), Seq::from_slice(&v));
    }

    #[test]
    fn seq_subrange_composes(v in proptest::collection::vec(any::<u32>(), 0..30),
                             a in 0usize..10, b in 0usize..10) {
        let s = Seq::from_slice(&v);
        let (a, b) = (a.min(v.len()), b.min(v.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let sub = s.subrange(lo, hi);
        prop_assert_eq!(sub.len(), hi - lo);
        for i in 0..sub.len() {
            prop_assert_eq!(sub[i], v[lo + i]);
        }
    }

    #[test]
    fn unique_seq_remove_stays_unique(v in proptest::collection::btree_set(any::<u32>(), 0..20),
                                      pick in any::<proptest::sample::Index>()) {
        // The §5 axiom, as a test: build a duplicate-free sequence, remove
        // any element, uniqueness is preserved.
        let items: Vec<u32> = v.into_iter().collect();
        let s = Seq::from_slice(&items);
        prop_assert!(s.no_duplicates());
        if !items.is_empty() {
            let victim = items[pick.index(items.len())];
            let removed = s.remove_first(&victim);
            prop_assert!(removed.no_duplicates());
            prop_assert_eq!(removed.len(), items.len() - 1);
            prop_assert!(!removed.contains(&victim));
        }
    }

    #[test]
    fn seq_add_is_associative(a in proptest::collection::vec(any::<u32>(), 0..10),
                              b in proptest::collection::vec(any::<u32>(), 0..10),
                              c in proptest::collection::vec(any::<u32>(), 0..10)) {
        let (sa, sb, sc) = (Seq::from_slice(&a), Seq::from_slice(&b), Seq::from_slice(&c));
        prop_assert_eq!(sa.add(&sb).add(&sc), sa.add(&sb.add(&sc)));
    }

    #[test]
    fn seq_to_set_contains_exactly_elements(v in proptest::collection::vec(0u32..50, 0..25)) {
        let s = Seq::from_slice(&v).to_set();
        for x in &v {
            prop_assert!(s.contains(x));
        }
        for x in s.iter() {
            prop_assert!(v.contains(x));
        }
    }

    // ----- Set laws -------------------------------------------------------

    #[test]
    fn set_union_is_commutative_and_idempotent(a in proptest::collection::vec(0u32..60, 0..20),
                                               b in proptest::collection::vec(0u32..60, 0..20)) {
        let (sa, sb) = (Set::from_slice(&a), Set::from_slice(&b));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sa), sa.clone());
        prop_assert!(sa.subset_of(&sa.union(&sb)));
    }

    #[test]
    fn set_demorgan(a in proptest::collection::vec(0u32..40, 0..15),
                    b in proptest::collection::vec(0u32..40, 0..15),
                    u in proptest::collection::vec(0u32..40, 0..30)) {
        // U \ (A ∪ B) == (U \ A) ∩ (U \ B)
        let (sa, sb, su) = (Set::from_slice(&a), Set::from_slice(&b), Set::from_slice(&u));
        prop_assert_eq!(
            su.difference(&sa.union(&sb)),
            su.difference(&sa).intersect(&su.difference(&sb))
        );
    }

    #[test]
    fn set_disjoint_iff_empty_intersection(a in proptest::collection::vec(0u32..30, 0..15),
                                           b in proptest::collection::vec(0u32..30, 0..15)) {
        let (sa, sb) = (Set::from_slice(&a), Set::from_slice(&b));
        prop_assert_eq!(sa.disjoint(&sb), sa.intersect(&sb).is_empty());
    }

    #[test]
    fn set_insert_remove_inverse(a in proptest::collection::vec(0u32..30, 0..15), x in 0u32..30) {
        let s = Set::from_slice(&a);
        if !s.contains(&x) {
            prop_assert_eq!(s.insert(x).remove(&x), s);
        } else {
            prop_assert_eq!(s.remove(&x).insert(x), s);
        }
    }

    // ----- Map laws -------------------------------------------------------

    #[test]
    fn map_insert_shadows(pairs in proptest::collection::vec((0u32..20, any::<u32>()), 0..15),
                          k in 0u32..20, v1 in any::<u32>(), v2 in any::<u32>()) {
        let m: Map<u32, u32> = pairs.into_iter().collect();
        let m2 = m.insert(k, v1).insert(k, v2);
        prop_assert_eq!(m2.index(&k), Some(&v2));
        prop_assert_eq!(m2.len(), m.insert(k, v2).len());
    }

    #[test]
    fn map_dom_tracks_insert_remove(pairs in proptest::collection::vec((0u32..20, any::<u32>()), 0..15),
                                    k in 0u32..20) {
        let m: Map<u32, u32> = pairs.into_iter().collect();
        prop_assert_eq!(m.insert(k, 1).dom(), m.dom().insert(k));
        prop_assert_eq!(m.remove(&k).dom(), m.dom().remove(&k));
    }

    #[test]
    fn map_union_prefer_right_really_prefers_right(
        a in proptest::collection::vec((0u32..12, any::<u32>()), 0..10),
        b in proptest::collection::vec((0u32..12, any::<u32>()), 0..10)
    ) {
        let ma: Map<u32, u32> = a.into_iter().collect();
        let mb: Map<u32, u32> = b.into_iter().collect();
        let u = ma.union_prefer_right(&mb);
        for (k, v) in mb.iter() {
            prop_assert_eq!(u.index(k), Some(v));
        }
        for (k, v) in ma.iter() {
            if !mb.contains_key(k) {
                prop_assert_eq!(u.index(k), Some(v));
            }
        }
        prop_assert_eq!(u.dom(), ma.dom().union(&mb.dom()));
    }

    #[test]
    fn map_restrict_then_submap(pairs in proptest::collection::vec((0u32..20, any::<u32>()), 0..15)) {
        let m: Map<u32, u32> = pairs.into_iter().collect();
        let r = m.restrict(|k| k % 2 == 0);
        prop_assert!(r.submap_of(&m));
        prop_assert!(r.agrees(&m));
        for k in r.keys() {
            prop_assert!(k % 2 == 0);
        }
    }
}
