//! The page allocator: explicit, specification-visible memory management.
//!
//! "Establishing leak freedom and cross-cutting properties of the memory
//! subsystem requires visibility of the state of the memory allocator. ...
//! We expose the internal state of the allocator as sets of free,
//! allocated, merged, and mapped pages" (§4.2). This module implements the
//! allocator and those abstract views.
//!
//! * Kernel objects allocate 4 KiB pages ([`PageAllocator::alloc_page_4k`],
//!   page → `Allocated`); the caller receives the page and its linear
//!   [`PagePermission`] exactly as in Listing 4.
//! * User mappings allocate `Mapped` frames with a reference count
//!   ([`PageAllocator::alloc_mapped`]), shared-memory grants increment it,
//!   unmapping decrements it and frees at zero.
//! * Superpages are formed by scanning the page array for an aligned run
//!   of free blocks and unlinking each constituent in constant time
//!   ([`PageAllocator::merge_2m`], [`PageAllocator::merge_1g`]), and split
//!   back on demand.

use atmo_spec::harness::{check, check_all, Invariant, VerifResult};
use atmo_spec::Set;
use atmo_trace::{AuditDelta, KernelEvent, TraceHandle, TraceShare};

use atmo_hw::addr::PAGE_SIZE_4K;
use atmo_hw::boot::BootInfo;

use crate::freelist::{FreeList, NodeStore};
use crate::meta::{ListNode, PageMeta, PagePtr, PageSize, PageState};
use crate::perm::PagePermission;

/// Allocation failures visible to callers (and to system-call return
/// values: a container that exhausts its quota sees these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No free block of the requested size and none could be assembled.
    OutOfMemory,
}

/// The page metadata array (Linux-style `struct page` array).
#[derive(Debug)]
pub struct PageArray {
    base: PagePtr,
    pages: Vec<PageMeta>,
}

impl PageArray {
    fn index(&self, p: PagePtr) -> usize {
        assert!(
            p.is_multiple_of(PAGE_SIZE_4K),
            "unaligned page pointer {p:#x}"
        );
        assert!(p >= self.base, "page pointer {p:#x} below array base");
        let i = (p - self.base) / PAGE_SIZE_4K;
        assert!(i < self.pages.len(), "page pointer {p:#x} beyond array end");
        i
    }

    /// State of frame `p`.
    pub fn state(&self, p: PagePtr) -> PageState {
        self.pages[self.index(p)].state
    }

    fn set_state(&mut self, p: PagePtr, s: PageState) {
        let i = self.index(p);
        self.pages[i].state = s;
    }

    /// Frame address of array slot `i`.
    fn frame_at(&self, i: usize) -> PagePtr {
        self.base + i * PAGE_SIZE_4K
    }
}

impl NodeStore for PageArray {
    fn node(&self, p: PagePtr) -> &ListNode {
        let i = self.index(p);
        &self.pages[i].node
    }
    fn node_mut(&mut self, p: PagePtr) -> &mut ListNode {
        let i = self.index(p);
        &mut self.pages[i].node
    }
}

/// The page allocator.
#[derive(Debug)]
pub struct PageAllocator {
    array: PageArray,
    free_4k: FreeList,
    free_2m: FreeList,
    free_1g: FreeList,
    /// Allocation-event sink (always-equal share: tracing does not change
    /// allocator state).
    trace: TraceShare,
}

impl PageAllocator {
    /// Initializes the allocator from the boot memory map: every usable
    /// frame starts `Free(4K)` on the 4 KiB free list (lowest address at
    /// the head).
    pub fn new(boot: &BootInfo) -> Self {
        let base = boot.first_usable_frame().as_usize();
        let nframes = boot.usable_frames();
        let mut array = PageArray {
            base,
            pages: vec![
                PageMeta {
                    state: PageState::Free(PageSize::Size4K),
                    node: ListNode::default(),
                };
                nframes
            ],
        };
        let mut free_4k = FreeList::new();
        for i in (0..nframes).rev() {
            let p = array.frame_at(i);
            free_4k.push_front(&mut array, p);
        }
        PageAllocator {
            array,
            free_4k,
            free_2m: FreeList::new(),
            free_1g: FreeList::new(),
            trace: TraceShare::detached(),
        }
    }

    /// Routes page alloc/free events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// Base address of the managed region.
    pub fn base(&self) -> PagePtr {
        self.array.base
    }

    /// Number of managed 4 KiB frames.
    pub fn nframes(&self) -> usize {
        self.array.pages.len()
    }

    /// State of frame `p` (abstract-spec accessor).
    pub fn page_state(&self, p: PagePtr) -> PageState {
        self.array.state(p)
    }

    /// `true` when `p` heads a free block of any size (the
    /// `page_is_free()` predicate of Listing 1).
    pub fn page_is_free(&self, p: PagePtr) -> bool {
        matches!(self.array.state(p), PageState::Free(_))
    }

    // ----- allocation of kernel-object pages ---------------------------

    /// Allocates a 4 KiB page for a kernel object (Listing 4's
    /// `alloc_page_4k()`): pops the free list, transitions the frame to
    /// `Allocated`, and returns the linear permission.
    ///
    /// Splits a 2 MiB (and transitively a 1 GiB) block when the 4 KiB list
    /// is empty.
    pub fn alloc_page_4k(&mut self) -> Result<(PagePtr, PagePermission), AllocError> {
        if self.free_4k.is_empty() {
            self.replenish_4k()?;
        }
        let p = self
            .free_4k
            .pop_front(&mut self.array)
            .ok_or(AllocError::OutOfMemory)?;
        debug_assert_eq!(self.array.state(p), PageState::Free(PageSize::Size4K));
        self.array.set_state(p, PageState::Allocated);
        self.trace.emit(KernelEvent::PageAlloc {
            frames: 1,
            closure_delta: 1,
        });
        self.trace.audit(AuditDelta::Allocated(p));
        Ok((p, PagePermission::new(p, PageSize::Size4K)))
    }

    /// Frees a kernel-object page, consuming its permission.
    ///
    /// # Panics
    ///
    /// Panics (verification failure) when the permission is not a 4 KiB
    /// `Allocated` page of this allocator.
    pub fn free_page_4k(&mut self, perm: PagePermission) {
        assert_eq!(perm.size(), PageSize::Size4K);
        let p = perm.addr();
        assert_eq!(
            self.array.state(p),
            PageState::Allocated,
            "free of a page that is not allocated"
        );
        self.array.set_state(p, PageState::Free(PageSize::Size4K));
        self.free_4k.push_front(&mut self.array, p);
        self.trace.emit(KernelEvent::PageFree {
            frames: 1,
            closure_delta: -1,
        });
        self.trace.audit(AuditDelta::Freed(p));
    }

    // ----- allocation of user-mapped frames -----------------------------

    /// Allocates a block for a user mapping: the head frame transitions to
    /// `Mapped { refcnt: 1 }`. 2 MiB / 1 GiB requests assemble superpages
    /// on demand.
    pub fn alloc_mapped(&mut self, size: PageSize) -> Result<PagePtr, AllocError> {
        let p = match size {
            PageSize::Size4K => {
                if self.free_4k.is_empty() {
                    self.replenish_4k()?;
                }
                self.free_4k
                    .pop_front(&mut self.array)
                    .ok_or(AllocError::OutOfMemory)?
            }
            PageSize::Size2M => {
                if self.free_2m.is_empty() && !self.merge_2m() {
                    return Err(AllocError::OutOfMemory);
                }
                self.free_2m
                    .pop_front(&mut self.array)
                    .ok_or(AllocError::OutOfMemory)?
            }
            PageSize::Size1G => {
                if self.free_1g.is_empty() && !self.merge_1g() {
                    return Err(AllocError::OutOfMemory);
                }
                self.free_1g
                    .pop_front(&mut self.array)
                    .ok_or(AllocError::OutOfMemory)?
            }
        };
        debug_assert_eq!(self.array.state(p), PageState::Free(size));
        self.array
            .set_state(p, PageState::Mapped { size, refcnt: 1 });
        self.trace.emit(KernelEvent::PageAlloc {
            frames: size.frames() as u64,
            closure_delta: 1,
        });
        self.trace.audit(AuditDelta::MapInsert(p));
        Ok(p)
    }

    /// Allocates `n` individually mapped 4 KiB frames in one call (the
    /// packet-buffer pool's backing store). All-or-nothing: on
    /// exhaustion every frame allocated so far is returned and the whole
    /// call fails, so a partially built pool never leaks.
    pub fn alloc_mapped_batch(&mut self, n: usize) -> Result<Vec<PagePtr>, AllocError> {
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            match self.alloc_mapped(PageSize::Size4K) {
                Ok(p) => frames.push(p),
                Err(e) => {
                    for p in frames {
                        self.dec_map_ref(p);
                    }
                    return Err(e);
                }
            }
        }
        Ok(frames)
    }

    /// Adds one mapping reference to block `p` (shared memory established
    /// through an endpoint grant).
    ///
    /// # Panics
    ///
    /// Panics when `p` is not a mapped block head.
    pub fn inc_map_ref(&mut self, p: PagePtr) {
        match self.array.state(p) {
            PageState::Mapped { size, refcnt } => {
                self.array.set_state(
                    p,
                    PageState::Mapped {
                        size,
                        refcnt: refcnt + 1,
                    },
                );
            }
            s => panic!("inc_map_ref on non-mapped page {p:#x} ({s:?})"),
        }
    }

    /// Drops one mapping reference; frees the block at zero. Returns
    /// `true` when the block became free.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not a mapped block head.
    pub fn dec_map_ref(&mut self, p: PagePtr) -> bool {
        match self.array.state(p) {
            PageState::Mapped { size, refcnt } => {
                if refcnt > 1 {
                    self.array.set_state(
                        p,
                        PageState::Mapped {
                            size,
                            refcnt: refcnt - 1,
                        },
                    );
                    false
                } else {
                    self.array.set_state(p, PageState::Free(size));
                    match size {
                        PageSize::Size4K => self.free_4k.push_front(&mut self.array, p),
                        PageSize::Size2M => self.free_2m.push_front(&mut self.array, p),
                        PageSize::Size1G => self.free_1g.push_front(&mut self.array, p),
                    }
                    self.trace.emit(KernelEvent::PageFree {
                        frames: size.frames() as u64,
                        closure_delta: -1,
                    });
                    self.trace.audit(AuditDelta::MapRemove(p));
                    true
                }
            }
            s => panic!("dec_map_ref on non-mapped page {p:#x} ({s:?})"),
        }
    }

    /// Current mapping reference count of block head `p` (0 if not mapped).
    pub fn map_refcnt(&self, p: PagePtr) -> usize {
        match self.array.state(p) {
            PageState::Mapped { refcnt, .. } => refcnt,
            _ => 0,
        }
    }

    // ----- superpage merge / split ---------------------------------------

    /// Ensures the 4 KiB list is non-empty by splitting a 2 MiB block
    /// (assembling one from a 1 GiB block if necessary).
    fn replenish_4k(&mut self) -> Result<(), AllocError> {
        if self.free_2m.is_empty() {
            if let Some(head) = self.free_1g.head() {
                self.split_1g(head);
            }
        }
        match self.free_2m.head() {
            Some(head) => {
                self.split_2m(head);
                Ok(())
            }
            None => Err(AllocError::OutOfMemory),
        }
    }

    /// Scans the page array for a 2 MiB-aligned run of 512 free 4 KiB
    /// frames, unlinks each from the 4 KiB list in O(1), and forms a free
    /// 2 MiB superpage. Returns `true` on success (§4.2).
    pub fn merge_2m(&mut self) -> bool {
        let per = PageSize::Size2M.frames();
        let mut i = 0;
        // Start at the first 2 MiB-aligned frame.
        while !self
            .array
            .frame_at(i)
            .is_multiple_of(PageSize::Size2M.bytes())
        {
            i += 1;
            if i >= self.array.pages.len() {
                return false;
            }
        }
        while i + per <= self.array.pages.len() {
            let run_ok = (i..i + per)
                .all(|j| self.array.pages[j].state == PageState::Free(PageSize::Size4K));
            if run_ok {
                let head = self.array.frame_at(i);
                for j in i..i + per {
                    let p = self.array.frame_at(j);
                    self.free_4k.unlink(&mut self.array, p);
                    self.array.set_state(
                        p,
                        if j == i {
                            PageState::Free(PageSize::Size2M)
                        } else {
                            PageState::Merged { head }
                        },
                    );
                }
                self.free_2m.push_front(&mut self.array, head);
                return true;
            }
            i += per;
        }
        false
    }

    /// Splits the free 2 MiB block at `head` back into 512 free 4 KiB
    /// frames.
    ///
    /// # Panics
    ///
    /// Panics when `head` is not a free 2 MiB block.
    pub fn split_2m(&mut self, head: PagePtr) {
        assert_eq!(
            self.array.state(head),
            PageState::Free(PageSize::Size2M),
            "split_2m of non-free-2M block"
        );
        self.free_2m.unlink(&mut self.array, head);
        for k in 0..PageSize::Size2M.frames() {
            let p = head + k * PAGE_SIZE_4K;
            self.array.set_state(p, PageState::Free(PageSize::Size4K));
            self.free_4k.push_front(&mut self.array, p);
        }
    }

    /// Hands out a contiguous 2 MiB run assembled *from the 4 KiB
    /// freelist* for superpage promotion, transitioning the head straight
    /// to `Mapped { refcnt: 1 }`. Returns `None` without disturbing the
    /// free lists when memory is too fragmented for an aligned run — the
    /// caller falls back to batched 4 KiB fills.
    ///
    /// Unlike [`PageAllocator::alloc_mapped`]`(Size2M)` this never takes a
    /// ready-made free 2 MiB block: every constituent frame comes out of
    /// the 4 KiB freelist, so the abstract pre-state sees each of the 512
    /// frames as a free 4 KiB page (the `page_is_free` clause of the
    /// batched `Mmap` spec), and a rollback (`dec_map_ref` + `split_2m`)
    /// restores the exact pre-state free set.
    pub fn try_alloc_contiguous_2m(&mut self) -> Option<PagePtr> {
        if !self.merge_2m() {
            return None;
        }
        // `merge_2m` pushed the newly assembled block at the list head.
        let p = self.free_2m.pop_front(&mut self.array)?;
        debug_assert_eq!(self.array.state(p), PageState::Free(PageSize::Size2M));
        self.array.set_state(
            p,
            PageState::Mapped {
                size: PageSize::Size2M,
                refcnt: 1,
            },
        );
        self.trace.emit(KernelEvent::PageAlloc {
            frames: PageSize::Size2M.frames() as u64,
            closure_delta: 1,
        });
        self.trace.audit(AuditDelta::MapInsert(p));
        Some(p)
    }

    /// Splits the *mapped* 2 MiB block at `head` into 512 individually
    /// mapped 4 KiB pages (superpage demotion). Requires a reference count
    /// of 1: page grants are 4 KiB-only, so a promoted superpage is never
    /// shared. No frames change hands and no alloc/free events are
    /// emitted — this is a pure representation change, audited by `wf`.
    ///
    /// # Panics
    ///
    /// Panics when `head` is not a mapped 2 MiB block with `refcnt == 1`.
    pub fn split_mapped_2m(&mut self, head: PagePtr) {
        match self.array.state(head) {
            PageState::Mapped {
                size: PageSize::Size2M,
                refcnt: 1,
            } => {}
            s => panic!("split_mapped_2m on {head:#x} ({s:?})"),
        }
        for k in 0..PageSize::Size2M.frames() {
            let p = head + k * PAGE_SIZE_4K;
            if k > 0 {
                debug_assert_eq!(self.array.state(p), PageState::Merged { head });
            }
            self.array.set_state(
                p,
                PageState::Mapped {
                    size: PageSize::Size4K,
                    refcnt: 1,
                },
            );
            if k > 0 {
                // The head stays a mapped head; every former constituent
                // becomes a new mapped head in its own right.
                self.trace.audit(AuditDelta::MapInsert(p));
            }
        }
    }

    /// Forms a free 1 GiB superpage from a 1 GiB-aligned run of 512 free
    /// 2 MiB blocks, merging 2 MiB blocks first if needed. Returns `true`
    /// on success.
    pub fn merge_1g(&mut self) -> bool {
        // Greedily merge as many 2 MiB blocks as possible first.
        while self.merge_2m() {}
        let per_2m = PageSize::Size2M.frames();
        let blocks = PageSize::Size1G.bytes() / PageSize::Size2M.bytes();
        let mut i = 0;
        while !self
            .array
            .frame_at(i)
            .is_multiple_of(PageSize::Size1G.bytes())
        {
            i += 1;
            if i >= self.array.pages.len() {
                return false;
            }
        }
        while i + blocks * per_2m <= self.array.pages.len() {
            let head = self.array.frame_at(i);
            let run_ok = (0..blocks).all(|b| {
                self.array.state(head + b * PageSize::Size2M.bytes())
                    == PageState::Free(PageSize::Size2M)
            });
            if run_ok {
                for b in 0..blocks {
                    let p2m = head + b * PageSize::Size2M.bytes();
                    self.free_2m.unlink(&mut self.array, p2m);
                    // Head of the 1 GiB block keeps a single Free state;
                    // every other frame (including former 2 MiB heads)
                    // becomes a constituent.
                    for k in 0..per_2m {
                        let p = p2m + k * PAGE_SIZE_4K;
                        self.array.set_state(
                            p,
                            if p == head {
                                PageState::Free(PageSize::Size1G)
                            } else {
                                PageState::Merged { head }
                            },
                        );
                    }
                }
                self.free_1g.push_front(&mut self.array, head);
                return true;
            }
            i += blocks * per_2m;
        }
        false
    }

    /// Splits the free 1 GiB block at `head` into 512 free 2 MiB blocks.
    ///
    /// # Panics
    ///
    /// Panics when `head` is not a free 1 GiB block.
    pub fn split_1g(&mut self, head: PagePtr) {
        assert_eq!(
            self.array.state(head),
            PageState::Free(PageSize::Size1G),
            "split_1g of non-free-1G block"
        );
        self.free_1g.unlink(&mut self.array, head);
        let per_2m = PageSize::Size2M.frames();
        for b in 0..(PageSize::Size1G.bytes() / PageSize::Size2M.bytes()) {
            let p2m = head + b * PageSize::Size2M.bytes();
            for k in 0..per_2m {
                let p = p2m + k * PAGE_SIZE_4K;
                self.array.set_state(
                    p,
                    if k == 0 {
                        PageState::Free(PageSize::Size2M)
                    } else {
                        PageState::Merged { head: p2m }
                    },
                );
            }
            self.free_2m.push_front(&mut self.array, p2m);
        }
    }

    // ----- abstract views (the specification-visible allocator state) ----

    /// The set of free 4 KiB pages (`alloc.free_pages_4k()` in Listing 4).
    pub fn free_pages_4k(&self) -> Set<PagePtr> {
        self.free_4k.iter(&self.array).collect()
    }

    /// The set of free 2 MiB block heads.
    pub fn free_pages_2m(&self) -> Set<PagePtr> {
        self.free_2m.iter(&self.array).collect()
    }

    /// The set of free 1 GiB block heads.
    pub fn free_pages_1g(&self) -> Set<PagePtr> {
        self.free_1g.iter(&self.array).collect()
    }

    /// The set of pages allocated to kernel objects.
    pub fn allocated_pages(&self) -> Set<PagePtr> {
        self.scan(|s| matches!(s, PageState::Allocated))
    }

    /// The set of mapped block heads.
    pub fn mapped_pages(&self) -> Set<PagePtr> {
        self.scan(|s| matches!(s, PageState::Mapped { .. }))
    }

    /// The set of merged (constituent) frames.
    pub fn merged_pages(&self) -> Set<PagePtr> {
        self.scan(|s| matches!(s, PageState::Merged { .. }))
    }

    fn scan(&self, pred: impl Fn(PageState) -> bool) -> Set<PagePtr> {
        (0..self.array.pages.len())
            .filter(|&i| pred(self.array.pages[i].state))
            .map(|i| self.array.frame_at(i))
            .collect()
    }
}

impl Invariant for PageAllocator {
    /// The allocator's well-formedness invariant:
    ///
    /// 1. each free list is a coherent doubly-linked list;
    /// 2. list membership agrees exactly with `Free(size)` states;
    /// 3. every merged frame names a superpage head of the right state,
    ///    alignment and extent;
    /// 4. every superpage head's constituents are merged to it;
    /// 5. mapped blocks have `refcnt ≥ 1`;
    /// 6. the four states partition the managed frames (leak freedom at
    ///    the allocator level).
    fn wf(&self) -> VerifResult {
        check(
            self.free_4k.wf(&self.array),
            "page_alloc",
            "free_4k list corrupt",
        )?;
        check(
            self.free_2m.wf(&self.array),
            "page_alloc",
            "free_2m list corrupt",
        )?;
        check(
            self.free_1g.wf(&self.array),
            "page_alloc",
            "free_1g list corrupt",
        )?;

        let on_4k = self.free_pages_4k();
        let on_2m = self.free_pages_2m();
        let on_1g = self.free_pages_1g();

        let mut counts = [0usize; 5]; // free, merged, mapped, allocated, unavailable
        for i in 0..self.array.pages.len() {
            let p = self.array.frame_at(i);
            match self.array.pages[i].state {
                PageState::Free(size) => {
                    counts[0] += 1;
                    let (list, name) = match size {
                        PageSize::Size4K => (&on_4k, "4k"),
                        PageSize::Size2M => (&on_2m, "2m"),
                        PageSize::Size1G => (&on_1g, "1g"),
                    };
                    check(
                        list.contains(&p),
                        "page_alloc",
                        format!("free {name} page {p:#x} missing from its list"),
                    )?;
                    check(
                        p.is_multiple_of(size.bytes()),
                        "page_alloc",
                        format!("free block head {p:#x} misaligned for {size:?}"),
                    )?;
                    self.check_constituents(p, size)?;
                }
                PageState::Merged { head } => {
                    counts[1] += 1;
                    let head_state = self.array.state(head);
                    let ok = match head_state {
                        PageState::Free(s) | PageState::Mapped { size: s, .. } => {
                            s != PageSize::Size4K && head <= p && p < head + s.bytes()
                        }
                        _ => false,
                    };
                    check(
                        ok,
                        "page_alloc",
                        format!("merged frame {p:#x} has invalid head {head:#x} ({head_state:?})"),
                    )?;
                }
                PageState::Mapped { size, refcnt } => {
                    counts[2] += 1;
                    check(
                        refcnt >= 1,
                        "page_alloc",
                        format!("mapped block {p:#x} with zero refcnt"),
                    )?;
                    check(
                        p.is_multiple_of(size.bytes()),
                        "page_alloc",
                        format!("mapped block head {p:#x} misaligned for {size:?}"),
                    )?;
                    self.check_constituents(p, size)?;
                }
                PageState::Allocated => counts[3] += 1,
                PageState::Unavailable => counts[4] += 1,
            }
        }

        // List membership is exact: no stale entries.
        check_all([
            check(
                on_4k.len() + on_2m.len() + on_1g.len()
                    == self.scan(|s| matches!(s, PageState::Free(_))).len(),
                "page_alloc",
                "free lists contain non-free pages",
            ),
            check(
                counts.iter().sum::<usize>() == self.array.pages.len(),
                "page_alloc",
                "page states do not partition the frame array",
            ),
        ])
    }
}

impl PageAllocator {
    /// Checks that all non-head frames of the block at `head` are merged
    /// to it.
    fn check_constituents(&self, head: PagePtr, size: PageSize) -> VerifResult {
        if size == PageSize::Size4K {
            return Ok(());
        }
        for k in 1..size.frames() {
            let p = head + k * PAGE_SIZE_4K;
            check(
                self.array.state(p) == PageState::Merged { head },
                "page_alloc",
                format!("constituent {p:#x} of block {head:#x} not merged to it"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8 MiB of usable RAM: enough for two 2 MiB merges plus slack.
    fn small_alloc() -> PageAllocator {
        PageAllocator::new(&BootInfo::simulated(8, 1, ""))
    }

    #[test]
    fn fresh_allocator_is_wf_and_all_free() {
        let a = small_alloc();
        assert!(a.is_wf());
        assert_eq!(a.free_pages_4k().len(), 8 * 256);
        assert!(a.allocated_pages().is_empty());
        assert!(a.mapped_pages().is_empty());
        assert!(a.merged_pages().is_empty());
    }

    #[test]
    fn alloc_page_4k_postconditions() {
        // The Listing 4 contract: the page leaves the free set, enters the
        // allocated set, and was free before.
        let mut a = small_alloc();
        let free_before = a.free_pages_4k();
        let alloc_before = a.allocated_pages();
        let (p, perm) = a.alloc_page_4k().unwrap();
        assert!(free_before.contains(&p), "page was free before");
        assert_eq!(a.free_pages_4k(), free_before.remove(&p));
        assert_eq!(a.allocated_pages(), alloc_before.insert(p));
        assert_eq!(perm.addr(), p);
        assert!(a.is_wf());
    }

    #[test]
    fn free_restores_page() {
        let mut a = small_alloc();
        let free_before = a.free_pages_4k();
        let (p, perm) = a.alloc_page_4k().unwrap();
        a.free_page_4k(perm);
        assert_eq!(a.free_pages_4k(), free_before);
        assert!(a.page_is_free(p));
        assert!(a.is_wf());
    }

    #[test]
    fn exhaustion_returns_oom() {
        let mut a = PageAllocator::new(&BootInfo::simulated(1, 1, ""));
        let mut perms = Vec::new();
        for _ in 0..256 {
            perms.push(a.alloc_page_4k().unwrap());
        }
        assert_eq!(a.alloc_page_4k().unwrap_err(), AllocError::OutOfMemory);
        // Free one page; allocation succeeds again.
        let (_, perm) = perms.pop().unwrap();
        a.free_page_4k(perm);
        assert!(a.alloc_page_4k().is_ok());
    }

    #[test]
    fn merge_2m_forms_superpage() {
        let mut a = small_alloc();
        assert!(a.merge_2m());
        assert!(a.is_wf());
        assert_eq!(a.free_pages_2m().len(), 1);
        assert_eq!(a.merged_pages().len(), 511);
        let head = *a.free_pages_2m().choose().unwrap();
        assert_eq!(head % PageSize::Size2M.bytes(), 0);
        assert_eq!(a.page_state(head), PageState::Free(PageSize::Size2M));
    }

    #[test]
    fn merge_skips_runs_with_allocated_pages() {
        // 4 MiB = two 2 MiB-aligned runs. Allocate one page in each run;
        // no intact run remains, so merging must fail.
        let mut a = PageAllocator::new(&BootInfo::simulated(4, 1, ""));
        let base = a.base();
        let second_run = base + PageSize::Size2M.bytes();
        let mut hit_second = false;
        let mut perms = Vec::new();
        for _ in 0..513 {
            let (p, perm) = a.alloc_page_4k().unwrap();
            perms.push(perm);
            if p >= second_run {
                hit_second = true;
                break;
            }
        }
        assert!(hit_second, "allocation reached the second run");
        assert!(!a.merge_2m(), "no intact run remains");
        assert!(a.is_wf());
    }

    #[test]
    fn split_2m_restores_4k_pages() {
        let mut a = small_alloc();
        let total = a.free_pages_4k().len();
        assert!(a.merge_2m());
        let head = *a.free_pages_2m().choose().unwrap();
        a.split_2m(head);
        assert_eq!(a.free_pages_4k().len(), total);
        assert!(a.merged_pages().is_empty());
        assert!(a.is_wf());
    }

    #[test]
    fn alloc_mapped_2m_assembles_on_demand() {
        let mut a = small_alloc();
        let p = a.alloc_mapped(PageSize::Size2M).unwrap();
        assert_eq!(
            a.page_state(p),
            PageState::Mapped {
                size: PageSize::Size2M,
                refcnt: 1
            }
        );
        assert!(a.is_wf());
    }

    #[test]
    fn mapped_refcounting_frees_at_zero() {
        let mut a = small_alloc();
        let p = a.alloc_mapped(PageSize::Size4K).unwrap();
        a.inc_map_ref(p);
        assert_eq!(a.map_refcnt(p), 2);
        assert!(!a.dec_map_ref(p));
        assert!(a.dec_map_ref(p), "block frees when last reference drops");
        assert!(a.page_is_free(p));
        assert!(a.is_wf());
    }

    #[test]
    fn alloc_mapped_batch_is_all_or_nothing() {
        // 1 MiB = 256 frames. A 200-frame batch fits; the next 100-frame
        // batch must fail and roll back completely.
        let mut a = PageAllocator::new(&BootInfo::simulated(1, 1, ""));
        let frames = a.alloc_mapped_batch(200).unwrap();
        assert_eq!(frames.len(), 200);
        assert!(frames.iter().all(|&p| a.map_refcnt(p) == 1));
        assert!(a.is_wf());
        let free_before = a.free_pages_4k();
        assert_eq!(
            a.alloc_mapped_batch(100).unwrap_err(),
            AllocError::OutOfMemory
        );
        assert_eq!(
            a.free_pages_4k(),
            free_before,
            "failed batch must release its partial allocation"
        );
        assert!(a.is_wf());
        for p in frames {
            assert!(a.dec_map_ref(p));
        }
        assert!(a.is_wf());
    }

    #[test]
    fn merge_1g_requires_enough_memory() {
        // 8 MiB cannot form a 1 GiB block.
        let mut a = small_alloc();
        assert!(!a.merge_1g());
        assert!(a.is_wf());
    }

    #[test]
    fn alloc_4k_splits_superpage_when_needed() {
        let mut a = small_alloc();
        // Merge everything into 2 MiB blocks (8 MiB → 3 blocks + remainder
        // of the misaligned first MiBs; base is 2 MiB so runs are aligned).
        while a.merge_2m() {}
        if a.free_pages_4k().is_empty() {
            // All 4 KiB pages merged; next 4 KiB allocation must split.
            let (p, _perm) = a.alloc_page_4k().unwrap();
            assert_eq!(a.page_state(p), PageState::Allocated);
        }
        assert!(a.is_wf());
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn double_free_is_a_verification_failure() {
        let mut a = small_alloc();
        let (p, perm) = a.alloc_page_4k().unwrap();
        a.free_page_4k(perm);
        // Forge a second permission — the only way to even attempt a
        // double free, since the real permission was consumed.
        let forged = PagePermission::new(p, PageSize::Size4K);
        a.free_page_4k(forged);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_page_pointer_rejected() {
        let a = small_alloc();
        let _ = a.page_state(a.base() + 1);
    }
}

// `PagePermission::new` is `pub(crate)`; tests above may forge permissions
// deliberately to exercise verification failures.
