//! Intrusive doubly-linked free lists over the page array.
//!
//! The allocator keeps one list per size class (4 KiB / 2 MiB / 1 GiB,
//! §4.2). List nodes are *not* separately allocated: they live inside the
//! page metadata array ([`crate::meta::ListNode`]), and the `prev` reverse
//! pointer makes unlinking an arbitrary page O(1) — the operation superpage
//! merging depends on ("remove merged 4KB pages from the list of free 4KB
//! pages ... constant-time removal").
//!
//! This is exactly the kind of non-linear pointer structure the paper's
//! flat-permission design exists to verify: the structure is a web of raw
//! frame addresses; well-formedness ([`FreeList::wf`]) is checked as a
//! flat, global property of the page array rather than by recursive
//! reasoning.

use crate::meta::{ListNode, PagePtr};

/// Storage that resolves a page pointer to its embedded list node.
///
/// Implemented by the allocator's page array; test fixtures provide toy
/// stores.
pub trait NodeStore {
    /// Immutable access to the node embedded in page `p`.
    fn node(&self, p: PagePtr) -> &ListNode;
    /// Mutable access to the node embedded in page `p`.
    fn node_mut(&mut self, p: PagePtr) -> &mut ListNode;
}

/// A doubly-linked list threaded through a [`NodeStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FreeList {
    head: Option<PagePtr>,
    tail: Option<PagePtr>,
    len: usize,
}

impl FreeList {
    /// An empty list.
    pub const fn new() -> Self {
        FreeList {
            head: None,
            tail: None,
            len: 0,
        }
    }

    /// Number of pages on the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First page on the list, if any.
    pub fn head(&self) -> Option<PagePtr> {
        self.head
    }

    /// Pushes `p` at the front.
    ///
    /// The caller guarantees `p` is not already on any list (the allocator
    /// enforces this through page states; debug builds re-check).
    pub fn push_front(&mut self, store: &mut impl NodeStore, p: PagePtr) {
        // A page already on a list would have a live node or be the head;
        // this O(1) check catches double-insertion without an O(n) scan.
        debug_assert!(
            *store.node(p) == ListNode::default() && self.head != Some(p),
            "page {p:#x} appears to already be on a free list"
        );
        *store.node_mut(p) = ListNode {
            prev: None,
            next: self.head,
        };
        if let Some(old) = self.head {
            store.node_mut(old).prev = Some(p);
        } else {
            self.tail = Some(p);
        }
        self.head = Some(p);
        self.len += 1;
    }

    /// Pops the front page.
    pub fn pop_front(&mut self, store: &mut impl NodeStore) -> Option<PagePtr> {
        let p = self.head?;
        self.unlink(store, p);
        Some(p)
    }

    /// Unlinks an arbitrary page in O(1) using its stored `prev`/`next`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics when `p`'s node is not coherently linked
    /// into this list.
    pub fn unlink(&mut self, store: &mut impl NodeStore, p: PagePtr) {
        let node = *store.node(p);
        match node.prev {
            Some(prev) => {
                debug_assert_eq!(store.node(prev).next, Some(p), "prev/next mismatch");
                store.node_mut(prev).next = node.next;
            }
            None => {
                debug_assert_eq!(self.head, Some(p), "unlink of non-member head");
                self.head = node.next;
            }
        }
        match node.next {
            Some(next) => {
                debug_assert_eq!(store.node(next).prev, Some(p), "next/prev mismatch");
                store.node_mut(next).prev = node.prev;
            }
            None => {
                debug_assert_eq!(self.tail, Some(p), "unlink of non-member tail");
                self.tail = node.prev;
            }
        }
        *store.node_mut(p) = ListNode::default();
        self.len -= 1;
    }

    /// Iterates over the list front to back.
    pub fn iter<'a>(&self, store: &'a impl NodeStore) -> FreeListIter<'a, impl NodeStore> {
        FreeListIter {
            store,
            cur: self.head,
            remaining: self.len + 1,
        }
    }

    /// Checks structural well-formedness: forward traversal visits exactly
    /// `len` pages, terminates, reverse pointers are coherent, and the tail
    /// is the last visited page.
    pub fn wf(&self, store: &impl NodeStore) -> bool {
        let mut seen = 0usize;
        let mut prev: Option<PagePtr> = None;
        let mut cur = self.head;
        while let Some(p) = cur {
            if seen >= self.len {
                return false; // longer than len: cycle or count drift
            }
            if store.node(p).prev != prev {
                return false;
            }
            prev = Some(p);
            cur = store.node(p).next;
            seen += 1;
        }
        seen == self.len && self.tail == prev
    }
}

/// Iterator over a [`FreeList`].
pub struct FreeListIter<'a, S: NodeStore> {
    store: &'a S,
    cur: Option<PagePtr>,
    remaining: usize,
}

impl<'a, S: NodeStore> Iterator for FreeListIter<'a, S> {
    type Item = PagePtr;

    fn next(&mut self) -> Option<PagePtr> {
        if self.remaining == 0 {
            return None; // bounded: never loops forever on a corrupt list
        }
        self.remaining -= 1;
        let p = self.cur?;
        self.cur = self.store.node(p).next;
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(Default)]
    struct ToyStore {
        nodes: BTreeMap<PagePtr, ListNode>,
    }

    impl NodeStore for ToyStore {
        fn node(&self, p: PagePtr) -> &ListNode {
            self.nodes.get(&p).expect("unknown page")
        }
        fn node_mut(&mut self, p: PagePtr) -> &mut ListNode {
            self.nodes.entry(p).or_default()
        }
    }

    fn store_with(pages: &[PagePtr]) -> ToyStore {
        let mut s = ToyStore::default();
        for &p in pages {
            s.nodes.insert(p, ListNode::default());
        }
        s
    }

    #[test]
    fn push_pop_lifo() {
        let mut s = store_with(&[0x1000, 0x2000, 0x3000]);
        let mut l = FreeList::new();
        l.push_front(&mut s, 0x1000);
        l.push_front(&mut s, 0x2000);
        l.push_front(&mut s, 0x3000);
        assert_eq!(l.len(), 3);
        assert!(l.wf(&s));
        assert_eq!(l.pop_front(&mut s), Some(0x3000));
        assert_eq!(l.pop_front(&mut s), Some(0x2000));
        assert_eq!(l.pop_front(&mut s), Some(0x1000));
        assert_eq!(l.pop_front(&mut s), None);
        assert!(l.wf(&s));
    }

    #[test]
    fn unlink_middle_is_constant_time_and_coherent() {
        let mut s = store_with(&[1, 2, 3]);
        let mut l = FreeList::new();
        for p in [3, 2, 1] {
            l.push_front(&mut s, p);
        }
        // List: 1 -> 2 -> 3. Unlink the middle element directly.
        l.unlink(&mut s, 2);
        assert_eq!(l.len(), 2);
        assert!(l.wf(&s));
        assert_eq!(l.iter(&s).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn unlink_head_and_tail() {
        let mut s = store_with(&[1, 2, 3]);
        let mut l = FreeList::new();
        for p in [3, 2, 1] {
            l.push_front(&mut s, p);
        }
        l.unlink(&mut s, 1); // head
        assert_eq!(l.head(), Some(2));
        l.unlink(&mut s, 3); // tail
        assert!(l.wf(&s));
        assert_eq!(l.iter(&s).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn wf_detects_corrupt_reverse_pointer() {
        let mut s = store_with(&[1, 2]);
        let mut l = FreeList::new();
        l.push_front(&mut s, 2);
        l.push_front(&mut s, 1);
        // Corrupt the reverse pointer.
        s.node_mut(2).prev = None;
        assert!(!l.wf(&s));
    }

    #[test]
    fn wf_detects_cycle() {
        let mut s = store_with(&[1, 2]);
        let mut l = FreeList::new();
        l.push_front(&mut s, 2);
        l.push_front(&mut s, 1);
        // Introduce a cycle: 2 -> 1.
        s.node_mut(2).next = Some(1);
        assert!(!l.wf(&s));
    }

    #[test]
    fn iter_is_bounded_on_corrupt_list() {
        let mut s = store_with(&[1]);
        let mut l = FreeList::new();
        l.push_front(&mut s, 1);
        // Self-cycle.
        s.node_mut(1).next = Some(1);
        // Iterator must terminate regardless.
        assert!(l.iter(&s).count() <= 2);
    }
}
