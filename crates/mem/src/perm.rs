//! Linear page-ownership tokens and page → kernel-object conversion.
//!
//! `alloc_page_4k()` in the paper returns a page *and a permission to use
//! it* (Listing 4). [`PagePermission`] is that token: affine (not `Clone`),
//! produced only by the allocator, consumed either by freeing the page or
//! by converting the page into a typed kernel object — which yields the
//! `(PPtr<T>, PointsTo<T>)` pair all subsequent accesses go through.
//!
//! The conversion enforces the paper's type-safety discipline: one page
//! backs exactly one object of one type, and the object permission's
//! address is the page address, so the `page_closure()` of the owning
//! subsystem is directly the set of object addresses.

use atmo_spec::{PPtr, PointsTo};

use crate::meta::{PagePtr, PageSize};

/// Affine ownership of one free-standing physical block.
///
/// Held by whichever subsystem currently owns the block's storage;
/// returned to the allocator on free.
#[derive(Debug)]
pub struct PagePermission {
    addr: PagePtr,
    size: PageSize,
}

impl PagePermission {
    /// Trusted constructor — only the allocator mints permissions.
    pub(crate) fn new(addr: PagePtr, size: PageSize) -> Self {
        PagePermission { addr, size }
    }

    /// Physical address of the block's first frame.
    pub fn addr(&self) -> PagePtr {
        self.addr
    }

    /// Block size.
    pub fn size(&self) -> PageSize {
        self.size
    }

    /// Converts a 4 KiB page into a typed kernel object, producing the
    /// pointer/permission pair of §2 (Listing 1).
    ///
    /// The value is constructed in place; the resulting [`PointsTo`]
    /// carries it as ghost state.
    ///
    /// # Panics
    ///
    /// Panics when the block is a superpage: kernel objects are 4 KiB
    /// (a "verification failure" — the paper's type system would reject
    /// the corresponding code path statically).
    pub fn into_object<T>(self, value: T) -> (PPtr<T>, PointsTo<T>) {
        assert_eq!(
            self.size,
            PageSize::Size4K,
            "kernel objects occupy exactly one 4 KiB page"
        );
        (
            PPtr::from_usize(self.addr),
            PointsTo::new_init(self.addr, value),
        )
    }

    /// Reclaims the page behind a kernel object, destroying the object.
    ///
    /// The inverse of [`PagePermission::into_object`]: consumes the object
    /// permission (temporal safety — the pointer can never be dereferenced
    /// again) and returns the page permission plus the final object value.
    pub fn from_object<T>(ptr: PPtr<T>, perm: PointsTo<T>) -> (PagePermission, Option<T>) {
        assert_eq!(
            ptr.addr(),
            perm.addr(),
            "object permission does not match pointer"
        );
        let addr = perm.addr();
        (
            PagePermission::new(addr, PageSize::Size4K),
            perm.into_value(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Endpoint {
        queue_len: usize,
    }

    #[test]
    fn page_becomes_object_and_back() {
        let page = PagePermission::new(0x5000, PageSize::Size4K);
        let (ptr, mut perm) = page.into_object(Endpoint { queue_len: 0 });
        assert_eq!(ptr.addr(), 0x5000);
        assert_eq!(perm.addr(), 0x5000);
        ptr.borrow_mut(&mut perm).queue_len = 3;

        let (page, last) = PagePermission::from_object(ptr, perm);
        assert_eq!(page.addr(), 0x5000);
        assert_eq!(page.size(), PageSize::Size4K);
        assert_eq!(last, Some(Endpoint { queue_len: 3 }));
    }

    #[test]
    #[should_panic(expected = "4 KiB page")]
    fn superpage_cannot_back_an_object() {
        let page = PagePermission::new(0x20_0000, PageSize::Size2M);
        let _ = page.into_object(0u64);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_object_reclaim_rejected() {
        let page = PagePermission::new(0x5000, PageSize::Size4K);
        let (_ptr, perm) = page.into_object(1u64);
        let other = PPtr::<u64>::from_usize(0x6000);
        let _ = PagePermission::from_object(other, perm);
    }
}
