//! Manual memory management for the Atmosphere reproduction (§4.2).
//!
//! Atmosphere abandons Rust's automatic memory management: every kernel
//! object (container, process, thread, endpoint, page-table level) is
//! explicitly allocated from — and explicitly returned to — a page
//! allocator that works at 4 KiB / 2 MiB / 1 GiB granularity. Safety and
//! leak freedom are then *proved* rather than delegated to the borrow
//! checker:
//!
//! * every physical page is in exactly one of four states — **free**,
//!   **mapped**, **merged** (into a superpage) or **allocated** (backing a
//!   kernel object);
//! * the allocator keeps free pages of each size on a doubly-linked free
//!   list with constant-time unlink (each page's metadata stores its list
//!   node — the Linux-style page array);
//! * 2 MiB / 1 GiB superpages are formed by scanning the page array and
//!   unlinking 512 merged constituents in constant time each;
//! * every subsystem reports the set of pages it owns via
//!   [`PageClosure::page_closure`]; pairwise disjointness plus
//!   "union of closures = allocated ∪ mapped ∪ merged" gives type/spatial/
//!   temporal safety and leak freedom (the paper's bottom-up recursive
//!   memory reasoning).
//!
//! Module map: [`meta`] page states and the page array, [`freelist`] the
//! intrusive lists, [`alloc`] the allocator and its abstract views,
//! [`perm`] linear page-ownership tokens and page→object conversion,
//! [`closure`] the `page_closure()` machinery, [`source`] the page-
//! supplier abstraction and [`cache`] the per-CPU free-page caches
//! backing the sharded kernel's allocator fast path.

pub mod alloc;
pub mod cache;
pub mod closure;
pub mod dma;
pub mod freelist;
pub mod meta;
pub mod perm;
pub mod source;

pub use alloc::{AllocError, PageAllocator};
pub use cache::{
    CacheStats, CachedSource, PageCache, DEFAULT_CACHE_CAPACITY, DEFAULT_REFILL_BATCH,
};
pub use closure::{closure_partition_wf, PageClosure};
pub use dma::{DmaWindow, DMA_FRAME_BYTES};
pub use meta::{PagePtr, PageSize, PageState};
pub use perm::PagePermission;
pub use source::PageSource;
