//! Page states and the page metadata array.
//!
//! "The page allocator uses a page array (similar to the page array in
//! Linux) to maintain the metadata for each physical page in the system"
//! (§4.2). Each 4 KiB frame has a [`PageState`] and, when free, an
//! embedded doubly-linked list node ([`ListNode`]) so the allocator can
//! unlink it in constant time when it is merged into a superpage.

use atmo_hw::addr::{PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K};

/// A physical page pointer: the frame's physical address.
///
/// The paper keys every allocator set (`free`, `allocated`, `mapped`,
/// `merged`) and every `page_closure()` by these.
pub type PagePtr = usize;

/// Page sizes supported by the allocator and the page table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB base page.
    Size4K,
    /// 2 MiB superpage (512 base pages).
    Size2M,
    /// 1 GiB superpage (512 × 512 base pages).
    Size1G,
}

impl PageSize {
    /// Size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            PageSize::Size4K => PAGE_SIZE_4K,
            PageSize::Size2M => PAGE_SIZE_2M,
            PageSize::Size1G => PAGE_SIZE_1G,
        }
    }

    /// Number of 4 KiB frames covered.
    pub const fn frames(self) -> usize {
        self.bytes() / PAGE_SIZE_4K
    }
}

/// The state of one 4 KiB frame (§4.2: free / mapped / merged / allocated).
///
/// Superpages are represented by their *head* frame: a free or mapped 2 MiB
/// block has its head in `Free(Size2M)` / `Mapped { size: Size2M, .. }` and
/// its 511 other frames in `Merged { head }`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageState {
    /// Not usable RAM (reserved/MMIO/kernel image); never allocatable.
    Unavailable,
    /// Head of a free block of the given size, on that size's free list.
    Free(PageSize),
    /// Constituent (non-head) frame of a superpage.
    Merged {
        /// The head frame of the superpage this frame belongs to.
        head: PagePtr,
    },
    /// Head of a block mapped into `refcnt` ≥ 1 address spaces.
    Mapped {
        /// Size of the mapped block.
        size: PageSize,
        /// Number of address spaces that map this block (shared memory
        /// established via endpoints can make this > 1).
        refcnt: usize,
    },
    /// 4 KiB frame backing a kernel object or a page-table level.
    Allocated,
}

/// Intrusive doubly-linked list node embedded in free pages' metadata.
///
/// "Each page metadata in the array maintains a pointer to the node of the
/// linked list holding the page, which allows us to perform constant-time
/// removal when the page is merged" (§4.2). Storing the node *in* the page
/// array is the paper's internal-storage optimization; `prev` is the
/// reverse pointer enabling O(1) unlink.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ListNode {
    /// Previous free page of the same size class, if any.
    pub prev: Option<PagePtr>,
    /// Next free page of the same size class, if any.
    pub next: Option<PagePtr>,
}

/// Metadata for one 4 KiB frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageMeta {
    /// Current state.
    pub state: PageState,
    /// Free-list node; meaningful only while `state` is `Free(_)`.
    pub node: ListNode,
}

impl PageMeta {
    /// Metadata for an unavailable frame.
    pub const fn unavailable() -> Self {
        PageMeta {
            state: PageState::Unavailable,
            node: ListNode {
                prev: None,
                next: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_arithmetic() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.frames(), 512);
        assert_eq!(PageSize::Size1G.frames(), 512 * 512);
    }

    #[test]
    fn states_are_distinguishable() {
        assert_ne!(
            PageState::Free(PageSize::Size4K),
            PageState::Free(PageSize::Size2M)
        );
        assert_ne!(PageState::Allocated, PageState::Unavailable);
        let m = PageState::Mapped {
            size: PageSize::Size4K,
            refcnt: 1,
        };
        if let PageState::Mapped { refcnt, .. } = m {
            assert_eq!(refcnt, 1);
        } else {
            unreachable!();
        }
    }
}
