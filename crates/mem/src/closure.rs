//! `page_closure()` — the paper's memory-accounting backbone (§4.2).
//!
//! "For each data structure in the kernel, we implement the
//! `page_closure()` specification function, which returns a set of pages
//! used by the data structure and all objects owned by it." Subsystems
//! maintain their closure hierarchically: each proves its children's
//! closures pairwise disjoint and its own closure equal to their union,
//! so kernel-wide disjointness and leak freedom follow without global
//! per-object invariants.

use atmo_spec::harness::{check, VerifResult};
use atmo_spec::set::{pairwise_disjoint, union_all};
use atmo_spec::Set;

use crate::meta::PagePtr;

/// A kernel data structure that owns physical pages.
pub trait PageClosure {
    /// The set of pages used by this structure and everything it owns
    /// (directly or via tracked permissions).
    fn page_closure(&self) -> Set<PagePtr>;
}

/// Checks one level of the bottom-up memory argument: the children's
/// closures are pairwise disjoint and their union equals the parent's
/// closure.
///
/// `subsystem` names the level for diagnostics (e.g. `"vm"` for the
/// virtual-memory subsystem owning all page tables and IOMMU tables).
pub fn closure_partition_wf(
    subsystem: &'static str,
    parent: &Set<PagePtr>,
    children: &[Set<PagePtr>],
) -> VerifResult {
    check(
        pairwise_disjoint(children),
        subsystem,
        "child page closures overlap",
    )?;
    check(
        union_all(children) == *parent,
        subsystem,
        "union of child closures differs from the subsystem closure",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Table {
        pages: Vec<PagePtr>,
    }

    impl PageClosure for Table {
        fn page_closure(&self) -> Set<PagePtr> {
            self.pages.iter().copied().collect()
        }
    }

    #[test]
    fn partition_accepts_disjoint_cover() {
        let a = Table {
            pages: vec![0x1000, 0x2000],
        };
        let b = Table {
            pages: vec![0x3000],
        };
        let parent = a.page_closure().union(&b.page_closure());
        assert!(closure_partition_wf("vm", &parent, &[a.page_closure(), b.page_closure()]).is_ok());
    }

    #[test]
    fn partition_rejects_overlap() {
        let a = Table {
            pages: vec![0x1000, 0x2000],
        };
        let b = Table {
            pages: vec![0x2000], // overlaps: double use of one page
        };
        let parent = a.page_closure().union(&b.page_closure());
        let r = closure_partition_wf("vm", &parent, &[a.page_closure(), b.page_closure()]);
        assert!(r.unwrap_err().detail.contains("overlap"));
    }

    #[test]
    fn partition_rejects_leak() {
        // The parent claims a page no child owns — a leak.
        let a = Table {
            pages: vec![0x1000],
        };
        let parent = a.page_closure().insert(0x9000);
        let r = closure_partition_wf("vm", &parent, &[a.page_closure()]);
        assert!(r.unwrap_err().detail.contains("union"));
    }
}
