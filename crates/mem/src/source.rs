//! The [`PageSource`] abstraction: where kernel-object pages come from.
//!
//! Verified clients of the allocator (the process manager, the page
//! tables) only ever need two operations — allocate a 4 KiB page with
//! its linear permission, and free one by consuming the permission.
//! Abstracting those behind a trait lets the sharded kernel substitute a
//! per-CPU [`PageCache`](crate::cache::PageCache)-backed source for the
//! shared allocator without touching any client code or any client
//! proof: the Listing 4 contract (page leaves the free set, permission
//! is linear, free consumes it) is the trait's contract.

use crate::alloc::{AllocError, PageAllocator};
use crate::meta::PagePtr;
use crate::perm::PagePermission;

/// A supplier of 4 KiB kernel-object pages.
pub trait PageSource {
    /// Allocates a 4 KiB page, returning it with its linear permission.
    fn alloc_page_4k(&mut self) -> Result<(PagePtr, PagePermission), AllocError>;

    /// Frees a 4 KiB page, consuming its permission.
    fn free_page_4k(&mut self, perm: PagePermission);

    /// Drops one mapping reference on a mapped block head (in-flight
    /// grant cleanup when a thread dies); frees the block at zero.
    /// Returns `true` when the block became free. Mapped frames are
    /// never cached, so every implementation routes this to the shared
    /// allocator.
    fn dec_map_ref(&mut self, p: PagePtr) -> bool;
}

impl PageSource for PageAllocator {
    fn alloc_page_4k(&mut self) -> Result<(PagePtr, PagePermission), AllocError> {
        PageAllocator::alloc_page_4k(self)
    }

    fn free_page_4k(&mut self, perm: PagePermission) {
        PageAllocator::free_page_4k(self, perm)
    }

    fn dec_map_ref(&mut self, p: PagePtr) -> bool {
        PageAllocator::dec_map_ref(self, p)
    }
}
