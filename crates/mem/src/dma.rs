//! Device-visible DMA windows over pinned frames.
//!
//! The zero-copy datapaths pin pool frames through the IOMMU grant path
//! (§5: user-level drivers DMA only through IOMMU translations). A
//! [`DmaWindow`] records the outcome of that pinning — the contiguous
//! IOVA range a protection domain maps and the frames behind it — so a
//! buffer pool can turn a slot index into the device address a
//! submission descriptor needs without re-walking the IOMMU tables.
//!
//! The window is pure bookkeeping: creating one grants nothing. The
//! IOMMU mappings it describes are established and torn down by the
//! kernel's `IommuMap`/`IommuUnmap` syscalls; the window's invariant
//! only checks internal consistency (distinct frames, one frame per
//! 4 KiB of IOVA space).

use atmo_spec::harness::{check, Invariant, VerifResult};

use crate::meta::PagePtr;

/// Bytes covered by one frame of a DMA window.
pub const DMA_FRAME_BYTES: usize = 4096;

/// A contiguous device-visible address range backed by pinned frames:
/// frame `i` is mapped at `iova_base + i * 4096`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DmaWindow {
    iova_base: usize,
    frames: Vec<PagePtr>,
}

impl DmaWindow {
    /// A window mapping `frames` contiguously from `iova_base`.
    ///
    /// # Panics
    ///
    /// Panics when `iova_base` is not 4 KiB-aligned.
    pub fn new(iova_base: usize, frames: Vec<PagePtr>) -> Self {
        assert!(
            iova_base.is_multiple_of(DMA_FRAME_BYTES),
            "DMA window base {iova_base:#x} not page-aligned"
        );
        DmaWindow { iova_base, frames }
    }

    /// First device-visible address of the window.
    pub fn iova_base(&self) -> usize {
        self.iova_base
    }

    /// The pinned frames, in IOVA order.
    pub fn frames(&self) -> &[PagePtr] {
        &self.frames
    }

    /// Bytes the window covers.
    pub fn len_bytes(&self) -> usize {
        self.frames.len() * DMA_FRAME_BYTES
    }

    /// `true` when the window covers no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Device address of byte offset `off` into the window.
    ///
    /// # Panics
    ///
    /// Panics when `off` is outside the window.
    pub fn iova_of(&self, off: usize) -> usize {
        assert!(
            off < self.len_bytes(),
            "offset {off:#x} outside {}-byte DMA window",
            self.len_bytes()
        );
        self.iova_base + off
    }

    /// The IOVA of each mapped frame, in order (the unpin loop walks
    /// these through `IommuUnmap`).
    pub fn iovas(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.frames.len()).map(move |i| self.iova_base + i * DMA_FRAME_BYTES)
    }

    /// Consumes the window, returning the frames for unpinning.
    pub fn into_frames(self) -> Vec<PagePtr> {
        self.frames
    }
}

impl Invariant for DmaWindow {
    /// Window well-formedness: the base is page-aligned, the IOVA range
    /// does not wrap, and no frame backs two window offsets.
    fn wf(&self) -> VerifResult {
        check(
            self.iova_base.is_multiple_of(DMA_FRAME_BYTES),
            "dma_window",
            format!("base {:#x} not page-aligned", self.iova_base),
        )?;
        check(
            self.iova_base.checked_add(self.len_bytes()).is_some(),
            "dma_window",
            "IOVA range wraps the address space",
        )?;
        let mut seen = self.frames.clone();
        seen.sort_unstable();
        seen.dedup();
        check(
            seen.len() == self.frames.len(),
            "dma_window",
            "a frame backs two window offsets",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_offsets_translate_contiguously() {
        let w = DmaWindow::new(0x10_0000, vec![0x8000, 0x9000, 0xa000]);
        assert_eq!(w.iova_of(0), 0x10_0000);
        assert_eq!(w.iova_of(4096), 0x10_1000);
        assert_eq!(w.iova_of(2 * 4096 + 512), 0x10_2200);
        assert_eq!(w.len_bytes(), 3 * 4096);
        assert_eq!(
            w.iovas().collect::<Vec<_>>(),
            vec![0x10_0000, 0x10_1000, 0x10_2000]
        );
        assert!(w.is_wf());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_window_offset_panics() {
        let w = DmaWindow::new(0x10_0000, vec![0x8000]);
        let _ = w.iova_of(4096);
    }

    #[test]
    fn duplicate_frames_fail_wf() {
        let w = DmaWindow::new(0x10_0000, vec![0x8000, 0x8000]);
        assert!(w.wf().is_err());
    }

    #[test]
    fn into_frames_round_trips() {
        let frames = vec![0x8000, 0x9000];
        let w = DmaWindow::new(0x20_0000, frames.clone());
        assert_eq!(w.into_frames(), frames);
    }
}
