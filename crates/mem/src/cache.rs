//! Per-CPU free-page caches: the allocator fast path of the sharded
//! kernel.
//!
//! A [`PageCache`] holds 4 KiB pages *together with their linear
//! [`PagePermission`]s*, exactly as [`PageAllocator::alloc_page_4k`]
//! handed them out: globally the cached frames stay in the `Allocated`
//! state, so nothing about the allocator's own invariant changes. The
//! cache is private to one CPU; its `pop`/`push` fast paths touch no
//! shared state, and only batch [`refill_from`](PageCache::refill_from)
//! / [`drain_excess_to`](PageCache::drain_excess_to) operations take
//! the shared allocator (under the kernel's mem-domain lock).
//!
//! Cached pages belong to *no* container closure, which would break the
//! kernel's closure-partition equation ("pm closure ∪ vm closure =
//! allocated pages"). The stop-the-world `total_wf` audit therefore
//! [`drain_all_to`](PageCache::drain_all_to)s every cache first,
//! restoring the pristine big-lock state the flat invariants were
//! stated over — that is the whole trick that lets per-CPU caching
//! coexist with the paper's quantifier-free leak-freedom story.

use atmo_spec::Set;
use atmo_trace::{AuditDelta, TraceHandle, TraceShare};

use crate::alloc::{AllocError, PageAllocator};
use crate::meta::PagePtr;
use crate::perm::PagePermission;
use crate::source::PageSource;

/// Default number of pages a cache may hold before draining.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;
/// Default pages moved per refill / per excess drain.
pub const DEFAULT_REFILL_BATCH: usize = 16;

/// Monotone statistics for one CPU's cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Allocations served without touching the shared allocator.
    pub fast_allocs: u64,
    /// Frees absorbed without touching the shared allocator.
    pub fast_frees: u64,
    /// Batch refills from the shared allocator.
    pub refills: u64,
    /// Batch drains back to the shared allocator.
    pub drains: u64,
}

/// One CPU's private stock of `Allocated` 4 KiB pages.
#[derive(Debug)]
pub struct PageCache {
    cpu: usize,
    pages: Vec<(PagePtr, PagePermission)>,
    capacity: usize,
    refill_batch: usize,
    stats: CacheStats,
    /// Audit-ledger sink (always-equal share: tracing does not change
    /// cache state).
    trace: TraceShare,
}

impl PageCache {
    /// An empty cache for `cpu` with the default sizing.
    pub fn new(cpu: usize) -> Self {
        Self::with_sizing(cpu, DEFAULT_CACHE_CAPACITY, DEFAULT_REFILL_BATCH)
    }

    /// An empty cache with explicit capacity and refill batch.
    ///
    /// # Panics
    ///
    /// Panics when `refill_batch` is zero or exceeds `capacity`.
    pub fn with_sizing(cpu: usize, capacity: usize, refill_batch: usize) -> Self {
        assert!(refill_batch >= 1 && refill_batch <= capacity);
        PageCache {
            cpu,
            pages: Vec::with_capacity(capacity),
            capacity,
            refill_batch,
            stats: CacheStats::default(),
            trace: TraceShare::detached(),
        }
    }

    /// Routes cache fill/drain audit deltas into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// The CPU this cache belongs to.
    pub fn cpu(&self) -> usize {
        self.cpu
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// `true` when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Cumulative fast-path / batch statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The set of cached frames (audit view; all are `Allocated` in the
    /// shared allocator but belong to no closure until handed out).
    pub fn cached_pages(&self) -> Set<PagePtr> {
        self.pages.iter().map(|(p, _)| *p).collect()
    }

    /// Fast-path allocation: pops a cached page, or `None` when a refill
    /// is needed.
    pub fn pop(&mut self) -> Option<(PagePtr, PagePermission)> {
        let got = self.pages.pop();
        if let Some((p, _)) = &got {
            self.stats.fast_allocs += 1;
            self.trace.audit(AuditDelta::CacheDrain(*p));
        }
        got
    }

    /// Fast-path free: absorbs the page into the cache. The caller must
    /// check [`needs_drain`](Self::needs_drain) afterwards and drain
    /// under the mem lock when full.
    pub fn push(&mut self, page: PagePtr, perm: PagePermission) {
        debug_assert_eq!(perm.addr(), page);
        self.pages.push((page, perm));
        self.stats.fast_frees += 1;
        self.trace.audit(AuditDelta::CacheFill(page));
    }

    /// `true` when the cache has reached capacity and excess pages
    /// should be returned to the shared allocator.
    pub fn needs_drain(&self) -> bool {
        self.pages.len() >= self.capacity
    }

    /// Pulls up to one refill batch from the shared allocator. Errors
    /// only when not even one page could be obtained.
    pub fn refill_from(&mut self, alloc: &mut PageAllocator) -> Result<(), AllocError> {
        let mut got = 0;
        while got < self.refill_batch {
            match alloc.alloc_page_4k() {
                Ok((p, perm)) => {
                    self.trace.audit(AuditDelta::CacheFill(p));
                    self.pages.push((p, perm));
                    got += 1;
                }
                Err(e) if got == 0 => return Err(e),
                Err(_) => break,
            }
        }
        self.stats.refills += 1;
        Ok(())
    }

    /// Returns one refill batch of pages to the shared allocator,
    /// keeping the rest cached.
    pub fn drain_excess_to(&mut self, alloc: &mut PageAllocator) {
        for _ in 0..self.refill_batch {
            match self.pages.pop() {
                Some((p, perm)) => {
                    self.trace.audit(AuditDelta::CacheDrain(p));
                    alloc.free_page_4k(perm);
                }
                None => break,
            }
        }
        self.stats.drains += 1;
    }

    /// Returns *every* cached page to the shared allocator (stop-the-
    /// world audits, teardown). Afterwards the allocator's free/closure
    /// accounting is exactly what a big-lock kernel would show.
    pub fn drain_all_to(&mut self, alloc: &mut PageAllocator) {
        if self.pages.is_empty() {
            return;
        }
        while let Some((p, perm)) = self.pages.pop() {
            self.trace.audit(AuditDelta::CacheDrain(p));
            alloc.free_page_4k(perm);
        }
        self.stats.drains += 1;
    }
}

/// A cache chained onto the shared allocator: serves the fast path from
/// the cache and falls back to batched refills. Useful for single-
/// threaded callers; the sharded kernel implements the same routing
/// with its own locking.
pub struct CachedSource<'a> {
    /// This CPU's cache.
    pub cache: &'a mut PageCache,
    /// The shared allocator (already locked by the caller).
    pub alloc: &'a mut PageAllocator,
}

impl PageSource for CachedSource<'_> {
    fn alloc_page_4k(&mut self) -> Result<(PagePtr, PagePermission), AllocError> {
        if let Some(got) = self.cache.pop() {
            return Ok(got);
        }
        self.cache.refill_from(self.alloc)?;
        self.cache.pop().ok_or(AllocError::OutOfMemory)
    }

    fn free_page_4k(&mut self, perm: PagePermission) {
        let page = perm.addr();
        self.cache.push(page, perm);
        if self.cache.needs_drain() {
            self.cache.drain_excess_to(self.alloc);
        }
    }

    fn dec_map_ref(&mut self, p: PagePtr) -> bool {
        self.alloc.dec_map_ref(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::boot::BootInfo;

    fn small_alloc() -> PageAllocator {
        PageAllocator::new(&BootInfo::simulated(8, 1, ""))
    }

    #[test]
    fn refill_pop_drain_roundtrip_preserves_free_set() {
        let mut alloc = small_alloc();
        let free_before = alloc.free_pages_4k();
        let mut cache = PageCache::with_sizing(0, 8, 4);
        cache.refill_from(&mut alloc).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(
            alloc.allocated_pages().len(),
            4,
            "cached pages stay Allocated"
        );
        let (p, perm) = cache.pop().unwrap();
        cache.push(p, perm);
        cache.drain_all_to(&mut alloc);
        assert!(cache.is_empty());
        assert_eq!(alloc.free_pages_4k(), free_before, "no page leaked");
        assert_eq!(cache.stats().fast_allocs, 1);
        assert_eq!(cache.stats().fast_frees, 1);
    }

    #[test]
    fn cached_source_routes_fast_and_slow_paths() {
        let mut alloc = small_alloc();
        let free_before = alloc.free_pages_4k();
        let mut cache = PageCache::with_sizing(0, 8, 4);
        let mut perms = Vec::new();
        {
            let mut src = CachedSource {
                cache: &mut cache,
                alloc: &mut alloc,
            };
            for _ in 0..10 {
                perms.push(src.alloc_page_4k().unwrap());
            }
            for (_, perm) in perms.drain(..) {
                src.free_page_4k(perm);
            }
        }
        // 10 allocs over a batch of 4 → 3 refills; frees filled the cache
        // to its capacity of 8 and drained once.
        assert_eq!(cache.stats().refills, 3);
        assert!(cache.stats().drains >= 1);
        cache.drain_all_to(&mut alloc);
        assert_eq!(alloc.free_pages_4k(), free_before);
    }

    #[test]
    fn refill_reports_oom_only_when_empty_handed() {
        let mut alloc = PageAllocator::new(&BootInfo::simulated(1, 1, ""));
        let mut hoard = Vec::new();
        while let Ok(got) = PageSource::alloc_page_4k(&mut alloc) {
            hoard.push(got);
        }
        let mut cache = PageCache::with_sizing(0, 8, 4);
        assert_eq!(
            cache.refill_from(&mut alloc).unwrap_err(),
            AllocError::OutOfMemory
        );
        // With two pages back, a partial refill succeeds.
        let (_, perm) = hoard.pop().unwrap();
        alloc.free_page_4k(perm);
        let (_, perm) = hoard.pop().unwrap();
        alloc.free_page_4k(perm);
        cache.refill_from(&mut alloc).unwrap();
        assert_eq!(cache.len(), 2, "partial batch is fine");
    }
}
