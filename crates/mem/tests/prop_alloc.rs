//! Randomized exploration of the page allocator.
//!
//! Drives random sequences of allocator operations and checks after every
//! step that the well-formedness invariant (`PageAllocator::wf`) holds and
//! that no frame is ever lost or duplicated — the dynamic counterpart of
//! the paper's allocator-level safety and leak-freedom proofs (§4.2).
//! Randomness comes from the deterministic in-repo [`XorShift64Star`]
//! generator.

use atmo_hw::boot::BootInfo;
use atmo_mem::{PageAllocator, PagePermission, PageSize};
use atmo_spec::harness::Invariant;
use atmo_spec::XorShift64Star;

#[derive(Clone, Copy, Debug)]
enum Op {
    Alloc4K,
    FreeOldest,
    MapBlock(PageSize),
    UnmapOldest,
    ShareOldest,
    Merge2M,
    Merge1G,
}

/// Weighted operation mix: allocation-heavy with occasional merges.
fn random_op(rng: &mut XorShift64Star) -> Op {
    match rng.below(14) {
        0..=3 => Op::Alloc4K,
        4..=6 => Op::FreeOldest,
        7..=8 => Op::MapBlock(match rng.below(3) {
            0 => PageSize::Size4K,
            1 => PageSize::Size2M,
            _ => PageSize::Size1G,
        }),
        9..=10 => Op::UnmapOldest,
        11 => Op::ShareOldest,
        12 => Op::Merge2M,
        _ => Op::Merge1G,
    }
}

/// Every frame of the managed region is accounted for exactly once across
/// the allocator's abstract views (allocator-level leak freedom).
fn frames_partitioned(a: &PageAllocator) -> bool {
    let free_4k = a.free_pages_4k().len();
    // Free superpage heads count 1 in free view + constituents in merged.
    let free_2m = a.free_pages_2m().len();
    let free_1g = a.free_pages_1g().len();
    let allocated = a.allocated_pages().len();
    let mapped_heads = a.mapped_pages().len();
    let merged = a.merged_pages().len();
    free_4k + free_2m + free_1g + allocated + mapped_heads + merged == a.nframes()
}

#[test]
fn allocator_invariants_hold_under_random_ops() {
    for case in 0..24u64 {
        let mut rng = XorShift64Star::new(0x5eed_4001 + case);
        let mut a = PageAllocator::new(&BootInfo::simulated(8, 1, ""));
        let mut held: Vec<PagePermission> = Vec::new();
        let mut mapped: Vec<usize> = Vec::new();

        let nops = rng.range(1, 60);
        for step in 0..nops {
            let op = random_op(&mut rng);
            match op {
                Op::Alloc4K => {
                    if let Ok((_p, perm)) = a.alloc_page_4k() {
                        held.push(perm);
                    }
                }
                Op::FreeOldest => {
                    if !held.is_empty() {
                        let perm = held.remove(0);
                        a.free_page_4k(perm);
                    }
                }
                Op::MapBlock(size) => {
                    if let Ok(p) = a.alloc_mapped(size) {
                        mapped.push(p);
                    }
                }
                Op::UnmapOldest => {
                    if !mapped.is_empty() {
                        let p = mapped.remove(0);
                        // `true` means the block is free again; otherwise a
                        // sharing entry still references it.
                        let _ = a.dec_map_ref(p);
                    }
                }
                Op::ShareOldest => {
                    if let Some(&p) = mapped.first() {
                        a.inc_map_ref(p);
                        mapped.push(p); // a second unmap will drop it
                    }
                }
                Op::Merge2M => {
                    let _ = a.merge_2m();
                }
                Op::Merge1G => {
                    let _ = a.merge_1g();
                }
            }
            // Full wf is O(frames); check it on a sampled cadence and
            // always at the end.
            if step % 7 == 0 {
                assert!(
                    a.wf().is_ok(),
                    "seed {case}: invariant violated after {op:?}: {:?}",
                    a.wf()
                );
                assert!(
                    frames_partitioned(&a),
                    "seed {case}: frames lost or duplicated after {op:?}"
                );
            }
        }

        // Drain everything; the allocator must return to a fully free state.
        for perm in held.drain(..) {
            a.free_page_4k(perm);
        }
        for p in mapped.drain(..) {
            let _ = a.dec_map_ref(p);
        }
        assert!(a.wf().is_ok());
        assert!(a.allocated_pages().is_empty());
        assert!(a.mapped_pages().is_empty());
        assert!(frames_partitioned(&a), "final leak-freedom check");
    }
}
