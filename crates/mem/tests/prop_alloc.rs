//! Property-based exploration of the page allocator.
//!
//! Drives random sequences of allocator operations and checks after every
//! step that the well-formedness invariant (`PageAllocator::wf`) holds and
//! that no frame is ever lost or duplicated — the dynamic counterpart of
//! the paper's allocator-level safety and leak-freedom proofs (§4.2).

use atmo_hw::boot::BootInfo;
use atmo_mem::{PageAllocator, PagePermission, PageSize};
use atmo_spec::harness::Invariant;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Alloc4K,
    FreeOldest,
    MapBlock(u8),
    UnmapOldest,
    ShareOldest,
    Merge2M,
    Merge1G,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Alloc4K),
        3 => Just(Op::FreeOldest),
        2 => (0u8..3).prop_map(Op::MapBlock),
        2 => Just(Op::UnmapOldest),
        1 => Just(Op::ShareOldest),
        1 => Just(Op::Merge2M),
        1 => Just(Op::Merge1G),
    ]
}

/// Every frame of the managed region is accounted for exactly once across
/// the allocator's abstract views (allocator-level leak freedom).
fn frames_partitioned(a: &PageAllocator) -> bool {
    let free_4k = a.free_pages_4k().len();
    // Free superpage heads count 1 in free view + constituents in merged.
    let free_2m = a.free_pages_2m().len();
    let free_1g = a.free_pages_1g().len();
    let allocated = a.allocated_pages().len();
    let mapped_heads = a.mapped_pages().len();
    let merged = a.merged_pages().len();
    free_4k + free_2m + free_1g + allocated + mapped_heads + merged == a.nframes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    #[allow(clippy::explicit_counter_loop)]
    fn allocator_invariants_hold_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut a = PageAllocator::new(&BootInfo::simulated(8, 1, ""));
        let mut held: Vec<PagePermission> = Vec::new();
        let mut steps: u32 = 0;
        let mut mapped: Vec<usize> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc4K => {
                    if let Ok((_p, perm)) = a.alloc_page_4k() {
                        held.push(perm);
                    }
                }
                Op::FreeOldest => {
                    if !held.is_empty() {
                        let perm = held.remove(0);
                        a.free_page_4k(perm);
                    }
                }
                Op::MapBlock(sz) => {
                    let size = match sz {
                        0 => PageSize::Size4K,
                        1 => PageSize::Size2M,
                        _ => PageSize::Size1G,
                    };
                    if let Ok(p) = a.alloc_mapped(size) {
                        mapped.push(p);
                    }
                }
                Op::UnmapOldest => {
                    if !mapped.is_empty() {
                        let p = mapped.remove(0);
                        if a.dec_map_ref(p) {
                            // block is free again; nothing more to track
                        } else {
                            // still referenced by a sharing entry
                        }
                    }
                }
                Op::ShareOldest => {
                    if let Some(&p) = mapped.first() {
                        a.inc_map_ref(p);
                        mapped.push(p); // a second unmap will drop it
                    }
                }
                Op::Merge2M => {
                    let _ = a.merge_2m();
                }
                Op::Merge1G => {
                    let _ = a.merge_1g();
                }
            }
            // Full wf is O(frames); check it on a sampled cadence and
            // always at the end.
            if steps.is_multiple_of(7) {
                prop_assert!(a.wf().is_ok(), "invariant violated after {op:?}: {:?}", a.wf());
                prop_assert!(frames_partitioned(&a), "frames lost or duplicated after {op:?}");
            }
            steps += 1;
        }

        // Drain everything; the allocator must return to a fully free state.
        for perm in held.drain(..) {
            a.free_page_4k(perm);
        }
        for p in mapped.drain(..) {
            let _ = a.dec_map_ref(p);
        }
        prop_assert!(a.wf().is_ok());
        prop_assert!(a.allocated_pages().is_empty());
        prop_assert!(a.mapped_pages().is_empty());
        prop_assert!(frames_partitioned(&a), "final leak-freedom check");
    }
}
