//! Randomized exploration of the page table: random map/unmap sequences
//! over all three page sizes must preserve structural well-formedness and
//! the MMU-walk refinement relation after every operation (§6.2's
//! theorem, fuzzed). Randomness comes from the deterministic in-repo
//! [`XorShift64Star`] generator.

use atmo_hw::boot::BootInfo;
use atmo_hw::paging::EntryFlags;
use atmo_hw::VAddr;
use atmo_mem::{PageAllocator, PageSize};
use atmo_ptable::{refinement_wf, PageTable};
use atmo_spec::harness::Invariant;
use atmo_spec::XorShift64Star;

#[derive(Clone, Copy, Debug)]
enum Op {
    Map4K { slot: u8, ro: bool },
    Unmap4K { slot: u8 },
    Map2M { slot: u8 },
    Unmap2M { slot: u8 },
    Map1G,
    Unmap1G,
}

/// Weighted operation mix, 4 KiB-heavy like real address spaces.
fn random_op(rng: &mut XorShift64Star) -> Op {
    match rng.below(15) {
        0..=4 => Op::Map4K {
            slot: rng.next_u32() as u8,
            ro: rng.chance(1, 2),
        },
        5..=8 => Op::Unmap4K {
            slot: rng.next_u32() as u8,
        },
        9..=10 => Op::Map2M {
            slot: rng.below(8) as u8,
        },
        11..=12 => Op::Unmap2M {
            slot: rng.below(8) as u8,
        },
        13 => Op::Map1G,
        _ => Op::Unmap1G,
    }
}

fn va_4k(slot: u8) -> VAddr {
    VAddr(0x4000_0000 + (slot as usize) * 0x1000)
}

fn va_2m(slot: u8) -> VAddr {
    VAddr(0x8000_0000 + (slot as usize) * 0x20_0000)
}

const VA_1G: VAddr = VAddr(0x80_0000_0000);
const FRAME_1G: usize = 0x1_0000_0000; // device-range frame, 1 GiB aligned

#[test]
fn refinement_survives_random_map_unmap() {
    for case in 0..20u64 {
        let mut rng = XorShift64Star::new(0x5eed_5001 + case);
        let mut alloc = PageAllocator::new(&BootInfo::simulated(24, 1, ""));
        let mut pt = PageTable::new(&mut alloc).unwrap();

        let nops = rng.range(1, 60);
        for i in 0..nops {
            let op = random_op(&mut rng);
            match op {
                Op::Map4K { slot, ro } => {
                    if let Ok(frame) = alloc.alloc_mapped(PageSize::Size4K) {
                        let flags = if ro {
                            EntryFlags::user_ro()
                        } else {
                            EntryFlags::user_rw()
                        };
                        if pt
                            .map_4k_page(&mut alloc, va_4k(slot), frame, flags)
                            .is_err()
                        {
                            alloc.dec_map_ref(frame);
                        }
                    }
                }
                Op::Unmap4K { slot } => {
                    if let Ok(frame) = pt.unmap_4k_page(va_4k(slot)) {
                        alloc.dec_map_ref(frame);
                    }
                }
                Op::Map2M { slot } => {
                    if let Ok(frame) = alloc.alloc_mapped(PageSize::Size2M) {
                        if pt
                            .map_2m_page(&mut alloc, va_2m(slot), frame, EntryFlags::user_rw())
                            .is_err()
                        {
                            alloc.dec_map_ref(frame);
                        }
                    }
                }
                Op::Unmap2M { slot } => {
                    if let Ok(frame) = pt.unmap_2m_page(va_2m(slot)) {
                        alloc.dec_map_ref(frame);
                    }
                }
                Op::Map1G => {
                    // A fixed 1 GiB device frame (no allocator involvement).
                    let _ = pt.map_1g_page(&mut alloc, VA_1G, FRAME_1G, EntryFlags::user_ro());
                }
                Op::Unmap1G => {
                    let _ = pt.unmap_1g_page(VA_1G);
                }
            }
            assert!(
                pt.wf().is_ok(),
                "seed {case}: structure broken after op {i} ({op:?}): {:?}",
                pt.wf()
            );
            assert!(
                refinement_wf(&pt).is_ok(),
                "seed {case}: refinement broken after op {i} ({op:?}): {:?}",
                refinement_wf(&pt)
            );
            assert!(
                alloc.wf().is_ok(),
                "seed {case}: allocator broken after op {i}: {:?}",
                alloc.wf()
            );
        }

        // Drain: unmap everything; release tables; nothing leaks.
        let spaces: Vec<(usize, PageSize)> = pt
            .address_space()
            .iter()
            .map(|(va, (_e, sz))| (*va, *sz))
            .collect();
        for (va, sz) in spaces {
            let frame = match sz {
                PageSize::Size4K => pt.unmap_4k_page(VAddr(va)).unwrap(),
                PageSize::Size2M => pt.unmap_2m_page(VAddr(va)).unwrap(),
                PageSize::Size1G => {
                    pt.unmap_1g_page(VAddr(va)).unwrap();
                    continue; // device frame, not allocator-owned
                }
            };
            alloc.dec_map_ref(frame);
        }
        pt.release(&mut alloc);
        assert!(alloc.allocated_pages().is_empty());
        assert!(alloc.mapped_pages().is_empty());
        assert!(alloc.wf().is_ok());
    }
}
