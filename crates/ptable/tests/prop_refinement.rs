//! Property-based exploration of the page table: random map/unmap
//! sequences over all three page sizes must preserve structural
//! well-formedness and the MMU-walk refinement relation after every
//! operation (§6.2's theorem, fuzzed).

use atmo_hw::boot::BootInfo;
use atmo_hw::paging::EntryFlags;
use atmo_hw::VAddr;
use atmo_mem::{PageAllocator, PageSize};
use atmo_ptable::{refinement_wf, PageTable};
use atmo_spec::harness::Invariant;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Map4K { slot: u8, ro: bool },
    Unmap4K { slot: u8 },
    Map2M { slot: u8 },
    Unmap2M { slot: u8 },
    Map1G,
    Unmap1G,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), any::<bool>()).prop_map(|(slot, ro)| Op::Map4K { slot, ro }),
        4 => any::<u8>().prop_map(|slot| Op::Unmap4K { slot }),
        2 => (0u8..8).prop_map(|slot| Op::Map2M { slot }),
        2 => (0u8..8).prop_map(|slot| Op::Unmap2M { slot }),
        1 => Just(Op::Map1G),
        1 => Just(Op::Unmap1G),
    ]
}

fn va_4k(slot: u8) -> VAddr {
    VAddr(0x4000_0000 + (slot as usize) * 0x1000)
}

fn va_2m(slot: u8) -> VAddr {
    VAddr(0x8000_0000 + (slot as usize) * 0x20_0000)
}

const VA_1G: VAddr = VAddr(0x80_0000_0000);
const FRAME_1G: usize = 0x1_0000_0000; // device-range frame, 1 GiB aligned

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn refinement_survives_random_map_unmap(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut alloc = PageAllocator::new(&BootInfo::simulated(24, 1, ""));
        let mut pt = PageTable::new(&mut alloc).unwrap();

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Map4K { slot, ro } => {
                    if let Ok(frame) = alloc.alloc_mapped(PageSize::Size4K) {
                        let flags = if *ro { EntryFlags::user_ro() } else { EntryFlags::user_rw() };
                        if pt.map_4k_page(&mut alloc, va_4k(*slot), frame, flags).is_err() {
                            alloc.dec_map_ref(frame);
                        }
                    }
                }
                Op::Unmap4K { slot } => {
                    if let Ok(frame) = pt.unmap_4k_page(va_4k(*slot)) {
                        alloc.dec_map_ref(frame);
                    }
                }
                Op::Map2M { slot } => {
                    if let Ok(frame) = alloc.alloc_mapped(PageSize::Size2M) {
                        if pt.map_2m_page(&mut alloc, va_2m(*slot), frame, EntryFlags::user_rw()).is_err() {
                            alloc.dec_map_ref(frame);
                        }
                    }
                }
                Op::Unmap2M { slot } => {
                    if let Ok(frame) = pt.unmap_2m_page(va_2m(*slot)) {
                        alloc.dec_map_ref(frame);
                    }
                }
                Op::Map1G => {
                    // A fixed 1 GiB device frame (no allocator involvement).
                    let _ = pt.map_1g_page(&mut alloc, VA_1G, FRAME_1G, EntryFlags::user_ro());
                }
                Op::Unmap1G => {
                    let _ = pt.unmap_1g_page(VA_1G);
                }
            }
            prop_assert!(pt.wf().is_ok(), "structure broken after op {i} ({op:?}): {:?}", pt.wf());
            prop_assert!(
                refinement_wf(&pt).is_ok(),
                "refinement broken after op {i} ({op:?}): {:?}",
                refinement_wf(&pt)
            );
            prop_assert!(alloc.wf().is_ok(), "allocator broken after op {i}: {:?}", alloc.wf());
        }

        // Drain: unmap everything; release tables; nothing leaks.
        let spaces: Vec<(usize, PageSize)> = pt
            .address_space()
            .iter()
            .map(|(va, (_e, sz))| (*va, *sz))
            .collect();
        for (va, sz) in spaces {
            let frame = match sz {
                PageSize::Size4K => pt.unmap_4k_page(VAddr(va)).unwrap(),
                PageSize::Size2M => pt.unmap_2m_page(VAddr(va)).unwrap(),
                PageSize::Size1G => {
                    pt.unmap_1g_page(VAddr(va)).unwrap();
                    continue; // device frame, not allocator-owned
                }
            };
            alloc.dec_map_ref(frame);
        }
        pt.release(&mut alloc);
        prop_assert!(alloc.allocated_pages().is_empty());
        prop_assert!(alloc.mapped_pages().is_empty());
        prop_assert!(alloc.wf().is_ok());
    }
}
