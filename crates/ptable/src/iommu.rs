//! IOMMU translation tables and device protection domains.
//!
//! Atmosphere places device drivers in user space and confines their DMA
//! with the IOMMU (§3, §5: "We do not trust physical devices that we can
//! run behind an I/O Memory Management Unit"). The IOMMU reuses the same
//! 4-level table format as the CPU MMU; each protection *domain* owns one
//! translation table, and each device (identified by its PCI
//! bus/device/function) is attached to at most one domain.
//!
//! The virtual-memory subsystem owns "the memory of all page tables and
//! IOMMU page tables" (§4.2); [`Iommu::page_closure`] exposes this
//! module's share of that closure.

use atmo_hw::addr::VAddr;
use atmo_hw::paging::{EntryFlags, ResolvedMapping};
use atmo_mem::{AllocError, PageAllocator, PageClosure, PagePtr};
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::set::pairwise_disjoint;
use atmo_spec::{Map, Set};
use atmo_trace::{AuditDelta, TraceHandle, TraceShare};

use crate::table::{MapError, PageTable};

/// A PCI-style device identifier (bus/device/function packed).
pub type DeviceId = u16;

/// An IOMMU protection-domain identifier.
pub type IommuDomainId = u32;

/// One protection domain: a translation table plus its attached devices.
#[derive(Debug)]
struct Domain {
    table: PageTable,
    devices: Set<DeviceId>,
}

/// The IOMMU: a set of protection domains and the device→domain binding.
#[derive(Debug)]
pub struct Iommu {
    domains: std::collections::BTreeMap<IommuDomainId, Domain>,
    next_id: IommuDomainId,
    /// Audit-delta sink, propagated to every domain table (always-equal
    /// share: tracing does not change IOMMU state).
    trace: TraceShare,
}

impl Default for Iommu {
    fn default() -> Self {
        Iommu::new()
    }
}

impl Iommu {
    /// An IOMMU with no domains.
    pub fn new() -> Self {
        Iommu {
            domains: std::collections::BTreeMap::new(),
            next_id: 0,
            trace: TraceShare::detached(),
        }
    }

    /// Routes map/unmap events and audit deltas of every domain table
    /// (current and future) into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        for d in self.domains.values_mut() {
            d.table.attach_trace(sink.clone());
        }
        self.trace.attach(sink);
    }

    /// Creates an empty protection domain, returning its id.
    pub fn create_domain(
        &mut self,
        alloc: &mut PageAllocator,
    ) -> Result<IommuDomainId, AllocError> {
        let mut table = PageTable::new(alloc)?;
        if let Some(sink) = self.trace.handle() {
            table.attach_trace(sink.clone());
        }
        // The root frame was allocated before the table could observe the
        // sink; account for it here.
        self.trace.audit(AuditDelta::VmAcquire(table.cr3));
        let id = self.next_id;
        self.next_id += 1;
        self.domains.insert(
            id,
            Domain {
                table,
                devices: Set::empty(),
            },
        );
        Ok(id)
    }

    /// Attaches `dev` to `domain`. A device can be attached to at most one
    /// domain at a time.
    ///
    /// Returns `false` when the domain does not exist or the device is
    /// already attached elsewhere.
    pub fn attach_device(&mut self, domain: IommuDomainId, dev: DeviceId) -> bool {
        if self.domain_of(dev).is_some() {
            return false;
        }
        match self.domains.get_mut(&domain) {
            Some(d) => {
                d.devices = d.devices.insert(dev);
                true
            }
            None => false,
        }
    }

    /// Detaches `dev` from whatever domain holds it. Returns `true` when a
    /// binding was removed.
    pub fn detach_device(&mut self, dev: DeviceId) -> bool {
        for d in self.domains.values_mut() {
            if d.devices.contains(&dev) {
                d.devices = d.devices.remove(&dev);
                return true;
            }
        }
        false
    }

    /// The domain `dev` is attached to, if any.
    pub fn domain_of(&self, dev: DeviceId) -> Option<IommuDomainId> {
        self.domains
            .iter()
            .find(|(_, d)| d.devices.contains(&dev))
            .map(|(id, _)| *id)
    }

    /// Maps device-visible address `iova` to frame `frame` in `domain`.
    pub fn map_4k(
        &mut self,
        alloc: &mut PageAllocator,
        domain: IommuDomainId,
        iova: VAddr,
        frame: PagePtr,
        flags: EntryFlags,
    ) -> Result<(), MapError> {
        let d = self.domains.get_mut(&domain).ok_or(MapError::NotMapped)?;
        d.table.map_4k_page(alloc, iova, frame, flags)
    }

    /// Unmaps `iova` from `domain`, returning the frame.
    pub fn unmap_4k(&mut self, domain: IommuDomainId, iova: VAddr) -> Result<PagePtr, MapError> {
        let d = self.domains.get_mut(&domain).ok_or(MapError::NotMapped)?;
        d.table.unmap_4k_page(iova)
    }

    /// Translates a DMA access by `dev` at `iova`, exactly as the IOMMU
    /// hardware walk would. `None` means the DMA is blocked.
    pub fn translate(&self, dev: DeviceId, iova: VAddr) -> Option<ResolvedMapping> {
        let domain = self.domain_of(dev)?;
        self.domains.get(&domain)?.table.resolve(iova)
    }

    /// The abstract DMA address space of a domain.
    pub fn domain_address_space(
        &self,
        domain: IommuDomainId,
    ) -> Option<Map<usize, (crate::table::MapEntry, atmo_mem::PageSize)>> {
        self.domains.get(&domain).map(|d| d.table.address_space())
    }

    /// Number of live domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// All live domain identifiers.
    pub fn domain_ids(&self) -> Vec<IommuDomainId> {
        self.domains.keys().copied().collect()
    }

    /// Devices attached to `domain`.
    pub fn attached_devices(&self, domain: IommuDomainId) -> Set<DeviceId> {
        self.domains
            .get(&domain)
            .map(|d| d.devices.clone())
            .unwrap_or_default()
    }

    /// Every frame mapped by any domain (DMA-visible memory); feeds the
    /// kernel-wide leak-freedom equation.
    pub fn mapped_frames(&self) -> Set<PagePtr> {
        let mut s = Set::empty();
        for d in self.domains.values() {
            s = s.union(&d.table.mapped_frames());
        }
        s
    }

    /// Visits every leaf reference *site* across all domains (see
    /// [`PageTable::visit_leaf_sites`]); multiplicity preserved for the
    /// incremental auditor's reference fold.
    pub fn visit_leaf_sites(&self, mut f: impl FnMut(PagePtr)) {
        for d in self.domains.values() {
            d.table.visit_leaf_sites(&mut f);
        }
    }

    /// The IOVAs currently mapped in `domain`.
    pub fn domain_iovas(&self, domain: IommuDomainId) -> Vec<usize> {
        self.domains
            .get(&domain)
            .map(|d| d.table.address_space().keys().copied().collect())
            .unwrap_or_default()
    }

    /// Destroys a domain, returning its table frames to the allocator. All
    /// mappings must have been removed and devices detached.
    ///
    /// # Panics
    ///
    /// Panics when devices remain attached (a revocation-order violation).
    pub fn destroy_domain(&mut self, alloc: &mut PageAllocator, domain: IommuDomainId) {
        let d = self
            .domains
            .remove(&domain)
            .expect("destroying unknown IOMMU domain");
        assert!(
            d.devices.is_empty(),
            "destroying an IOMMU domain with attached devices"
        );
        d.table.release(alloc);
    }
}

impl PageClosure for Iommu {
    fn page_closure(&self) -> Set<PagePtr> {
        let mut s = Set::empty();
        for d in self.domains.values() {
            s = s.union(&d.table.page_closure());
        }
        s
    }
}

impl Invariant for Iommu {
    /// IOMMU well-formedness: each domain's table is well-formed and
    /// refines its abstract mapping; no device is attached to two domains;
    /// domain table closures are pairwise disjoint.
    fn wf(&self) -> VerifResult {
        let mut seen: Set<DeviceId> = Set::empty();
        let mut closures = Vec::new();
        for (id, d) in &self.domains {
            d.table.wf()?;
            crate::refine::refinement_wf(&d.table)?;
            for dev in d.devices.iter() {
                check(
                    !seen.contains(dev),
                    "iommu",
                    format!("device {dev} attached to multiple domains (incl. {id})"),
                )?;
                seen = seen.insert(*dev);
            }
            closures.push(d.table.page_closure());
        }
        check(
            pairwise_disjoint(&closures),
            "iommu",
            "domain translation tables share frames",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::boot::BootInfo;
    use atmo_mem::PageSize;

    fn setup() -> (PageAllocator, Iommu) {
        (
            PageAllocator::new(&BootInfo::simulated(16, 1, "")),
            Iommu::new(),
        )
    }

    #[test]
    fn unattached_device_dma_is_blocked() {
        let (_a, io) = setup();
        assert_eq!(io.translate(7, VAddr(0x1000)), None);
    }

    #[test]
    fn attach_map_translate() {
        let (mut a, mut io) = setup();
        let dom = io.create_domain(&mut a).unwrap();
        assert!(io.attach_device(dom, 7));
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        io.map_4k(&mut a, dom, VAddr(0x10_0000), frame, EntryFlags::user_rw())
            .unwrap();
        let r = io.translate(7, VAddr(0x10_0000)).unwrap();
        assert_eq!(r.frame.as_usize(), frame);
        assert!(io.is_wf());
        // Unmapped IOVA still blocked.
        assert_eq!(io.translate(7, VAddr(0x20_0000)), None);
    }

    #[test]
    fn device_cannot_join_two_domains() {
        let (mut a, mut io) = setup();
        let d1 = io.create_domain(&mut a).unwrap();
        let d2 = io.create_domain(&mut a).unwrap();
        assert!(io.attach_device(d1, 7));
        assert!(!io.attach_device(d2, 7));
        assert_eq!(io.domain_of(7), Some(d1));
        assert!(io.is_wf());
    }

    #[test]
    fn detach_blocks_dma_again() {
        let (mut a, mut io) = setup();
        let dom = io.create_domain(&mut a).unwrap();
        io.attach_device(dom, 3);
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        io.map_4k(&mut a, dom, VAddr(0x10_0000), frame, EntryFlags::user_rw())
            .unwrap();
        assert!(io.detach_device(3));
        assert_eq!(io.translate(3, VAddr(0x10_0000)), None);
        assert!(!io.detach_device(3), "second detach is a no-op");
    }

    #[test]
    fn destroy_domain_returns_frames() {
        let (mut a, mut io) = setup();
        let allocated_before = a.allocated_pages().len();
        let dom = io.create_domain(&mut a).unwrap();
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        io.map_4k(&mut a, dom, VAddr(0x10_0000), frame, EntryFlags::user_rw())
            .unwrap();
        io.unmap_4k(dom, VAddr(0x10_0000)).unwrap();
        a.dec_map_ref(frame);
        io.destroy_domain(&mut a, dom);
        assert_eq!(a.allocated_pages().len(), allocated_before);
        assert_eq!(io.domain_count(), 0);
    }

    #[test]
    fn closures_cover_all_domain_tables() {
        let (mut a, mut io) = setup();
        let d1 = io.create_domain(&mut a).unwrap();
        let d2 = io.create_domain(&mut a).unwrap();
        let f = a.alloc_mapped(PageSize::Size4K).unwrap();
        io.map_4k(&mut a, d1, VAddr(0x10_0000), f, EntryFlags::user_rw())
            .unwrap();
        let _ = d2;
        // d1: root + 3 levels; d2: root.
        assert_eq!(io.page_closure().len(), 5);
        assert!(io.is_wf());
    }
}
