//! The Atmosphere page table: flat permission storage + MMU refinement.
//!
//! This crate reproduces the subsystem the paper uses to demonstrate the
//! impact of its flat design (§6.2): a 4-level x86-64 page table supporting
//! 4 KiB / 2 MiB / 1 GiB mappings, whose abstract state is three maps from
//! virtual address to `(frame, permissions)` — one per page size — and
//! whose *refinement theorem* states that the abstract maps agree exactly
//! with what the hardware MMU resolves by walking the concrete tables
//! ([`atmo_hw::paging::walk_4level`]).
//!
//! Following the paper:
//!
//! * table frames at **every** level are owned via tracked permissions
//!   stored flat at the top of the page table (per-level [`atmo_spec::PermMap`]s) —
//!   no recursive ownership, so "other entries did not change" proofs need
//!   no unrolling through PML levels;
//! * each update step writes one entry of one level; steps that do not
//!   touch a leaf entry leave the abstract mapping unchanged, and the leaf
//!   step changes exactly one entry (§4.2 "Consistency of page table
//!   updates") — [`table::PageTable::map_4k_page`] is built from such
//!   steps and the step-consistency tests audit them individually;
//! * the page table's [`page_closure`](atmo_mem::PageClosure) is the set
//!   of frames backing its levels, feeding the bottom-up memory argument.
//!
//! [`iommu`] provides the IOMMU translation tables (same mechanics, one
//! table per device protection domain).

pub mod iommu;
pub mod refine;
pub mod table;

pub use iommu::{DeviceId, Iommu, IommuDomainId};
pub use refine::{refinement_wf, step_preserves_other_mappings};
pub use table::{BatchStats, MapEntry, MapError, PageTable, TableFrame};
