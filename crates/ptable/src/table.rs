//! The 4-level page table with flat, per-level permission storage.

use atmo_hw::addr::{PAddr, VAddr, ENTRIES_PER_TABLE, PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K};
use atmo_hw::paging::{EntryFlags, PageEntry, PhysFrameSource, ResolvedMapping};
use atmo_mem::{AllocError, PageAllocator, PageClosure, PagePtr, PageSize};
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::{Ghost, Map, PPtr, PermMap, PointsTo, Set};
use atmo_trace::{AuditDelta, KernelEvent, TraceHandle, TraceShare};

/// One 512-entry table frame, stored in simulated physical memory.
pub type TableFrame = [u64; ENTRIES_PER_TABLE];

/// An entry of the abstract mapping: where a virtual page points and with
/// which permissions (the paper's `MapEntry`, Listing 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapEntry {
    /// Physical frame backing the virtual page.
    pub frame: PagePtr,
    /// Access permissions.
    pub flags: EntryFlags,
}

/// Errors surfaced by mapping operations (and ultimately by the `mmap` /
/// `munmap` system calls).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The virtual address is already mapped (at any size).
    AlreadyMapped,
    /// The virtual address is not mapped.
    NotMapped,
    /// No memory for an intermediate table.
    OutOfMemory,
    /// Address not aligned for the requested page size.
    Misaligned,
    /// Address is not canonical.
    NonCanonical,
    /// A superpage and a table conflict at the same slot.
    SizeConflict,
}

impl From<AllocError> for MapError {
    fn from(_: AllocError) -> Self {
        MapError::OutOfMemory
    }
}

/// Statistics from a batched range operation: how many leaf writes paid
/// the full L3→L2→L1 walk and how many hit the walk cache (same L1 table
/// as the previous page). The caller charges cycles accordingly
/// (`pt_walk_cached_read + pt_fill_write` per cached fill versus
/// `3 × pt_level_read + pt_level_write` per first walk).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Pages that resolved the full L3→L2→L1 chain.
    pub first_walks: usize,
    /// Pages that reused the cached L1 frame.
    pub cached_fills: usize,
}

/// The page table.
///
/// Concrete state: the root frame (`cr3`) plus per-level flat permission
/// maps for every table frame. Ghost state: the three abstract mappings.
#[derive(Debug)]
pub struct PageTable {
    /// Physical address of the PML4 (root) frame — the value loaded into
    /// CR3.
    pub cr3: PagePtr,
    l4_table: PermMap<TableFrame>,
    l3_tables: PermMap<TableFrame>,
    l2_tables: PermMap<TableFrame>,
    l1_tables: PermMap<TableFrame>,
    /// Abstract 4 KiB mapping (`Ghost<Map<VAddr, MapEntry>>`, Listing 1).
    pub map_4k: Ghost<Map<usize, MapEntry>>,
    /// Abstract 2 MiB mapping.
    pub map_2m: Ghost<Map<usize, MapEntry>>,
    /// Abstract 1 GiB mapping.
    pub map_1g: Ghost<Map<usize, MapEntry>>,
    /// The combined `get_address_space()` view, maintained incrementally at
    /// every leaf step so [`PageTable::address_space`] is an O(1) handle
    /// clone instead of an O(n²) rebuild. Always equal to the union of the
    /// three per-size ghost maps (their key sets are disjoint: a slot holds
    /// either a leaf or a table, never both).
    space: Map<usize, (MapEntry, PageSize)>,
    /// Deferred TLB-shootdown queue: `(base va, pages)` runs whose
    /// invalidation has been queued but not yet broadcast. Flushed once per
    /// syscall epilogue (one `tlb_shootdown_batch` charge instead of one
    /// `tlb_invalidate` per page); must be empty whenever the mem domain is
    /// released (checked by `VmSubsystem::wf`).
    shootdown_queue: Vec<(usize, u64)>,
    /// Shootdown generation: bumped by every non-empty flush. A reader that
    /// observed generation `g` is guaranteed every queue entry from
    /// generations `< g` has been invalidated.
    shootdown_gen: u64,
    /// Map/unmap event sink (always-equal share: tracing does not change
    /// table state).
    trace: TraceShare,
}

impl PageTable {
    /// Creates an empty address space, allocating the root frame.
    pub fn new(alloc: &mut PageAllocator) -> Result<Self, AllocError> {
        let (cr3, perm) = alloc.alloc_page_4k()?;
        let (_ptr, points_to) = perm.into_object([0u64; ENTRIES_PER_TABLE]);
        let mut l4_table = PermMap::new();
        l4_table.tracked_insert(cr3, points_to);
        Ok(PageTable {
            cr3,
            l4_table,
            l3_tables: PermMap::new(),
            l2_tables: PermMap::new(),
            l1_tables: PermMap::new(),
            map_4k: Ghost::new(Map::empty()),
            map_2m: Ghost::new(Map::empty()),
            map_1g: Ghost::new(Map::empty()),
            space: Map::empty(),
            shootdown_queue: Vec::new(),
            shootdown_gen: 0,
            trace: TraceShare::detached(),
        })
    }

    /// Routes map/unmap events into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    // ----- entry read/write helpers (each is one hardware step, §4.2) ----

    fn read_entry(table: &PermMap<TableFrame>, frame: PagePtr, idx: usize) -> PageEntry {
        let perm = table.tracked_borrow(frame);
        PageEntry(PPtr::<TableFrame>::from_usize(frame).borrow(perm)[idx])
    }

    fn write_entry(table: &mut PermMap<TableFrame>, frame: PagePtr, idx: usize, e: PageEntry) {
        let perm = table.tracked_borrow_mut(frame);
        PPtr::<TableFrame>::from_usize(frame).borrow_mut(perm)[idx] = e.0;
    }

    /// Allocates a zeroed table frame into `level_map` and links it from
    /// `(parent_map, parent_frame, idx)`. One allocation + one entry write:
    /// a non-leaf step that provably does not change the abstract mapping.
    fn alloc_level(
        alloc: &mut PageAllocator,
        parent: (&mut PermMap<TableFrame>, PagePtr, usize),
        level_map: &mut PermMap<TableFrame>,
        trace: &TraceShare,
    ) -> Result<PagePtr, MapError> {
        let (page, perm) = alloc.alloc_page_4k()?;
        trace.audit(AuditDelta::VmAcquire(page));
        let (_ptr, points_to): (PPtr<TableFrame>, PointsTo<TableFrame>) =
            perm.into_object([0u64; ENTRIES_PER_TABLE]);
        level_map.tracked_insert(page, points_to);
        let (parent_map, parent_frame, idx) = parent;
        let link = PageEntry::encode(
            PAddr::new(page),
            EntryFlags {
                present: true,
                writable: true,
                user: true,
                huge: false,
                no_execute: false,
            },
        );
        Self::write_entry(parent_map, parent_frame, idx, link);
        Ok(page)
    }

    /// Step 1 of mapping: ensure the L3 table for `va` exists; returns its
    /// frame. Non-leaf step.
    pub fn ensure_l3(&mut self, alloc: &mut PageAllocator, va: VAddr) -> Result<PagePtr, MapError> {
        let e = Self::read_entry(&self.l4_table, self.cr3, va.l4_index());
        if e.is_present() {
            return Ok(e.frame().as_usize());
        }
        Self::alloc_level(
            alloc,
            (&mut self.l4_table, self.cr3, va.l4_index()),
            &mut self.l3_tables,
            &self.trace,
        )
    }

    /// Step 2: ensure the L2 table for `va` exists under L3 frame `l3`.
    /// Fails with [`MapError::SizeConflict`] when a 1 GiB mapping occupies
    /// the slot. Non-leaf step.
    pub fn ensure_l2(
        &mut self,
        alloc: &mut PageAllocator,
        l3: PagePtr,
        va: VAddr,
    ) -> Result<PagePtr, MapError> {
        let e = Self::read_entry(&self.l3_tables, l3, va.l3_index());
        if e.is_present() {
            if e.is_huge() {
                return Err(MapError::SizeConflict);
            }
            return Ok(e.frame().as_usize());
        }
        Self::alloc_level(
            alloc,
            (&mut self.l3_tables, l3, va.l3_index()),
            &mut self.l2_tables,
            &self.trace,
        )
    }

    /// Step 3: ensure the L1 table for `va` exists under L2 frame `l2`.
    /// Non-leaf step.
    pub fn ensure_l1(
        &mut self,
        alloc: &mut PageAllocator,
        l2: PagePtr,
        va: VAddr,
    ) -> Result<PagePtr, MapError> {
        let e = Self::read_entry(&self.l2_tables, l2, va.l2_index());
        if e.is_present() {
            if e.is_huge() {
                return Err(MapError::SizeConflict);
            }
            return Ok(e.frame().as_usize());
        }
        Self::alloc_level(
            alloc,
            (&mut self.l2_tables, l2, va.l2_index()),
            &mut self.l1_tables,
            &self.trace,
        )
    }

    /// Final leaf step of a 4 KiB map: writes the L1 entry and updates the
    /// ghost mapping by exactly one entry.
    pub fn write_leaf_4k(
        &mut self,
        l1: PagePtr,
        va: VAddr,
        frame: PagePtr,
        flags: EntryFlags,
    ) -> Result<(), MapError> {
        let e = Self::read_entry(&self.l1_tables, l1, va.l1_index());
        if e.is_present() {
            return Err(MapError::AlreadyMapped);
        }
        let mut leaf_flags = flags;
        leaf_flags.present = true;
        leaf_flags.huge = false;
        Self::write_entry(
            &mut self.l1_tables,
            l1,
            va.l1_index(),
            PageEntry::encode(PAddr::new(frame), leaf_flags),
        );
        let entry = MapEntry {
            frame,
            flags: leaf_flags,
        };
        self.map_4k.assign(self.map_4k.insert(va.as_usize(), entry));
        self.space = self.space.insert(va.as_usize(), (entry, PageSize::Size4K));
        self.trace.emit(KernelEvent::PtMap {
            va: va.as_usize(),
            frames: 1,
        });
        self.trace.audit(AuditDelta::RefInc(frame));
        Ok(())
    }

    /// Maps the 4 KiB page `frame` at `va`: the composition of the three
    /// non-leaf steps and one leaf step.
    pub fn map_4k_page(
        &mut self,
        alloc: &mut PageAllocator,
        va: VAddr,
        frame: PagePtr,
        flags: EntryFlags,
    ) -> Result<(), MapError> {
        if !va.is_canonical() {
            return Err(MapError::NonCanonical);
        }
        if !va.is_aligned(PAGE_SIZE_4K) {
            return Err(MapError::Misaligned);
        }
        let l3 = self.ensure_l3(alloc, va)?;
        let l2 = self.ensure_l2(alloc, l3, va)?;
        let l1 = self.ensure_l1(alloc, l2, va)?;
        self.write_leaf_4k(l1, va, frame, flags)
    }

    /// Maps a 2 MiB superpage at `va` (leaf at L2 with the PS bit).
    pub fn map_2m_page(
        &mut self,
        alloc: &mut PageAllocator,
        va: VAddr,
        frame: PagePtr,
        flags: EntryFlags,
    ) -> Result<(), MapError> {
        if !va.is_canonical() {
            return Err(MapError::NonCanonical);
        }
        if !va.is_aligned(PAGE_SIZE_2M) || !frame.is_multiple_of(PAGE_SIZE_2M) {
            return Err(MapError::Misaligned);
        }
        let l3 = self.ensure_l3(alloc, va)?;
        let l2 = self.ensure_l2(alloc, l3, va)?;
        let e = Self::read_entry(&self.l2_tables, l2, va.l2_index());
        if e.is_present() {
            return Err(if e.is_huge() {
                MapError::AlreadyMapped
            } else {
                MapError::SizeConflict
            });
        }
        let mut leaf = flags;
        leaf.present = true;
        leaf.huge = true;
        Self::write_entry(
            &mut self.l2_tables,
            l2,
            va.l2_index(),
            PageEntry::encode(PAddr::new(frame), leaf),
        );
        let entry = MapEntry { frame, flags: leaf };
        self.map_2m.assign(self.map_2m.insert(va.as_usize(), entry));
        self.space = self.space.insert(va.as_usize(), (entry, PageSize::Size2M));
        self.trace.emit(KernelEvent::PtMap {
            va: va.as_usize(),
            frames: PageSize::Size2M.frames() as u64,
        });
        self.trace.audit(AuditDelta::RefInc(frame));
        Ok(())
    }

    /// Maps a 1 GiB superpage at `va` (leaf at L3 with the PS bit).
    pub fn map_1g_page(
        &mut self,
        alloc: &mut PageAllocator,
        va: VAddr,
        frame: PagePtr,
        flags: EntryFlags,
    ) -> Result<(), MapError> {
        if !va.is_canonical() {
            return Err(MapError::NonCanonical);
        }
        if !va.is_aligned(PAGE_SIZE_1G) || !frame.is_multiple_of(PAGE_SIZE_1G) {
            return Err(MapError::Misaligned);
        }
        let l3 = self.ensure_l3(alloc, va)?;
        let e = Self::read_entry(&self.l3_tables, l3, va.l3_index());
        if e.is_present() {
            return Err(if e.is_huge() {
                MapError::AlreadyMapped
            } else {
                MapError::SizeConflict
            });
        }
        let mut leaf = flags;
        leaf.present = true;
        leaf.huge = true;
        Self::write_entry(
            &mut self.l3_tables,
            l3,
            va.l3_index(),
            PageEntry::encode(PAddr::new(frame), leaf),
        );
        let entry = MapEntry { frame, flags: leaf };
        self.map_1g.assign(self.map_1g.insert(va.as_usize(), entry));
        self.space = self.space.insert(va.as_usize(), (entry, PageSize::Size1G));
        self.trace.emit(KernelEvent::PtMap {
            va: va.as_usize(),
            frames: PageSize::Size1G.frames() as u64,
        });
        self.trace.audit(AuditDelta::RefInc(frame));
        Ok(())
    }

    /// Unmaps the 4 KiB page at `va`, returning the frame it mapped.
    /// Intermediate tables are retained (freed when the address space is
    /// destroyed), matching the paper's kernel.
    pub fn unmap_4k_page(&mut self, va: VAddr) -> Result<PagePtr, MapError> {
        let l3 = self.walk_to_l3(va).ok_or(MapError::NotMapped)?;
        let l2 = self.walk_entry(&self.l3_tables, l3, va.l3_index())?;
        let l1 = self.walk_entry(&self.l2_tables, l2, va.l2_index())?;
        let e = Self::read_entry(&self.l1_tables, l1, va.l1_index());
        if !e.is_present() {
            return Err(MapError::NotMapped);
        }
        Self::write_entry(&mut self.l1_tables, l1, va.l1_index(), PageEntry::zero());
        self.map_4k.assign(self.map_4k.remove(&va.as_usize()));
        self.space = self.space.remove(&va.as_usize());
        self.trace.emit(KernelEvent::PtUnmap {
            va: va.as_usize(),
            frames: 1,
        });
        self.trace.audit(AuditDelta::RefDec(e.frame().as_usize()));
        Ok(e.frame().as_usize())
    }

    /// Unmaps the 2 MiB superpage at `va`, returning its head frame.
    pub fn unmap_2m_page(&mut self, va: VAddr) -> Result<PagePtr, MapError> {
        let l3 = self.walk_to_l3(va).ok_or(MapError::NotMapped)?;
        let l2 = self.walk_entry(&self.l3_tables, l3, va.l3_index())?;
        let e = Self::read_entry(&self.l2_tables, l2, va.l2_index());
        if !e.is_present() || !e.is_huge() {
            return Err(MapError::NotMapped);
        }
        Self::write_entry(&mut self.l2_tables, l2, va.l2_index(), PageEntry::zero());
        self.map_2m.assign(self.map_2m.remove(&va.as_usize()));
        self.space = self.space.remove(&va.as_usize());
        self.trace.emit(KernelEvent::PtUnmap {
            va: va.as_usize(),
            frames: PageSize::Size2M.frames() as u64,
        });
        self.trace.audit(AuditDelta::RefDec(e.frame().as_usize()));
        Ok(e.frame().as_usize())
    }

    /// Unmaps the 1 GiB superpage at `va`, returning its head frame.
    pub fn unmap_1g_page(&mut self, va: VAddr) -> Result<PagePtr, MapError> {
        let l3 = self.walk_to_l3(va).ok_or(MapError::NotMapped)?;
        let e = Self::read_entry(&self.l3_tables, l3, va.l3_index());
        if !e.is_present() || !e.is_huge() {
            return Err(MapError::NotMapped);
        }
        Self::write_entry(&mut self.l3_tables, l3, va.l3_index(), PageEntry::zero());
        self.map_1g.assign(self.map_1g.remove(&va.as_usize()));
        self.space = self.space.remove(&va.as_usize());
        self.trace.emit(KernelEvent::PtUnmap {
            va: va.as_usize(),
            frames: PageSize::Size1G.frames() as u64,
        });
        self.trace.audit(AuditDelta::RefDec(e.frame().as_usize()));
        Ok(e.frame().as_usize())
    }

    // ----- batched range operations (walk cache) -------------------------

    /// Maps `frames[i]` at `base + i·4K` for every `i`, resolving the
    /// L3→L2→L1 chain once per L1-table run and filling contiguous PTEs.
    /// Ghost updates and trace events are identical to `frames.len()`
    /// individual [`PageTable::map_4k_page`] calls, so the abstract address
    /// space is bit-identical to the per-page path.
    ///
    /// On failure the pages already mapped by this call are unmapped again
    /// (intermediate tables are retained, as on the per-page path) and the
    /// error returned; the caller owns the frames throughout.
    pub fn map_range(
        &mut self,
        alloc: &mut PageAllocator,
        base: VAddr,
        frames: &[PagePtr],
        flags: EntryFlags,
    ) -> Result<BatchStats, MapError> {
        if !base.is_aligned(PAGE_SIZE_4K) {
            return Err(MapError::Misaligned);
        }
        let mut stats = BatchStats::default();
        // (l4, l3, l2 index triple) → resolved L1 frame for the run.
        let mut cache: Option<((usize, usize, usize), PagePtr)> = None;
        for (i, frame) in frames.iter().enumerate() {
            let va = VAddr(base.as_usize() + i * PAGE_SIZE_4K);
            if !va.is_canonical() {
                self.rollback_range(base, i);
                return Err(MapError::NonCanonical);
            }
            let key = (va.l4_index(), va.l3_index(), va.l2_index());
            let l1 = match cache {
                Some((k, l1)) if k == key => {
                    stats.cached_fills += 1;
                    l1
                }
                _ => {
                    stats.first_walks += 1;
                    let chain = self
                        .ensure_l3(alloc, va)
                        .and_then(|l3| self.ensure_l2(alloc, l3, va))
                        .and_then(|l2| self.ensure_l1(alloc, l2, va));
                    match chain {
                        Ok(l1) => l1,
                        Err(e) => {
                            self.rollback_range(base, i);
                            return Err(e);
                        }
                    }
                }
            };
            if let Err(e) = self.write_leaf_4k(l1, va, *frame, flags) {
                self.rollback_range(base, i);
                return Err(e);
            }
            cache = Some((key, l1));
        }
        Ok(stats)
    }

    /// Unmaps the already-mapped pages `base .. base + i·4K` (failure path
    /// of [`PageTable::map_range`]).
    fn rollback_range(&mut self, base: VAddr, n: usize) {
        for k in 0..n {
            let va = VAddr(base.as_usize() + k * PAGE_SIZE_4K);
            let _ = self.unmap_4k_page(va);
        }
    }

    /// Unmaps the `n` 4 KiB pages starting at `base` with the same walk
    /// cache as [`PageTable::map_range`], returning the frames in order.
    /// All-or-nothing: every page is verified mapped (at 4 KiB) before the
    /// first entry is touched.
    pub fn unmap_range(
        &mut self,
        base: VAddr,
        n: usize,
    ) -> Result<(Vec<PagePtr>, BatchStats), MapError> {
        if !base.is_aligned(PAGE_SIZE_4K) {
            return Err(MapError::Misaligned);
        }
        for k in 0..n {
            let va = base.as_usize() + k * PAGE_SIZE_4K;
            if !self.map_4k.contains_key(&va) {
                return Err(MapError::NotMapped);
            }
        }
        let mut stats = BatchStats::default();
        let mut frames = Vec::with_capacity(n);
        let mut cache: Option<((usize, usize, usize), PagePtr)> = None;
        for k in 0..n {
            let va = VAddr(base.as_usize() + k * PAGE_SIZE_4K);
            let key = (va.l4_index(), va.l3_index(), va.l2_index());
            let l1 = match cache {
                Some((c, l1)) if c == key => {
                    stats.cached_fills += 1;
                    l1
                }
                _ => {
                    stats.first_walks += 1;
                    let l3 = self.walk_to_l3(va).ok_or(MapError::NotMapped)?;
                    let l2 = self.walk_entry(&self.l3_tables, l3, va.l3_index())?;
                    self.walk_entry(&self.l2_tables, l2, va.l2_index())?
                }
            };
            let e = Self::read_entry(&self.l1_tables, l1, va.l1_index());
            debug_assert!(e.is_present(), "precheck guarantees presence");
            Self::write_entry(&mut self.l1_tables, l1, va.l1_index(), PageEntry::zero());
            self.map_4k.assign(self.map_4k.remove(&va.as_usize()));
            self.space = self.space.remove(&va.as_usize());
            self.trace.emit(KernelEvent::PtUnmap {
                va: va.as_usize(),
                frames: 1,
            });
            self.trace.audit(AuditDelta::RefDec(e.frame().as_usize()));
            frames.push(e.frame().as_usize());
            cache = Some((key, l1));
        }
        Ok((frames, stats))
    }

    /// Demotes the 2 MiB superpage at `va` back to 512 individual 4 KiB
    /// PTEs covering the same frames with the same permissions. The
    /// abstract per-4K coverage is unchanged — only the representation
    /// (one `Size2M` entry versus 512 `Size4K` entries) differs — so no
    /// map/unmap trace events are emitted. Returns the head frame; the
    /// caller splits the allocator's 2 MiB block to match
    /// ([`PageAllocator::split_mapped_2m`]).
    ///
    /// Costs one intermediate-table allocation (the new L1) plus the fills,
    /// charged by the caller.
    pub fn demote_2m(&mut self, alloc: &mut PageAllocator, va: VAddr) -> Result<PagePtr, MapError> {
        if !va.is_aligned(PAGE_SIZE_2M) {
            return Err(MapError::Misaligned);
        }
        let entry = *self
            .map_2m
            .index(&va.as_usize())
            .ok_or(MapError::NotMapped)?;
        let l3 = self.walk_to_l3(va).ok_or(MapError::NotMapped)?;
        let l2 = self.walk_entry(&self.l3_tables, l3, va.l3_index())?;
        // Replace the huge L2 leaf with a fresh L1 table, then fill it.
        let l1 = Self::alloc_level(
            alloc,
            (&mut self.l2_tables, l2, va.l2_index()),
            &mut self.l1_tables,
            &self.trace,
        )?;
        self.map_2m.assign(self.map_2m.remove(&va.as_usize()));
        self.space = self.space.remove(&va.as_usize());
        // The 2 MiB leaf site disappears; 512 4 KiB leaf sites replace it
        // (the head frame's site count is net-unchanged: −2M leaf, +k=0).
        self.trace.audit(AuditDelta::RefDec(entry.frame));
        let mut leaf_flags = entry.flags;
        leaf_flags.huge = false;
        for k in 0..ENTRIES_PER_TABLE {
            let pva = va.as_usize() + k * PAGE_SIZE_4K;
            let frame = entry.frame + k * PAGE_SIZE_4K;
            Self::write_entry(
                &mut self.l1_tables,
                l1,
                k,
                PageEntry::encode(PAddr::new(frame), leaf_flags),
            );
            let e = MapEntry {
                frame,
                flags: leaf_flags,
            };
            self.map_4k.assign(self.map_4k.insert(pva, e));
            self.space = self.space.insert(pva, (e, PageSize::Size4K));
            self.trace.audit(AuditDelta::RefInc(frame));
        }
        Ok(entry.frame)
    }

    // ----- deferred TLB shootdown ---------------------------------------

    /// Queues the invalidation of `pages` pages starting at `va` instead of
    /// broadcasting per-page `invlpg`s. The queue must be flushed (one
    /// `tlb_shootdown_batch` charge) before the mem domain is released;
    /// `VmSubsystem::wf` checks quiescence.
    pub fn defer_shootdown(&mut self, va: VAddr, pages: u64) {
        self.shootdown_queue.push((va.as_usize(), pages));
    }

    /// Pages with a queued-but-unflushed invalidation.
    pub fn pending_shootdowns(&self) -> u64 {
        self.shootdown_queue.iter().map(|(_, n)| n).sum()
    }

    /// Completed flush epochs.
    pub fn shootdown_generation(&self) -> u64 {
        self.shootdown_gen
    }

    /// Broadcasts one batched shootdown covering every queued run, bumping
    /// the generation. Returns the number of pages invalidated (0 = no
    /// flush was needed and no cycles should be charged).
    pub fn flush_shootdowns(&mut self) -> u64 {
        let n = self.pending_shootdowns();
        if n > 0 {
            self.shootdown_queue.clear();
            self.shootdown_gen += 1;
        }
        n
    }

    fn walk_to_l3(&self, va: VAddr) -> Option<PagePtr> {
        let e = Self::read_entry(&self.l4_table, self.cr3, va.l4_index());
        e.is_present().then(|| e.frame().as_usize())
    }

    fn walk_entry(
        &self,
        table: &PermMap<TableFrame>,
        frame: PagePtr,
        idx: usize,
    ) -> Result<PagePtr, MapError> {
        let e = Self::read_entry(table, frame, idx);
        if !e.is_present() || e.is_huge() {
            return Err(MapError::NotMapped);
        }
        Ok(e.frame().as_usize())
    }

    /// Resolves `va` exactly as the hardware MMU would (the trusted walk
    /// from `atmo-hw` over this table's frames).
    pub fn resolve(&self, va: VAddr) -> Option<ResolvedMapping> {
        atmo_hw::paging::walk_4level(self, PAddr::new(self.cr3), va)
    }

    /// Number of table frames owned (all levels).
    pub fn table_frame_count(&self) -> usize {
        self.l4_table.len() + self.l3_tables.len() + self.l2_tables.len() + self.l1_tables.len()
    }

    /// Releases all table frames to the allocator, consuming the table.
    ///
    /// # Panics
    ///
    /// Panics when live mappings remain — the caller must unmap (and
    /// account for) every user frame first, or kernel memory would leak.
    pub fn release(mut self, alloc: &mut PageAllocator) {
        assert!(
            self.map_4k.is_empty() && self.map_2m.is_empty() && self.map_1g.is_empty(),
            "releasing an address space with live mappings"
        );
        for map in [
            &mut self.l4_table,
            &mut self.l3_tables,
            &mut self.l2_tables,
            &mut self.l1_tables,
        ] {
            for frame in map.dom().to_vec() {
                let perm = map.tracked_remove(frame);
                let (page, _v) = atmo_mem::PagePermission::from_object(
                    PPtr::<TableFrame>::from_usize(frame),
                    perm,
                );
                self.trace.audit(AuditDelta::VmRelease(frame));
                alloc.free_page_4k(page);
            }
        }
    }

    /// The abstract address space as a single map over all page sizes,
    /// keyed by virtual address with the mapping size attached. This is
    /// the `get_address_space()` view the isolation invariants quantify
    /// over (§4.3).
    pub fn address_space(&self) -> Map<usize, (MapEntry, PageSize)> {
        // Maintained incrementally at every leaf step; returning it is an
        // O(1) persistent-handle clone. `space_rebuild_matches_cache` in
        // the tests pins the equivalence with the per-size ghost maps.
        self.space.clone()
    }

    /// The combined view rebuilt from scratch out of the three per-size
    /// ghost maps (the pre-batching definition of `address_space()`); used
    /// to audit the incrementally-maintained cache.
    pub fn rebuild_address_space(&self) -> Map<usize, (MapEntry, PageSize)> {
        let mut m = Map::empty();
        for (va, e) in self.map_4k.iter() {
            m = m.insert(*va, (*e, PageSize::Size4K));
        }
        for (va, e) in self.map_2m.iter() {
            m = m.insert(*va, (*e, PageSize::Size2M));
        }
        for (va, e) in self.map_1g.iter() {
            m = m.insert(*va, (*e, PageSize::Size1G));
        }
        m
    }

    /// Visits every leaf reference *site* of this address space — one
    /// call per present 4 KiB PTE / 2 MiB / 1 GiB leaf — passing the
    /// referenced head frame. Unlike [`PageTable::mapped_frames`] this
    /// preserves multiplicity: a frame mapped at two virtual addresses is
    /// visited twice, which is exactly what the incremental auditor's
    /// reference fold counts.
    pub fn visit_leaf_sites(&self, mut f: impl FnMut(PagePtr)) {
        for e in self.map_4k.values() {
            f(e.frame);
        }
        for e in self.map_2m.values() {
            f(e.frame);
        }
        for e in self.map_1g.values() {
            f(e.frame);
        }
    }

    /// The set of user frames this address space maps (head frames for
    /// superpages).
    pub fn mapped_frames(&self) -> Set<PagePtr> {
        self.map_4k
            .values()
            .chain(self.map_2m.values())
            .chain(self.map_1g.values())
            .map(|e| e.frame)
            .collect()
    }
}

impl PhysFrameSource for PageTable {
    fn read_table(&self, frame: PAddr) -> Option<TableFrame> {
        let f = frame.as_usize();
        for map in [
            &self.l4_table,
            &self.l3_tables,
            &self.l2_tables,
            &self.l1_tables,
        ] {
            if map.contains(f) {
                let perm = map.tracked_borrow(f);
                return Some(*PPtr::<TableFrame>::from_usize(f).borrow(perm));
            }
        }
        None
    }
}

impl PageClosure for PageTable {
    /// "A page table does not own any other objects, besides the physical
    /// pages used to construct the page table" (§4.2).
    fn page_closure(&self) -> Set<PagePtr> {
        let mut s = Set::empty();
        for map in [
            &self.l4_table,
            &self.l3_tables,
            &self.l2_tables,
            &self.l1_tables,
        ] {
            s = s.union(&map.dom());
        }
        s
    }
}

impl Invariant for PageTable {
    /// Structural well-formedness (the paper's "each entry in any PML
    /// level only maps to the next PML level"), stated flat over the
    /// per-level permission maps:
    ///
    /// 1. the root is owned and is the only L4 frame;
    /// 2. every present L4 entry points to an owned L3 frame; every
    ///    present non-huge L3/L2 entry points to an owned L2/L1 frame;
    /// 3. no table frame is referenced twice (the tree is a tree);
    /// 4. every owned frame below L4 is referenced (no orphans);
    /// 5. huge bits appear only where legal (L3/L2).
    fn wf(&self) -> VerifResult {
        check(
            self.l4_table.len() == 1 && self.l4_table.contains(self.cr3),
            "page_table",
            "root frame not owned exactly once",
        )?;

        let mut referenced_l3: Vec<PagePtr> = Vec::new();
        let mut referenced_l2: Vec<PagePtr> = Vec::new();
        let mut referenced_l1: Vec<PagePtr> = Vec::new();

        for idx in 0..ENTRIES_PER_TABLE {
            let e = Self::read_entry(&self.l4_table, self.cr3, idx);
            if e.is_present() {
                check(!e.is_huge(), "page_table", "huge bit at L4")?;
                referenced_l3.push(e.frame().as_usize());
            }
        }
        for l3 in self.l3_tables.dom().to_vec() {
            for idx in 0..ENTRIES_PER_TABLE {
                let e = Self::read_entry(&self.l3_tables, l3, idx);
                if e.is_present() && !e.is_huge() {
                    referenced_l2.push(e.frame().as_usize());
                }
            }
        }
        for l2 in self.l2_tables.dom().to_vec() {
            for idx in 0..ENTRIES_PER_TABLE {
                let e = Self::read_entry(&self.l2_tables, l2, idx);
                if e.is_present() && !e.is_huge() {
                    referenced_l1.push(e.frame().as_usize());
                }
            }
        }

        for (name, refs, owned) in [
            ("L3", &referenced_l3, self.l3_tables.dom()),
            ("L2", &referenced_l2, self.l2_tables.dom()),
            ("L1", &referenced_l1, self.l1_tables.dom()),
        ] {
            let ref_set: Set<PagePtr> = refs.iter().copied().collect();
            check(
                ref_set.len() == refs.len(),
                "page_table",
                format!("{name} frame referenced more than once"),
            )?;
            check(
                ref_set == owned,
                "page_table",
                format!("{name} referenced frames differ from owned frames"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::addr::index2va;
    use atmo_hw::boot::BootInfo;

    fn setup() -> (PageAllocator, PageTable) {
        let mut alloc = PageAllocator::new(&BootInfo::simulated(16, 1, ""));
        let pt = PageTable::new(&mut alloc).unwrap();
        (alloc, pt)
    }

    #[test]
    fn empty_table_is_wf_and_resolves_nothing() {
        let (_a, pt) = setup();
        assert!(pt.is_wf());
        assert_eq!(pt.resolve(VAddr(0x1000)), None);
        assert_eq!(pt.table_frame_count(), 1);
    }

    #[test]
    fn map_4k_then_mmu_resolves_it() {
        let (mut a, mut pt) = setup();
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        let va = VAddr(0x40_0000);
        pt.map_4k_page(&mut a, va, frame, EntryFlags::user_rw())
            .unwrap();
        assert!(pt.is_wf());

        let r = pt.resolve(va).expect("MMU resolves the new mapping");
        assert_eq!(r.frame.as_usize(), frame);
        assert_eq!(r.size, PAGE_SIZE_4K);
        assert!(r.flags.writable && r.flags.user);

        // Ghost map agrees (the refinement relation, checked pointwise).
        let ghost = pt.map_4k.index(&va.as_usize()).unwrap();
        assert_eq!(ghost.frame, frame);
    }

    #[test]
    fn double_map_rejected() {
        let (mut a, mut pt) = setup();
        let f1 = a.alloc_mapped(PageSize::Size4K).unwrap();
        let f2 = a.alloc_mapped(PageSize::Size4K).unwrap();
        let va = VAddr(0x40_0000);
        pt.map_4k_page(&mut a, va, f1, EntryFlags::user_rw())
            .unwrap();
        assert_eq!(
            pt.map_4k_page(&mut a, va, f2, EntryFlags::user_rw()),
            Err(MapError::AlreadyMapped)
        );
    }

    #[test]
    fn unmap_restores_unmapped_state() {
        let (mut a, mut pt) = setup();
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        let va = VAddr(0x40_0000);
        pt.map_4k_page(&mut a, va, frame, EntryFlags::user_rw())
            .unwrap();
        assert_eq!(pt.unmap_4k_page(va), Ok(frame));
        assert_eq!(pt.resolve(va), None);
        assert!(!pt.map_4k.contains_key(&va.as_usize()));
        assert_eq!(pt.unmap_4k_page(va), Err(MapError::NotMapped));
        assert!(pt.is_wf());
    }

    #[test]
    fn map_2m_superpage() {
        let (mut a, mut pt) = setup();
        let frame = a.alloc_mapped(PageSize::Size2M).unwrap();
        let va = VAddr(0x4000_0000);
        pt.map_2m_page(&mut a, va, frame, EntryFlags::user_rw())
            .unwrap();
        assert!(pt.is_wf());
        let r = pt.resolve(va).unwrap();
        assert_eq!(r.size, PAGE_SIZE_2M);
        assert_eq!(r.frame.as_usize(), frame);
        // An address inside the superpage resolves to the same leaf.
        let inside = pt.resolve(VAddr(va.as_usize() + 0x5000)).unwrap();
        assert_eq!(inside.frame.as_usize(), frame);
        assert_eq!(pt.unmap_2m_page(va), Ok(frame));
        assert!(pt.is_wf());
    }

    #[test]
    fn map_1g_superpage() {
        let (mut a, mut pt) = setup();
        // 16 MiB of RAM cannot assemble a real 1 GiB block; map an
        // arbitrary (device) frame address instead — the page table does
        // not require the frame to come from the allocator.
        let frame = 0x4000_0000usize;
        let va = VAddr(0x80_0000_0000);
        pt.map_1g_page(&mut a, va, frame, EntryFlags::user_ro())
            .unwrap();
        let r = pt.resolve(va).unwrap();
        assert_eq!(r.size, PAGE_SIZE_1G);
        assert!(!r.flags.writable);
        assert_eq!(pt.unmap_1g_page(va), Ok(frame));
        assert!(pt.is_wf());
    }

    #[test]
    fn size_conflicts_detected() {
        let (mut a, mut pt) = setup();
        let f4k = a.alloc_mapped(PageSize::Size4K).unwrap();
        let va = VAddr(0x4000_0000);
        pt.map_4k_page(&mut a, va, f4k, EntryFlags::user_rw())
            .unwrap();
        // A 2 MiB map over the same slot hits the existing L1 table.
        let f2m = 0x20_0000usize;
        assert_eq!(
            pt.map_2m_page(&mut a, va, f2m, EntryFlags::user_rw()),
            Err(MapError::SizeConflict)
        );
        // And a 4 KiB map under an existing 1 GiB superpage conflicts too.
        let va_g = VAddr(0x80_0000_0000);
        pt.map_1g_page(&mut a, va_g, 0x4000_0000, EntryFlags::user_rw())
            .unwrap();
        assert_eq!(
            pt.map_4k_page(&mut a, va_g, f4k, EntryFlags::user_rw()),
            Err(MapError::SizeConflict)
        );
    }

    #[test]
    fn misaligned_and_noncanonical_rejected() {
        let (mut a, mut pt) = setup();
        assert_eq!(
            pt.map_4k_page(&mut a, VAddr(0x123), 0x1000, EntryFlags::user_rw()),
            Err(MapError::Misaligned)
        );
        assert_eq!(
            pt.map_4k_page(
                &mut a,
                VAddr(0x0000_8000_0000_0000),
                0x1000,
                EntryFlags::user_rw()
            ),
            Err(MapError::NonCanonical)
        );
        assert_eq!(
            pt.map_2m_page(&mut a, VAddr(0x1000), 0x20_0000, EntryFlags::user_rw()),
            Err(MapError::Misaligned)
        );
    }

    #[test]
    fn page_closure_is_table_frames() {
        let (mut a, mut pt) = setup();
        let before = pt.page_closure();
        assert_eq!(before.len(), 1);
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        pt.map_4k_page(&mut a, VAddr(0x40_0000), frame, EntryFlags::user_rw())
            .unwrap();
        // Mapping allocated an L3, L2 and L1 table: closure grows by 3 and
        // never includes the user frame.
        let after = pt.page_closure();
        assert_eq!(after.len(), 4);
        assert!(!after.contains(&frame));
    }

    #[test]
    fn release_returns_all_frames() {
        let (mut a, mut pt) = setup();
        let free_before = a.free_pages_4k().len();
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();
        pt.map_4k_page(&mut a, VAddr(0x40_0000), frame, EntryFlags::user_rw())
            .unwrap();
        pt.unmap_4k_page(VAddr(0x40_0000)).unwrap();
        a.dec_map_ref(frame);
        pt.release(&mut a);
        assert_eq!(a.free_pages_4k().len(), free_before + 1); // +cr3 page released... cr3 was allocated in setup
        assert!(a.allocated_pages().is_empty());
    }

    #[test]
    fn two_mappings_in_same_l1_table_share_tables() {
        let (mut a, mut pt) = setup();
        let f1 = a.alloc_mapped(PageSize::Size4K).unwrap();
        let f2 = a.alloc_mapped(PageSize::Size4K).unwrap();
        pt.map_4k_page(&mut a, VAddr(0x40_0000), f1, EntryFlags::user_rw())
            .unwrap();
        let frames_after_first = pt.table_frame_count();
        pt.map_4k_page(&mut a, VAddr(0x40_1000), f2, EntryFlags::user_rw())
            .unwrap();
        assert_eq!(
            pt.table_frame_count(),
            frames_after_first,
            "adjacent page reuses the same L1 table"
        );
        assert!(pt.is_wf());
    }

    #[test]
    fn index2va_mapping_visible_through_enumeration() {
        let (mut a, mut pt) = setup();
        let f = a.alloc_mapped(PageSize::Size4K).unwrap();
        let va = index2va(5, 6, 7, 8);
        pt.map_4k_page(&mut a, va, f, EntryFlags::user_rw())
            .unwrap();
        let all = atmo_hw::paging::enumerate_mappings(&pt, PAddr::new(pt.cr3));
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, va);
    }
}
