//! The page-table refinement theorem, executable.
//!
//! §6.2 of the paper: "in mappings of 4KiB pages, we use four-level spec
//! functions to simulate the address resolution of the MMU and prove that
//! the `mapping_4k()` matches what the MMU will theoretically see". The
//! two `forall` statements of the paper become [`refinement_wf`]:
//!
//! 1. **domain equality** — a virtual address is in the abstract mapping
//!    iff the MMU walk resolves it (per page size);
//! 2. **value equality** — for every mapped address, the resolved frame
//!    and permissions equal the abstract entry.
//!
//! Instead of quantifying over all 512⁴ index tuples, the executable check
//! enumerates the concrete tables (`enumerate_mappings`, the exhaustive
//! MMU view) and compares both directions — equivalent, and exact.
//!
//! [`step_preserves_other_mappings`] is the "most complicated part of the
//! proof" (§6.2): after any update step, the resolution of every *other*
//! virtual address is unchanged. With flat per-level permissions this is a
//! direct set comparison (the paper needs ~30 lines of proof; NrOS' nested
//! design needed ~200 of manual unrolling).

use atmo_hw::addr::{PAddr, VAddr, PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K};
use atmo_hw::paging::{enumerate_mappings, walk_4level};
use atmo_spec::harness::{check, VerifResult};
use atmo_spec::Map;

use crate::table::{MapEntry, PageTable};

/// Checks the full refinement relation between `pt`'s ghost maps and the
/// hardware MMU view of its concrete tables.
pub fn refinement_wf(pt: &PageTable) -> VerifResult {
    let hw = enumerate_mappings(pt, PAddr::new(pt.cr3));

    let mut hw_4k: Map<usize, MapEntry> = Map::empty();
    let mut hw_2m: Map<usize, MapEntry> = Map::empty();
    let mut hw_1g: Map<usize, MapEntry> = Map::empty();
    for (va, r) in &hw {
        let entry = MapEntry {
            frame: r.frame.as_usize(),
            flags: r.flags,
        };
        match r.size {
            PAGE_SIZE_4K => hw_4k = hw_4k.insert(va.as_usize(), entry),
            PAGE_SIZE_2M => hw_2m = hw_2m.insert(va.as_usize(), entry),
            PAGE_SIZE_1G => hw_1g = hw_1g.insert(va.as_usize(), entry),
            _ => unreachable!("MMU resolves only the three architectural sizes"),
        }
    }

    // Direction 1 (paper's first forall): domains agree.
    check(
        pt.map_4k.dom() == hw_4k.dom(),
        "pt_refinement",
        "abstract 4K domain differs from MMU view",
    )?;
    check(
        pt.map_2m.dom() == hw_2m.dom(),
        "pt_refinement",
        "abstract 2M domain differs from MMU view",
    )?;
    check(
        pt.map_1g.dom() == hw_1g.dom(),
        "pt_refinement",
        "abstract 1G domain differs from MMU view",
    )?;

    // Direction 2 (paper's second forall): values agree.
    check(
        *pt.map_4k.view() == hw_4k,
        "pt_refinement",
        "abstract 4K entries differ from MMU resolution",
    )?;
    check(
        *pt.map_2m.view() == hw_2m,
        "pt_refinement",
        "abstract 2M entries differ from MMU resolution",
    )?;
    check(
        *pt.map_1g.view() == hw_1g,
        "pt_refinement",
        "abstract 1G entries differ from MMU resolution",
    )?;

    // The incrementally-maintained combined view (what `address_space()`
    // hands out without a rebuild) is exactly the union of the per-size
    // maps.
    check(
        pt.address_space() == pt.rebuild_address_space(),
        "pt_refinement",
        "cached address-space view diverged from the per-size ghost maps",
    )
}

/// Checks step consistency (§4.2): between `before` (the MMU view captured
/// before an update step) and the current state of `pt`, the resolution of
/// every virtual address other than `touched` is unchanged, and at most
/// `touched` changed. For non-leaf steps pass `touched = None`: the views
/// must be identical.
pub fn step_preserves_other_mappings(
    before: &[(VAddr, atmo_hw::paging::ResolvedMapping)],
    pt: &PageTable,
    touched: Option<VAddr>,
) -> VerifResult {
    let after = enumerate_mappings(pt, PAddr::new(pt.cr3));

    // Every pre-existing mapping other than `touched` is still resolved
    // identically.
    for (va, r) in before {
        if Some(*va) == touched {
            continue;
        }
        check(
            walk_4level(pt, PAddr::new(pt.cr3), *va) == Some(*r),
            "pt_step",
            format!("mapping at {va:?} changed by an unrelated step"),
        )?;
    }
    // No new mapping other than `touched` appeared.
    for (va, _) in &after {
        if Some(*va) == touched {
            continue;
        }
        check(
            before.iter().any(|(b, _)| b == va),
            "pt_step",
            format!("unexpected new mapping at {va:?}"),
        )?;
    }
    // The step changed at most one entry overall.
    let delta = after.len().abs_diff(before.len());
    check(
        delta <= 1,
        "pt_step",
        format!("step changed {delta} leaf mappings"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::boot::BootInfo;
    use atmo_hw::paging::EntryFlags;
    use atmo_mem::{PageAllocator, PageSize};

    fn setup() -> (PageAllocator, PageTable) {
        let mut alloc = PageAllocator::new(&BootInfo::simulated(16, 1, ""));
        let pt = PageTable::new(&mut alloc).unwrap();
        (alloc, pt)
    }

    #[test]
    fn refinement_holds_through_map_unmap_sequence() {
        let (mut a, mut pt) = setup();
        assert!(refinement_wf(&pt).is_ok());
        let mut mapped = Vec::new();
        for i in 0..24usize {
            let f = a.alloc_mapped(PageSize::Size4K).unwrap();
            let va = VAddr(0x40_0000 + i * 0x1000 * 7); // scatter across L1 slots
            pt.map_4k_page(&mut a, va, f, EntryFlags::user_rw())
                .unwrap();
            mapped.push((va, f));
            assert!(refinement_wf(&pt).is_ok(), "after map {i}");
        }
        for (va, _f) in mapped.iter().take(12) {
            pt.unmap_4k_page(*va).unwrap();
            assert!(refinement_wf(&pt).is_ok());
        }
    }

    #[test]
    fn refinement_holds_with_mixed_sizes() {
        let (mut a, mut pt) = setup();
        let f4 = a.alloc_mapped(PageSize::Size4K).unwrap();
        let f2m = a.alloc_mapped(PageSize::Size2M).unwrap();
        pt.map_4k_page(&mut a, VAddr(0x40_0000), f4, EntryFlags::user_rw())
            .unwrap();
        pt.map_2m_page(&mut a, VAddr(0x4000_0000), f2m, EntryFlags::user_ro())
            .unwrap();
        pt.map_1g_page(
            &mut a,
            VAddr(0x80_0000_0000),
            0x4000_0000,
            EntryFlags::user_rw(),
        )
        .unwrap();
        assert!(refinement_wf(&pt).is_ok());
    }

    #[test]
    fn stepwise_map_audits_each_hardware_step() {
        // §4.2: non-leaf steps leave the address space unchanged; the leaf
        // step changes exactly one entry. Drive the steps individually.
        let (mut a, mut pt) = setup();
        let f_pre = a.alloc_mapped(PageSize::Size4K).unwrap();
        pt.map_4k_page(&mut a, VAddr(0x13_0000_0000), f_pre, EntryFlags::user_rw())
            .unwrap();

        let va = VAddr(0x40_0000);
        let frame = a.alloc_mapped(PageSize::Size4K).unwrap();

        let snap0 = enumerate_mappings(&pt, PAddr::new(pt.cr3));
        let l3 = pt.ensure_l3(&mut a, va).unwrap();
        assert!(step_preserves_other_mappings(&snap0, &pt, None).is_ok());

        let snap1 = enumerate_mappings(&pt, PAddr::new(pt.cr3));
        let l2 = pt.ensure_l2(&mut a, l3, va).unwrap();
        assert!(step_preserves_other_mappings(&snap1, &pt, None).is_ok());

        let snap2 = enumerate_mappings(&pt, PAddr::new(pt.cr3));
        let l1 = pt.ensure_l1(&mut a, l2, va).unwrap();
        assert!(step_preserves_other_mappings(&snap2, &pt, None).is_ok());

        let snap3 = enumerate_mappings(&pt, PAddr::new(pt.cr3));
        pt.write_leaf_4k(l1, va, frame, EntryFlags::user_rw())
            .unwrap();
        assert!(step_preserves_other_mappings(&snap3, &pt, Some(va)).is_ok());
        assert_eq!(
            enumerate_mappings(&pt, PAddr::new(pt.cr3)).len(),
            snap3.len() + 1
        );
        assert!(refinement_wf(&pt).is_ok());
    }

    #[test]
    fn superpage_map_is_a_single_leaf_step() {
        // §4.2 step consistency also covers superpage leaves: the 2 MiB
        // map changes exactly one entry; the unmap removes exactly it.
        let (mut a, mut pt) = setup();
        let f4 = a.alloc_mapped(PageSize::Size4K).unwrap();
        pt.map_4k_page(&mut a, VAddr(0x40_0000), f4, EntryFlags::user_rw())
            .unwrap();

        let f2m = a.alloc_mapped(PageSize::Size2M).unwrap();
        let va = VAddr(0x4000_0000);
        let snap = enumerate_mappings(&pt, PAddr::new(pt.cr3));
        pt.map_2m_page(&mut a, va, f2m, EntryFlags::user_rw())
            .unwrap();
        assert!(step_preserves_other_mappings(&snap, &pt, Some(va)).is_ok());
        assert!(refinement_wf(&pt).is_ok());

        let snap = enumerate_mappings(&pt, PAddr::new(pt.cr3));
        pt.unmap_2m_page(va).unwrap();
        assert!(step_preserves_other_mappings(&snap, &pt, Some(va)).is_ok());
        assert!(refinement_wf(&pt).is_ok());
        a.dec_map_ref(f2m);
        a.dec_map_ref(f4);
    }

    #[test]
    fn step_checker_catches_collateral_damage() {
        // Sanity-check the checker itself: unmapping a *different* address
        // is collateral damage a single-step audit must reject.
        let (mut a, mut pt) = setup();
        let f1 = a.alloc_mapped(PageSize::Size4K).unwrap();
        let f2 = a.alloc_mapped(PageSize::Size4K).unwrap();
        let va1 = VAddr(0x40_0000);
        let va2 = VAddr(0x50_0000);
        pt.map_4k_page(&mut a, va1, f1, EntryFlags::user_rw())
            .unwrap();
        pt.map_4k_page(&mut a, va2, f2, EntryFlags::user_rw())
            .unwrap();

        let snap = enumerate_mappings(&pt, PAddr::new(pt.cr3));
        pt.unmap_4k_page(va2).unwrap();
        // Claiming the step touched va1 must fail: va2 changed.
        assert!(step_preserves_other_mappings(&snap, &pt, Some(va1)).is_err());
        // Correctly attributing the step to va2 passes.
        assert!(step_preserves_other_mappings(&snap, &pt, Some(va2)).is_ok());
    }
}
