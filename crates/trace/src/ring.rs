//! The fixed-capacity per-CPU event ring.

use atmo_spec::harness::{check, VerifResult};

use crate::event::KernelEvent;

/// A bounded ring of `(sequence, event)` pairs.
///
/// `head` is the sequence number of the *next* event to be pushed;
/// `tail` is the sequence number of the oldest retained event. Both are
/// monotone `u64`s over the ring's lifetime. The backing store is
/// allocated once at construction ("boot") and never grows: when the
/// ring is full, a push overwrites the oldest slot, advances `tail` and
/// increments the explicit `dropped` counter. A push therefore never
/// blocks and never allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRing {
    slots: Vec<Option<(u64, KernelEvent)>>,
    head: u64,
    tail: u64,
    dropped: u64,
}

impl EventRing {
    /// A ring retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity (an event ring must hold events).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "event ring needs capacity");
        EventRing {
            slots: vec![None; capacity],
            head: 0,
            tail: 0,
            dropped: 0,
        }
    }

    /// Slots in the backing store.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sequence number of the next push.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Sequence number of the oldest retained event.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Events overwritten before they could be read.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events (`head − tail`).
    pub fn len(&self) -> usize {
        (self.head - self.tail) as usize
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Appends `ev`, overwriting the oldest event when full.
    pub fn push(&mut self, ev: KernelEvent) {
        let cap = self.slots.len() as u64;
        if self.head - self.tail == cap {
            self.tail += 1;
            self.dropped += 1;
        }
        let idx = (self.head % cap) as usize;
        self.slots[idx] = Some((self.head, ev));
        self.head += 1;
    }

    /// Retained events, oldest first, with their sequence numbers.
    pub fn iter(&self) -> impl Iterator<Item = (u64, KernelEvent)> + '_ {
        let cap = self.slots.len() as u64;
        (self.tail..self.head).map(move |seq| {
            let (s, ev) = self.slots[(seq % cap) as usize].expect("retained slot populated");
            debug_assert_eq!(s, seq);
            (s, ev)
        })
    }

    /// Ring well-formedness: index coherence, `tail ≤ head`,
    /// `head − tail ≤ capacity`, every retained slot carries its own
    /// sequence number, and `dropped` accounts exactly for the advanced
    /// tail (overwrite is the only way the tail moves).
    pub fn wf(&self) -> VerifResult {
        let cap = self.slots.len() as u64;
        check(cap > 0, "trace_ring", "zero-capacity ring")?;
        check(
            self.tail <= self.head,
            "trace_ring",
            format!("tail {} ahead of head {}", self.tail, self.head),
        )?;
        check(
            self.head - self.tail <= cap,
            "trace_ring",
            format!(
                "ring holds {} events over capacity {cap}",
                self.head - self.tail
            ),
        )?;
        check(
            self.dropped == self.tail,
            "trace_ring",
            format!(
                "dropped counter {} disagrees with advanced tail {}",
                self.dropped, self.tail
            ),
        )?;
        for seq in self.tail..self.head {
            let slot = self.slots[(seq % cap) as usize];
            check(
                matches!(slot, Some((s, _)) if s == seq),
                "trace_ring",
                format!("slot for sequence {seq} holds {slot:?}"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SyscallKind;

    fn ev(i: usize) -> KernelEvent {
        KernelEvent::PtMap { va: i, frames: 1 }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let vas: Vec<usize> = r
            .iter()
            .map(|(_, e)| match e {
                KernelEvent::PtMap { va, .. } => va,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vas, vec![0, 1, 2, 3, 4]);
        assert!(r.wf().is_ok());
    }

    #[test]
    fn overflow_overwrites_oldest_and_counts_drops() {
        let mut r = EventRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
            assert!(r.wf().is_ok(), "{:?}", r.wf());
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.head(), 10);
        assert_eq!(r.tail(), 6);
        let first = r.iter().next().unwrap();
        assert_eq!(first.0, 6, "oldest retained sequence");
    }

    #[test]
    fn sequences_are_monotone_across_kinds() {
        let mut r = EventRing::new(16);
        r.push(KernelEvent::SyscallEnter {
            kind: SyscallKind::Yield,
        });
        r.push(ev(1));
        let seqs: Vec<u64> = r.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1]);
    }
}
