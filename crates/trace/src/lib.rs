//! The tracing subsystem: per-CPU kernel event rings, syscall latency
//! histograms and per-subsystem counters.
//!
//! The paper's evaluation (§6) is built on measuring kernel hot paths —
//! IPC round trips, map/unmap, driver batches. This crate is the
//! measurement substrate for those paths in the reproduction: every
//! kernel transition can emit a typed [`KernelEvent`] into a
//! fixed-capacity per-CPU [`EventRing`], syscall latencies are folded
//! into log2-bucketed [`LatencyHist`]s keyed by syscall kind, and each
//! subsystem maintains a monotone [`Counters`] block. A merged
//! [`Snapshot`] serializes all of it in the same plain-text report style
//! as the `results/repro-*.txt` artefacts.
//!
//! Like every other subsystem in this reproduction, the trace state
//! carries its own flat, quantifier-only well-formedness invariant
//! ([`trace_wf`]): ring indices are coherent (`tail ≤ head`,
//! `head − tail ≤ capacity`, stored sequence numbers match), histogram
//! totals equal the per-kind event counts, and counters never decrease
//! between audits. The kernel conjoins `trace_wf` into its `total_wf`
//! check, so a lost or double-counted event is a verification failure,
//! not a silently wrong benchmark number.
//!
//! Design constraints mirror a real kernel tracer:
//!
//! * **Never blocks, never allocates after boot** — [`EventRing`] is a
//!   fixed array; when full, the oldest event is overwritten and the
//!   explicit `dropped` counter advances.
//! * **Per-CPU attribution without a global lock** — each OS thread
//!   drives one simulated CPU at a time, so [`TraceSink`] keeps a
//!   thread-local current-CPU cell set at syscall entry; subsystem code
//!   deep in the call graph emits without threading a CPU id through
//!   every signature, and the sink itself is sharded per CPU so distinct
//!   CPUs never contend on emission.
//! * **Shared, not global** — the sink is per kernel instance
//!   ([`TraceHandle`] = `Arc<TraceSink>`), so concurrently running
//!   kernels (the test harness runs many) never mix events.

pub mod audit;
pub mod counters;
pub mod event;
pub mod hist;
pub mod ring;
pub mod sink;
pub mod snapshot;

pub use audit::AuditDelta;
pub use counters::{
    AuditCounters, BlkCounters, Counters, DriverCounters, FastpathCounters, HttpdCounters,
    LockCounters, LocksCounters, MemCounters, NetCounters, NrCounters, PmCounters, PtableCounters,
    SchedCounters, VmCounters,
};
pub use event::{DeviceKind, EventKind, KernelEvent, ReturnClass, SyscallKind};
pub use hist::LatencyHist;
pub use ring::EventRing;
pub use sink::{
    ns_to_cycles, trace_wf, BlkOutcome, FastpathOutcome, HttpdOutcome, LockDomain, NetOutcome,
    NrOutcome, SchedOutcome, SyscallStats, TraceHandle, TraceShare, TraceSink, VmOutcome,
};
pub use snapshot::{CpuSummary, Snapshot, SyscallSummary};

/// Default per-CPU ring capacity (events retained before overwrite).
pub const DEFAULT_RING_CAPACITY: usize = 4096;
