//! The merged trace snapshot and its plain-text report rendering.

use crate::counters::Counters;
use crate::event::{EventKind, SyscallKind, NUM_EVENT_KINDS};
use crate::hist::LatencyHist;

/// One CPU's ring summary at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuSummary {
    /// CPU index.
    pub cpu: usize,
    /// Ring head sequence number (= events ever pushed on this CPU).
    pub head: u64,
    /// Ring tail sequence number.
    pub tail: u64,
    /// Events overwritten before being read.
    pub dropped: u64,
    /// Events pushed, by [`EventKind`].
    pub kinds: [u64; NUM_EVENT_KINDS],
    /// Dispatcher entries by syscall kind (indexed by
    /// [`SyscallKind::index`]).
    pub per_kind_enters: Vec<u64>,
    /// Dispatcher returns by syscall kind.
    pub per_kind_exits: Vec<u64>,
}

impl CpuSummary {
    /// Total dispatcher returns on this CPU.
    pub fn syscall_exits(&self) -> u64 {
        self.per_kind_exits.iter().sum()
    }
}

/// Merged per-kind syscall statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyscallSummary {
    /// Which syscall.
    pub kind: SyscallKind,
    /// Dispatcher entries.
    pub enters: u64,
    /// Dispatcher returns.
    pub exits: u64,
    /// Success-class returns.
    pub ok: u64,
    /// Error-class returns.
    pub errs: u64,
    /// Mean latency in modeled cycles.
    pub mean_cycles: u64,
    /// Median latency (log2-bucket resolution).
    pub p50_cycles: u64,
    /// 90th-percentile latency.
    pub p90_cycles: u64,
    /// 99th-percentile latency.
    pub p99_cycles: u64,
    /// Largest observed latency.
    pub max_cycles: u64,
}

/// A coherent point-in-time view of the whole trace subsystem, taken
/// under one lock acquisition (for `SmpKernel`, under the big lock).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-CPU ring summaries.
    pub per_cpu: Vec<CpuSummary>,
    /// Merged syscall statistics, one entry per [`SyscallKind`].
    pub syscalls: Vec<SyscallSummary>,
    /// Merged event counts by [`EventKind`].
    pub kinds: [u64; NUM_EVENT_KINDS],
    /// Subsystem counters.
    pub counters: Counters,
    /// Packet-pool slots in flight (acquired − released) at snapshot
    /// time — a gauge, kept apart from the monotone counters.
    pub net_in_flight: i64,
    /// Block-pool slots in flight (acquired − released) at snapshot
    /// time — the blk datapath's gauge, same discipline.
    pub blk_in_flight: i64,
    /// Latency distribution of incremental (ledger-fold) audits, in
    /// modeled cycles.
    pub audit_incremental_hist: LatencyHist,
    /// Latency distribution of full stop-the-world audits.
    pub audit_full_hist: LatencyHist,
    /// Distribution of ledger entries folded per incremental audit (the
    /// touched-set size each O(touched) audit actually paid for).
    pub audit_touched_hist: LatencyHist,
    /// Distribution of modeled cycles syscalls waited to acquire the pm
    /// domain lock (meter catch-up to the lock's model time).
    pub lock_wait_pm_hist: LatencyHist,
    /// Distribution of modeled cycles syscalls waited to acquire the
    /// mem domain lock.
    pub lock_wait_mem_hist: LatencyHist,
    /// Live httpd connections (accepts − closes) at snapshot time — a
    /// gauge derived from the merged counters, kept apart from the
    /// monotone blocks like the pool in-flight gauges.
    pub httpd_conns_live: i64,
    /// Distribution of ready-set sizes per httpd event-loop iteration
    /// (one sample per poll, empty iterations included — the measured
    /// form of the O(ready) event-loop claim).
    pub httpd_ready_hist: LatencyHist,
    /// Distribution of run-queue pick costs in modeled cycles (one
    /// sample per pick — the measured form of the O(1)-in-tenants
    /// scheduler claim).
    pub sched_pick_hist: LatencyHist,
    /// Events ever pushed across all CPUs.
    pub total_events: u64,
    /// Events overwritten across all CPUs.
    pub total_dropped: u64,
}

impl Snapshot {
    /// The merged statistics for `kind`.
    pub fn syscall(&self, kind: SyscallKind) -> &SyscallSummary {
        &self.syscalls[kind.index()]
    }

    /// Completed calls of `kind` across all CPUs.
    pub fn exits(&self, kind: SyscallKind) -> u64 {
        self.syscall(kind).exits
    }

    /// Total completed syscalls across all CPUs and kinds.
    pub fn total_syscall_exits(&self) -> u64 {
        self.syscalls.iter().map(|s| s.exits).sum()
    }

    /// Renders the snapshot in the `results/repro-*.txt` report style.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Trace snapshot: per-CPU event rings ==\n");
        out.push_str(&table(
            &["CPU", "Events", "Retained", "Dropped", "Syscalls"],
            self.per_cpu
                .iter()
                .map(|c| {
                    vec![
                        format!("{}", c.cpu),
                        format!("{}", c.head),
                        format!("{}", c.head - c.tail),
                        format!("{}", c.dropped),
                        format!("{}", c.syscall_exits()),
                    ]
                })
                .collect(),
        ));
        out.push_str("\n== Trace snapshot: syscall latency (modeled cycles) ==\n");
        out.push_str(&table(
            &[
                "Syscall", "Calls", "Ok", "Err", "Mean", "p50", "p90", "p99", "Max",
            ],
            self.syscalls
                .iter()
                .filter(|s| s.enters > 0)
                .map(|s| {
                    vec![
                        s.kind.name().to_string(),
                        format!("{}", s.exits),
                        format!("{}", s.ok),
                        format!("{}", s.errs),
                        format!("{}", s.mean_cycles),
                        format!("{}", s.p50_cycles),
                        format!("{}", s.p90_cycles),
                        format!("{}", s.p99_cycles),
                        format!("{}", s.max_cycles),
                    ]
                })
                .collect(),
        ));
        out.push_str("\n== Trace snapshot: lock domains ==\n");
        let locks = [
            ("pm", &self.counters.locks.pm),
            ("mem", &self.counters.locks.mem),
            ("trace", &self.counters.locks.trace),
        ];
        out.push_str(&table(
            &["Domain", "Acquisitions", "Contended", "MaxHoldCycles"],
            locks
                .iter()
                .map(|(name, l)| {
                    vec![
                        name.to_string(),
                        format!("{}", l.acquisitions),
                        format!("{}", l.contended),
                        format!("{}", l.hold_max_cycles),
                    ]
                })
                .collect(),
        ));
        out.push_str("\n== Trace snapshot: lock wait (modeled cycles) ==\n");
        let waits = [
            ("lock.wait_cycles.pm", &self.lock_wait_pm_hist),
            ("lock.wait_cycles.mem", &self.lock_wait_mem_hist),
        ];
        out.push_str(&table(
            &["Domain", "Waits", "Mean", "p50", "p90", "p99", "Max"],
            waits
                .iter()
                .map(|(name, h)| {
                    vec![
                        name.to_string(),
                        format!("{}", h.count()),
                        format!("{}", h.mean()),
                        format!("{}", h.p50()),
                        format!("{}", h.p90()),
                        format!("{}", h.p99()),
                        format!("{}", h.max()),
                    ]
                })
                .collect(),
        ));
        out.push_str("\n== Trace snapshot: wf audits ==\n");
        let audits = [
            ("audit.incremental", &self.audit_incremental_hist),
            ("audit.full", &self.audit_full_hist),
            ("audit.touched_entries", &self.audit_touched_hist),
        ];
        out.push_str(&table(
            &["Audit", "Count", "Mean", "p50", "p90", "p99", "Max"],
            audits
                .iter()
                .map(|(name, h)| {
                    vec![
                        name.to_string(),
                        format!("{}", h.count()),
                        format!("{}", h.mean()),
                        format!("{}", h.p50()),
                        format!("{}", h.p90()),
                        format!("{}", h.p99()),
                        format!("{}", h.max()),
                    ]
                })
                .collect(),
        ));
        if self.httpd_ready_hist.count() > 0 || self.counters.httpd.accepts > 0 {
            out.push_str("\n== Trace snapshot: httpd event core ==\n");
            let h = &self.httpd_ready_hist;
            out.push_str(&table(
                &["Metric", "Count", "Mean", "p50", "p90", "p99", "Max"],
                vec![vec![
                    "httpd.ready_batch".to_string(),
                    format!("{}", h.count()),
                    format!("{}", h.mean()),
                    format!("{}", h.p50()),
                    format!("{}", h.p90()),
                    format!("{}", h.p99()),
                    format!("{}", h.max()),
                ]],
            ));
        }
        if self.sched_pick_hist.count() > 0 {
            out.push_str("\n== Trace snapshot: scheduler picks ==\n");
            let h = &self.sched_pick_hist;
            out.push_str(&table(
                &["Metric", "Count", "Mean", "p50", "p90", "p99", "Max"],
                vec![vec![
                    "sched.pick_cycles".to_string(),
                    format!("{}", h.count()),
                    format!("{}", h.mean()),
                    format!("{}", h.p50()),
                    format!("{}", h.p90()),
                    format!("{}", h.p99()),
                    format!("{}", h.max()),
                ]],
            ));
        }
        out.push_str("\n== Trace snapshot: events and subsystem counters ==\n");
        let mut rows: Vec<Vec<String>> = EventKind::ALL
            .iter()
            .map(|k| {
                vec![
                    format!("events.{}", k.name()),
                    format!("{}", self.kinds[k.index()]),
                ]
            })
            .collect();
        for (name, v) in self.counters.flat() {
            rows.push(vec![name.to_string(), format!("{v}")]);
        }
        rows.push(vec![
            "net.in_flight (gauge)".to_string(),
            format!("{}", self.net_in_flight),
        ]);
        rows.push(vec![
            "blk.in_flight (gauge)".to_string(),
            format!("{}", self.blk_in_flight),
        ]);
        rows.push(vec![
            "httpd.conns_live (gauge)".to_string(),
            format!("{}", self.httpd_conns_live),
        ]);
        out.push_str(&table(&["Counter", "Value"], rows));
        out.push_str(&format!(
            "\n{} events on {} CPUs, {} dropped, {} syscalls completed.\n",
            self.total_events,
            self.per_cpu.len(),
            self.total_dropped,
            self.total_syscall_exits()
        ));
        out
    }
}

/// Renders a left-aligned column table in the house report style
/// (header row, dashed rule, padded cells).
fn table(headers: &[&str], rows: Vec<Vec<String>>) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    let rule_len = widths.iter().map(|w| w + 2).sum::<usize>();
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReturnClass;
    use crate::sink::TraceSink;

    #[test]
    fn render_mentions_active_syscalls_only() {
        let sink = TraceSink::new(2, 16);
        sink.syscall_enter(0, SyscallKind::Yield);
        sink.syscall_exit(0, SyscallKind::Yield, ReturnClass::Ok, 500);
        let text = sink.snapshot().render();
        assert!(text.contains("== Trace snapshot: per-CPU event rings =="));
        assert!(text.contains("yield"));
        assert!(!text.contains("iommu_map"), "inactive kinds are omitted");
        assert!(text.contains("events.syscall_exit"));
    }

    #[test]
    fn totals_reconcile() {
        let sink = TraceSink::new(4, 16);
        for cpu in 0..4 {
            sink.syscall_enter(cpu, SyscallKind::Mmap);
            sink.syscall_exit(cpu, SyscallKind::Mmap, ReturnClass::Ok, 1000 + cpu as u64);
        }
        let snap = sink.snapshot();
        assert_eq!(snap.total_syscall_exits(), 4);
        assert_eq!(snap.exits(SyscallKind::Mmap), 4);
        let per_cpu: u64 = snap.per_cpu.iter().map(|c| c.syscall_exits()).sum();
        assert_eq!(per_cpu, snap.total_syscall_exits());
    }
}
