//! Audit-ledger deltas: the incremental well-formedness substrate.
//!
//! Every kernel mutation that moves a page between closures, creates or
//! destroys a capability, fills or drains a per-CPU cache, or
//! acquires/releases a pool handle emits one [`AuditDelta`] into the
//! emitting CPU's trace shard (when recording is enabled — see
//! [`TraceSink::set_audit_recording`](crate::TraceSink::set_audit_recording)).
//! The kernel's incremental auditor drains the per-CPU ledgers and folds
//! the deltas into commutative set folds
//! ([`atmo_spec::fold`]), re-establishing the global closure/leak
//! equations in O(touched) without taking a single domain lock or
//! draining a cache.
//!
//! Deltas ride in the trace shards — *not* in the event rings — because
//! the rings are bounded and reconciled exactly per kind; ledger entries
//! must never be dropped or double-counted, so they live in their own
//! unbounded-but-drained side channel.

/// One incremental-audit ledger entry. Frames and identifiers are plain
/// `usize` (page pointers, address-space ids, endpoint pointers) so the
/// delta stays `Copy` and ledger pushes never allocate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditDelta {
    /// A page entered the process manager's closure (kernel object).
    PmAcquire(usize),
    /// A page left the process manager's closure.
    PmRelease(usize),
    /// A page entered a page table's closure (table frame).
    VmAcquire(usize),
    /// A page left a page table's closure.
    VmRelease(usize),
    /// A frame moved into the allocator's `Allocated` state.
    Allocated(usize),
    /// A frame left the allocator's `Allocated` state.
    Freed(usize),
    /// A head frame entered the allocator's `Mapped` state.
    MapInsert(usize),
    /// A head frame left the allocator's `Mapped` state (last reference).
    MapRemove(usize),
    /// A new reference site (page-table leaf, pending grant, IPC-buffer
    /// grant, IOMMU leaf) now names this frame.
    RefInc(usize),
    /// A reference site dropped this frame.
    RefDec(usize),
    /// A frame entered a per-CPU page cache (stays `Allocated`, belongs
    /// to no closure).
    CacheFill(usize),
    /// A frame left a per-CPU page cache.
    CacheDrain(usize),
    /// An address space was created in the VM subsystem.
    SpaceCreate(usize),
    /// An address space was destroyed.
    SpaceDestroy(usize),
    /// A process now claims this address-space id.
    ProcSpace(usize),
    /// A process stopped claiming this address-space id.
    ProcSpaceGone(usize),
    /// An endpoint capability was created.
    CapCreate(usize),
    /// An endpoint capability was destroyed.
    CapDestroy(usize),
    /// Net-pool handles moved in (+) or out (−) of flight.
    HandleNet(i64),
    /// Blk-pool handles moved in (+) or out (−) of flight.
    HandleBlk(i64),
    /// Ops appended to a node-replication operation log. The auditor
    /// balances the running sum against the logs' published tails, so a
    /// mutation that bypassed the log (or an append that bypassed the
    /// serializing domain lock) shows up as a ledger imbalance.
    NrAppended(u64),
    /// CPU-budget units granted to a container account (weight refill).
    /// Conservation: `granted = consumed + refunded + remaining`, so a
    /// grant raises both `granted` and `remaining`.
    BudgetGrant(u64),
    /// CPU-budget units consumed by a container's threads running
    /// (raises `consumed`, lowers `remaining`).
    BudgetCharge(u64),
    /// CPU-budget units refunded when an account is torn down (raises
    /// `refunded`, lowers `remaining` — the linear resource is returned,
    /// never dropped).
    BudgetRefund(u64),
}
