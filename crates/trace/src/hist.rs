//! Log2-bucketed cycle-latency histograms.

use atmo_spec::harness::{check, VerifResult};

/// Number of log2 buckets: bucket `b` covers `[2^(b−1), 2^b)` cycles,
/// with bucket 0 holding zero-cycle samples. 64 buckets cover the whole
/// `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// A latency distribution over modeled cycles (from `hw::cycles`).
///
/// Fixed storage, O(1) record, percentiles reported as the upper bound
/// of the containing bucket (standard log2-histogram resolution: within
/// 2× of the true value).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    total_cycles: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(cycles: u64) -> usize {
    (64 - cycles.leading_zeros()) as usize
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            total_cycles: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds one sample in.
    pub fn record(&mut self, cycles: u64) {
        self.buckets[bucket_of(cycles)] += 1;
        self.count += 1;
        self.total_cycles = self.total_cycles.saturating_add(cycles);
        self.min = self.min.min(cycles);
        self.max = self.max.max(cycles);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.total_cycles.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-th percentile (0 < p ≤ 100) as the upper bound of the
    /// bucket containing that rank; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket b, clamped to the observed max.
                let upper = if b == 0 { 0 } else { (1u128 << b) - 1 } as u64;
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile (bucket-resolution).
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Folds `other` into `self` (used to merge per-CPU histograms).
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_cycles = self.total_cycles.saturating_add(other.total_cycles);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Histogram well-formedness: the bucket sum equals the sample
    /// count, and min/max bracket a nonempty distribution.
    pub fn wf(&self) -> VerifResult {
        let sum: u64 = self.buckets.iter().sum();
        check(
            sum == self.count,
            "trace_hist",
            format!("bucket sum {sum} != count {}", self.count),
        )?;
        if self.count > 0 {
            check(
                self.min <= self.max,
                "trace_hist",
                format!("min {} above max {}", self.min, self.max),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn percentiles_bracket_the_samples() {
        let mut h = LatencyHist::new();
        for c in [
            100u64, 200, 300, 400, 1000, 2000, 4000, 8000, 100_000, 100_000,
        ] {
            h.record(c);
        }
        assert_eq!(h.count(), 10);
        assert!(h.wf().is_ok());
        assert!(h.p50() >= 400 && h.p50() <= 2047, "p50 = {}", h.p50());
        assert!(h.p99() >= 8000, "p99 = {}", h.p99());
        assert_eq!(h.max(), 100_000);
        assert_eq!(h.min(), 100);
    }

    #[test]
    fn merge_adds_distributions() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1000);
        assert!(a.wf().is_ok());
    }

    #[test]
    fn empty_histogram_is_wf_and_zero() {
        let h = LatencyHist::new();
        assert!(h.wf().is_ok());
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.min(), 0);
    }
}
