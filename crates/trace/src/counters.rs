//! Monotone per-subsystem counter blocks.
//!
//! Counters only ever increase (the `trace_wf` audit enforces this
//! between checks via a low-water mark); a decreasing counter would mean
//! lost events.

use atmo_spec::harness::{check, VerifResult};

/// Process-manager counters (scheduling and IPC).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PmCounters {
    /// Times a CPU's running thread changed.
    pub context_switches: u64,
    /// Messages sent over endpoints (send/call/reply deliveries).
    pub ipc_sends: u64,
    /// Messages received from endpoints (recv/poll completions).
    pub ipc_recvs: u64,
    /// Send/recv operations completed by direct rendezvous with an
    /// already-waiting partner (the paper's IPC fast path).
    pub rendezvous: u64,
    /// Direct-handoff fastpath statistics (Call/ReplyRecv).
    pub fastpath: FastpathCounters,
}

/// IPC fastpath hit/miss statistics. Hits are direct handoffs that
/// switched `current` straight to the partner; each `fallback_*` field
/// counts one reason the fastpath bailed to the slow rendezvous.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastpathCounters {
    /// Direct handoffs performed.
    pub hits: u64,
    /// Partner queue was absent or on the sending side.
    pub fallback_wrong_side: u64,
    /// Endpoint queue full — the slow path's capacity check fired.
    pub fallback_queue_full: u64,
    /// Partner's home CPU differs from the caller's.
    pub fallback_cross_cpu: u64,
    /// Payload carries a capability grant that needs the mem domain.
    pub fallback_cap_transfer: u64,
    /// Handoff budget exhausted — yielded to the run queue instead.
    pub fallback_budget: u64,
    /// Descriptor-slot cache lookups that skipped validation.
    pub slot_cache_hits: u64,
    /// Descriptor-slot cache lookups that fell through to the table.
    pub slot_cache_misses: u64,
}

impl FastpathCounters {
    fn merge(&mut self, other: &FastpathCounters) {
        self.hits += other.hits;
        self.fallback_wrong_side += other.fallback_wrong_side;
        self.fallback_queue_full += other.fallback_queue_full;
        self.fallback_cross_cpu += other.fallback_cross_cpu;
        self.fallback_cap_transfer += other.fallback_cap_transfer;
        self.fallback_budget += other.fallback_budget;
        self.slot_cache_hits += other.slot_cache_hits;
        self.slot_cache_misses += other.slot_cache_misses;
    }

    /// Total fastpath attempts that missed, across all reasons.
    pub fn fallbacks(&self) -> u64 {
        self.fallback_wrong_side
            + self.fallback_queue_full
            + self.fallback_cross_cpu
            + self.fallback_cap_transfer
            + self.fallback_budget
    }
}

/// Page-allocator counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Allocation operations.
    pub allocs: u64,
    /// 4 KiB frames handed out.
    pub frames_allocated: u64,
    /// Free operations.
    pub frees: u64,
    /// 4 KiB frames returned.
    pub frames_freed: u64,
}

/// Page-table counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PtableCounters {
    /// Leaf entries written.
    pub maps: u64,
    /// Leaf entries cleared.
    pub unmaps: u64,
    /// 4 KiB frames covered by written leaves.
    pub frames_mapped: u64,
    /// 4 KiB frames uncovered by cleared leaves.
    pub frames_unmapped: u64,
}

/// Batched-VM-datapath counters (walk cache, superpage promotion, and
/// deferred TLB shootdowns). Counter-only — like
/// [`FastpathCounters`], these annotate work whose ring events are
/// already emitted by the allocator and page table, so they never enter
/// the per-kind event reconciliation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmCounters {
    /// Batched leaf fills that reused the cached L1 walk instead of
    /// resolving the L3→L2→L1 chain again.
    pub map_batch_hits: u64,
    /// 512-page runs promoted to a single 2 MiB entry.
    pub superpage_promotions: u64,
    /// Promoted entries split back into 512 4 KiB entries (partial
    /// unmap or DMA pinning inside the region).
    pub superpage_demotions: u64,
    /// Pages whose TLB invalidation was queued for a batched shootdown.
    pub tlb_shootdowns_deferred: u64,
    /// Pages invalidated by batched shootdown flushes. Never exceeds
    /// the deferred count on a shard: a flush only drains what the same
    /// syscall queued (`trace_wf` checks this).
    pub tlb_shootdowns_flushed: u64,
}

impl VmCounters {
    fn merge(&mut self, other: &VmCounters) {
        self.map_batch_hits += other.map_batch_hits;
        self.superpage_promotions += other.superpage_promotions;
        self.superpage_demotions += other.superpage_demotions;
        self.tlb_shootdowns_deferred += other.tlb_shootdowns_deferred;
        self.tlb_shootdowns_flushed += other.tlb_shootdowns_flushed;
    }
}

/// Zero-copy network datapath counters (packet-buffer pool, batched
/// zero-copy RX/TX, and RSS flow steering). Counter-only — like
/// [`VmCounters`], they annotate datapath work whose ring events (if
/// any) are emitted by the driver, so they never enter the per-kind
/// event reconciliation. The pool gauge `acquired - released` is the
/// number of `PktBuf` handles in flight; `trace_wf` checks it against
/// the sink's in-flight gauge on the merged view (a handle may be
/// released on a different CPU than it was acquired on, so the equation
/// holds globally, not per shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Pool slots handed out (`PktBuf` handles created).
    pub pool_acquired: u64,
    /// Pool slots returned.
    pub pool_released: u64,
    /// Acquire attempts that found the pool empty (backpressure events,
    /// not failures — the datapath retries after draining TX).
    pub pool_exhausted: u64,
    /// Zero-copy receive batches.
    pub rx_zc_batches: u64,
    /// Frames across all zero-copy receive batches.
    pub rx_zc_frames: u64,
    /// Zero-copy transmit batches.
    pub tx_zc_batches: u64,
    /// Frames across all zero-copy transmit batches.
    pub tx_zc_frames: u64,
    /// Frames whose flow key steered to the local queue's CPU.
    pub steer_hits: u64,
    /// Frames that arrived on the wrong queue for their flow.
    pub steer_misses: u64,
    /// Frames copied out of the pool into an owned buffer (the non-zero-
    /// copy fallback, e.g. for consumers still wanting a `Packet`).
    pub fallback_copies: u64,
}

impl NetCounters {
    fn merge(&mut self, other: &NetCounters) {
        self.pool_acquired += other.pool_acquired;
        self.pool_released += other.pool_released;
        self.pool_exhausted += other.pool_exhausted;
        self.rx_zc_batches += other.rx_zc_batches;
        self.rx_zc_frames += other.rx_zc_frames;
        self.tx_zc_batches += other.tx_zc_batches;
        self.tx_zc_frames += other.tx_zc_frames;
        self.steer_hits += other.steer_hits;
        self.steer_misses += other.steer_misses;
        self.fallback_copies += other.fallback_copies;
    }
}

/// Zero-copy block datapath counters (block-buffer pool, batched SQ
/// submission and CQ reaping, and completion wakeups). Counter-only —
/// like [`NetCounters`], they annotate datapath work whose ring events
/// (if any) are emitted by the driver or dispatcher, so they never
/// enter the per-kind event reconciliation. The pool gauge
/// `acquired - released` is the number of `BlkBuf` handles in flight;
/// `trace_wf` checks it against the sink's blk in-flight gauge on the
/// merged view, and additionally that reaped I/Os never exceed
/// submitted I/Os globally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlkCounters {
    /// Pool slots handed out (`BlkBuf` handles created).
    pub pool_acquired: u64,
    /// Pool slots returned.
    pub pool_released: u64,
    /// Acquire attempts that found the pool empty (backpressure events,
    /// not failures — the datapath reaps completions and retries).
    pub pool_exhausted: u64,
    /// Batched SQ doorbell rings.
    pub submit_batches: u64,
    /// I/O commands across all submission batches.
    pub submit_ios: u64,
    /// Batched CQ reap passes that returned at least one completion.
    pub reap_batches: u64,
    /// Completions across all reap batches.
    pub reap_ios: u64,
    /// Parked reapers woken by a completion (modeled on the Call/
    /// ReplyRecv direct-handoff fast path).
    pub wakeups: u64,
    /// Blocks copied out of the pool into an owned buffer (the non-
    /// zero-copy fallback).
    pub fallback_copies: u64,
}

impl BlkCounters {
    fn merge(&mut self, other: &BlkCounters) {
        self.pool_acquired += other.pool_acquired;
        self.pool_released += other.pool_released;
        self.pool_exhausted += other.pool_exhausted;
        self.submit_batches += other.submit_batches;
        self.submit_ios += other.submit_ios;
        self.reap_batches += other.reap_batches;
        self.reap_ios += other.reap_ios;
        self.wakeups += other.wakeups;
        self.fallback_copies += other.fallback_copies;
    }
}

/// Node-replication counters (per-CPU replicas over the shared op
/// log). Counter-only — like [`VmCounters`], they annotate datapath
/// work and never enter the per-kind event reconciliation. `trace_wf`
/// checks `combine_batches <= appended` (every flat-combining flush
/// carries at least one op) and
/// `replayed <= appended * (replicas + 1)` (each appended op is
/// replayed at most once per replica plus the auditor's shadow
/// replica) on the merged view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NrCounters {
    /// Ops appended to the shared operation log.
    pub appended: u64,
    /// Flat-combining flushes performed (each drains every CPU's
    /// pending slot into the log; only non-empty drains count).
    pub combine_batches: u64,
    /// Ops replayed onto replicas (local post-update replay, read-path
    /// catch-up, and epoch synchronization).
    pub replayed: u64,
    /// Read syscalls answered from the local replica, lock-free.
    pub read_local: u64,
    /// Read syscalls served by the locked domain path instead (node
    /// replication disabled, or a unified/big-lock dispatch).
    pub fallback_locked: u64,
}

impl NrCounters {
    fn merge(&mut self, other: &NrCounters) {
        self.appended += other.appended;
        self.combine_batches += other.combine_batches;
        self.replayed += other.replayed;
        self.read_local += other.read_local;
        self.fallback_locked += other.fallback_locked;
    }
}

/// Well-formedness audit counters. `incremental` counts O(touched)
/// ledger-fold audits, `full` counts stop-the-world flat audits, and
/// `touched_entries` accumulates the ledger entries folded by
/// incremental audits. Every full audit folds the pending ledger first
/// (that fold *is* an incremental audit), so `incremental >= full`
/// always — `trace_wf` checks this on the merged view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditCounters {
    /// Incremental (ledger-fold) audits performed.
    pub incremental: u64,
    /// Full stop-the-world audits performed.
    pub full: u64,
    /// Ledger entries folded across all incremental audits.
    pub touched_entries: u64,
}

impl AuditCounters {
    fn merge(&mut self, other: &AuditCounters) {
        self.incremental += other.incremental;
        self.full += other.full;
        self.touched_entries += other.touched_entries;
    }
}

/// Event-driven httpd counters (per-CPU connection shards, timer
/// wheels, readiness rings). Counter-only — like [`NetCounters`] they
/// annotate app-level datapath work and never enter the per-kind event
/// reconciliation. `trace_wf` checks `closes <= accepts` (the live
/// gauge `accepts - closes` never goes negative), that timeout-driven
/// closes never exceed total closes, that `unparked <= parked`
/// (backpressure parks resolve at most once), and that the sink's
/// ready-batch histogram holds exactly `polls` samples — every
/// event-loop iteration records its ready-set size, including empty
/// ones.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HttpdCounters {
    /// Connections opened (table slots handed out).
    pub accepts: u64,
    /// Connections closed (slot recycled under a new generation).
    pub closes: u64,
    /// Requests fully served (response streamed to TX).
    pub served: u64,
    /// Closes forced by the keepalive timer (idle connections).
    pub timeouts_keepalive: u64,
    /// Closes forced by the read-header timer (slowloris).
    pub timeouts_header: u64,
    /// Closes forced by the write-drain timer (stuck TX).
    pub timeouts_drain: u64,
    /// Timer-wheel nodes moved (or fired) by level-boundary cascades.
    pub wheel_cascades: u64,
    /// Connections parked on packet-pool exhaustion (backpressure).
    pub parked: u64,
    /// Parked connections resumed after TX freed pool slots.
    pub unparked: u64,
    /// Requests rejected as malformed by the incremental parser.
    pub malformed: u64,
    /// Event-loop iterations (ready-ring drains, including empty ones).
    pub polls: u64,
}

impl HttpdCounters {
    fn merge(&mut self, other: &HttpdCounters) {
        self.accepts += other.accepts;
        self.closes += other.closes;
        self.served += other.served;
        self.timeouts_keepalive += other.timeouts_keepalive;
        self.timeouts_header += other.timeouts_header;
        self.timeouts_drain += other.timeouts_drain;
        self.wheel_cascades += other.wheel_cascades;
        self.parked += other.parked;
        self.unparked += other.unparked;
        self.malformed += other.malformed;
        self.polls += other.polls;
    }
}

/// Multi-tenant scheduler counters (bitmap-indexed MLFQ, per-container
/// budget accounts, IPC budget inheritance). Counter-only — like
/// [`FastpathCounters`], they annotate scheduling work whose ring
/// events (context switches) are already emitted, so they never enter
/// the per-kind event reconciliation. `trace_wf` checks that the sink's
/// pick-latency histogram holds exactly `picks` samples, that
/// `unparked <= parked` (a parked thread resumes at most once per
/// park), and `unthrottles <= throttles` on the merged view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Run-queue picks (dispatch/rotate decisions that scanned the
    /// priority bitmap). Each records one pick-latency sample.
    pub picks: u64,
    /// Threads enqueued onto a run-queue level.
    pub enqueues: u64,
    /// Threads removed from the run queues (dequeue or teardown).
    pub removes: u64,
    /// Threads parked off the run queues (container throttled).
    pub parked: u64,
    /// Parked threads re-enqueued after a budget refill.
    pub unparked: u64,
    /// Container accounts throttled on budget exhaustion.
    pub throttles: u64,
    /// Container accounts unthrottled by the refill wheel.
    pub unthrottles: u64,
    /// Budget refills performed by the hierarchical timer wheel.
    pub refills: u64,
    /// IPC direct handoffs that inherited the client's budget account.
    pub inherited_handoffs: u64,
    /// MLFQ level demotions (a thread exhausted its slice).
    pub demotions: u64,
}

impl SchedCounters {
    fn merge(&mut self, other: &SchedCounters) {
        self.picks += other.picks;
        self.enqueues += other.enqueues;
        self.removes += other.removes;
        self.parked += other.parked;
        self.unparked += other.unparked;
        self.throttles += other.throttles;
        self.unthrottles += other.unthrottles;
        self.refills += other.refills;
        self.inherited_handoffs += other.inherited_handoffs;
        self.demotions += other.demotions;
    }
}

/// Driver counters (ixgbe + NVMe).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverCounters {
    /// Receive/completion batches.
    pub rx_batches: u64,
    /// Items across all receive batches.
    pub rx_items: u64,
    /// Transmit/submission batches.
    pub tx_batches: u64,
    /// Items across all transmit batches.
    pub tx_items: u64,
}

/// One lock domain's acquisition statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockCounters {
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held (slow path).
    pub contended: u64,
    /// Longest single hold, in modeled cycles. Only ever grows, so it
    /// stays monotone under the low-water audit.
    pub hold_max_cycles: u64,
}

impl LockCounters {
    fn merge(&mut self, other: &LockCounters) {
        self.acquisitions += other.acquisitions;
        self.contended += other.contended;
        self.hold_max_cycles = self.hold_max_cycles.max(other.hold_max_cycles);
    }
}

/// Per-domain lock statistics (satellite of the lock-sharding refactor).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocksCounters {
    /// Process-manager domain lock.
    pub pm: LockCounters,
    /// Memory domain lock.
    pub mem: LockCounters,
    /// Trace-shard locks.
    pub trace: LockCounters,
}

/// All subsystem counter blocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Process manager.
    pub pm: PmCounters,
    /// Page allocator.
    pub mem: MemCounters,
    /// Page tables.
    pub ptable: PtableCounters,
    /// Batched VM datapath.
    pub vm: VmCounters,
    /// Drivers.
    pub drivers: DriverCounters,
    /// Zero-copy network datapath.
    pub net: NetCounters,
    /// Zero-copy block datapath.
    pub blk: BlkCounters,
    /// Node-replicated read paths.
    pub nr: NrCounters,
    /// Event-driven httpd (connection shards, wheels, readiness).
    pub httpd: HttpdCounters,
    /// Multi-tenant scheduler (MLFQ picks, budgets, inheritance).
    pub sched: SchedCounters,
    /// Well-formedness audits.
    pub audit: AuditCounters,
    /// Domain locks.
    pub locks: LocksCounters,
}

impl Counters {
    /// Every counter as a labelled flat list (for reports and the
    /// monotonicity audit).
    pub fn flat(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("pm.context_switches", self.pm.context_switches),
            ("pm.ipc_sends", self.pm.ipc_sends),
            ("pm.ipc_recvs", self.pm.ipc_recvs),
            ("pm.rendezvous", self.pm.rendezvous),
            ("pm.fastpath.hits", self.pm.fastpath.hits),
            (
                "pm.fastpath.fallback_wrong_side",
                self.pm.fastpath.fallback_wrong_side,
            ),
            (
                "pm.fastpath.fallback_queue_full",
                self.pm.fastpath.fallback_queue_full,
            ),
            (
                "pm.fastpath.fallback_cross_cpu",
                self.pm.fastpath.fallback_cross_cpu,
            ),
            (
                "pm.fastpath.fallback_cap_transfer",
                self.pm.fastpath.fallback_cap_transfer,
            ),
            (
                "pm.fastpath.fallback_budget",
                self.pm.fastpath.fallback_budget,
            ),
            (
                "pm.fastpath.slot_cache_hits",
                self.pm.fastpath.slot_cache_hits,
            ),
            (
                "pm.fastpath.slot_cache_misses",
                self.pm.fastpath.slot_cache_misses,
            ),
            ("mem.allocs", self.mem.allocs),
            ("mem.frames_allocated", self.mem.frames_allocated),
            ("mem.frees", self.mem.frees),
            ("mem.frames_freed", self.mem.frames_freed),
            ("ptable.maps", self.ptable.maps),
            ("ptable.unmaps", self.ptable.unmaps),
            ("ptable.frames_mapped", self.ptable.frames_mapped),
            ("ptable.frames_unmapped", self.ptable.frames_unmapped),
            ("vm.map_batch_hits", self.vm.map_batch_hits),
            ("vm.superpage_promotions", self.vm.superpage_promotions),
            ("vm.superpage_demotions", self.vm.superpage_demotions),
            (
                "vm.tlb_shootdowns_deferred",
                self.vm.tlb_shootdowns_deferred,
            ),
            ("vm.tlb_shootdowns_flushed", self.vm.tlb_shootdowns_flushed),
            ("drivers.rx_batches", self.drivers.rx_batches),
            ("drivers.rx_items", self.drivers.rx_items),
            ("drivers.tx_batches", self.drivers.tx_batches),
            ("drivers.tx_items", self.drivers.tx_items),
            ("net.pool_acquired", self.net.pool_acquired),
            ("net.pool_released", self.net.pool_released),
            ("net.pool_exhausted", self.net.pool_exhausted),
            ("net.rx_zc_batches", self.net.rx_zc_batches),
            ("net.rx_zc_frames", self.net.rx_zc_frames),
            ("net.tx_zc_batches", self.net.tx_zc_batches),
            ("net.tx_zc_frames", self.net.tx_zc_frames),
            ("net.steer_hits", self.net.steer_hits),
            ("net.steer_misses", self.net.steer_misses),
            ("net.fallback_copies", self.net.fallback_copies),
            ("blk.pool_acquired", self.blk.pool_acquired),
            ("blk.pool_released", self.blk.pool_released),
            ("blk.pool_exhausted", self.blk.pool_exhausted),
            ("blk.submit_batches", self.blk.submit_batches),
            ("blk.submit_ios", self.blk.submit_ios),
            ("blk.reap_batches", self.blk.reap_batches),
            ("blk.reap_ios", self.blk.reap_ios),
            ("blk.wakeups", self.blk.wakeups),
            ("blk.fallback_copies", self.blk.fallback_copies),
            ("nr.appended", self.nr.appended),
            ("nr.combine_batch", self.nr.combine_batches),
            ("nr.replay", self.nr.replayed),
            ("nr.read_local", self.nr.read_local),
            ("nr.fallback_locked", self.nr.fallback_locked),
            ("httpd.accepts", self.httpd.accepts),
            ("httpd.closes", self.httpd.closes),
            ("httpd.served", self.httpd.served),
            ("httpd.timeouts_keepalive", self.httpd.timeouts_keepalive),
            ("httpd.timeouts_header", self.httpd.timeouts_header),
            ("httpd.timeouts_drain", self.httpd.timeouts_drain),
            ("httpd.wheel_cascades", self.httpd.wheel_cascades),
            ("httpd.parked", self.httpd.parked),
            ("httpd.unparked", self.httpd.unparked),
            ("httpd.malformed", self.httpd.malformed),
            ("httpd.polls", self.httpd.polls),
            ("sched.picks", self.sched.picks),
            ("sched.enqueues", self.sched.enqueues),
            ("sched.removes", self.sched.removes),
            ("sched.parked", self.sched.parked),
            ("sched.unparked", self.sched.unparked),
            ("sched.throttles", self.sched.throttles),
            ("sched.unthrottles", self.sched.unthrottles),
            ("sched.refills", self.sched.refills),
            ("sched.inherited_handoffs", self.sched.inherited_handoffs),
            ("sched.demotions", self.sched.demotions),
            ("audit.incremental", self.audit.incremental),
            ("audit.full", self.audit.full),
            ("audit.touched_entries", self.audit.touched_entries),
            ("locks.pm.acquisitions", self.locks.pm.acquisitions),
            ("locks.pm.contended", self.locks.pm.contended),
            ("locks.pm.hold_max_cycles", self.locks.pm.hold_max_cycles),
            ("locks.mem.acquisitions", self.locks.mem.acquisitions),
            ("locks.mem.contended", self.locks.mem.contended),
            ("locks.mem.hold_max_cycles", self.locks.mem.hold_max_cycles),
            ("locks.trace.acquisitions", self.locks.trace.acquisitions),
            ("locks.trace.contended", self.locks.trace.contended),
            (
                "locks.trace.hold_max_cycles",
                self.locks.trace.hold_max_cycles,
            ),
        ]
    }

    /// Folds another counter block into this one: event counts sum, hold
    /// maxima take the max. Used to merge per-CPU trace shards into one
    /// snapshot view.
    pub fn merge(&mut self, other: &Counters) {
        self.pm.context_switches += other.pm.context_switches;
        self.pm.ipc_sends += other.pm.ipc_sends;
        self.pm.ipc_recvs += other.pm.ipc_recvs;
        self.pm.rendezvous += other.pm.rendezvous;
        self.pm.fastpath.merge(&other.pm.fastpath);
        self.mem.allocs += other.mem.allocs;
        self.mem.frames_allocated += other.mem.frames_allocated;
        self.mem.frees += other.mem.frees;
        self.mem.frames_freed += other.mem.frames_freed;
        self.ptable.maps += other.ptable.maps;
        self.ptable.unmaps += other.ptable.unmaps;
        self.ptable.frames_mapped += other.ptable.frames_mapped;
        self.ptable.frames_unmapped += other.ptable.frames_unmapped;
        self.vm.merge(&other.vm);
        self.drivers.rx_batches += other.drivers.rx_batches;
        self.drivers.rx_items += other.drivers.rx_items;
        self.drivers.tx_batches += other.drivers.tx_batches;
        self.drivers.tx_items += other.drivers.tx_items;
        self.net.merge(&other.net);
        self.blk.merge(&other.blk);
        self.nr.merge(&other.nr);
        self.httpd.merge(&other.httpd);
        self.sched.merge(&other.sched);
        self.audit.merge(&other.audit);
        self.locks.pm.merge(&other.locks.pm);
        self.locks.mem.merge(&other.locks.mem);
        self.locks.trace.merge(&other.locks.trace);
    }

    /// Checks that no counter has decreased relative to `older`.
    pub fn monotone_since(&self, older: &Counters) -> VerifResult {
        for ((name, now), (_, before)) in self.flat().iter().zip(older.flat().iter()) {
            check(
                now >= before,
                "trace_counters",
                format!("counter {name} decreased: {before} -> {now}"),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_since_accepts_growth_and_rejects_shrink() {
        let mut old = Counters::default();
        old.pm.ipc_sends = 5;
        let mut new = old;
        new.pm.ipc_sends = 9;
        assert!(new.monotone_since(&old).is_ok());
        assert!(old.monotone_since(&new).is_err());
    }

    #[test]
    fn flat_covers_all_blocks() {
        let c = Counters::default();
        let names: Vec<&str> = c.flat().iter().map(|(n, _)| *n).collect();
        assert!(names.iter().any(|n| n.starts_with("pm.")));
        assert!(names.iter().any(|n| n.starts_with("mem.")));
        assert!(names.iter().any(|n| n.starts_with("ptable.")));
        assert!(names.iter().any(|n| n.starts_with("vm.")));
        assert!(names.iter().any(|n| n.starts_with("drivers.")));
        assert!(names.iter().any(|n| n.starts_with("net.")));
        assert!(names.iter().any(|n| n.starts_with("blk.")));
        assert!(names.iter().any(|n| n.starts_with("nr.")));
        assert!(names.iter().any(|n| n.starts_with("httpd.")));
        assert!(names.iter().any(|n| n.starts_with("sched.")));
        assert!(names.iter().any(|n| n.starts_with("locks.")));
    }

    #[test]
    fn merge_sums_counts_and_maxes_holds() {
        let mut a = Counters::default();
        a.pm.ipc_sends = 3;
        a.locks.pm.acquisitions = 10;
        a.locks.pm.hold_max_cycles = 500;
        let mut b = Counters::default();
        b.pm.ipc_sends = 4;
        b.locks.pm.acquisitions = 1;
        b.locks.pm.hold_max_cycles = 900;
        a.merge(&b);
        assert_eq!(a.pm.ipc_sends, 7);
        assert_eq!(a.locks.pm.acquisitions, 11);
        assert_eq!(a.locks.pm.hold_max_cycles, 900, "max, not sum");
    }
}
