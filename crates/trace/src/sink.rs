//! The shared trace sink: per-CPU rings + histograms + counters behind
//! one handle, with the `trace_wf` well-formedness audit.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use atmo_spec::harness::{check, Invariant, VerifResult};

use crate::counters::Counters;
use crate::event::{
    EventKind, KernelEvent, ReturnClass, SyscallKind, NUM_EVENT_KINDS, NUM_SYSCALL_KINDS,
};
use crate::hist::LatencyHist;
use crate::ring::EventRing;
use crate::snapshot::{CpuSummary, Snapshot, SyscallSummary};

/// Per-kind syscall statistics on one CPU.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyscallStats {
    /// Dispatcher entries.
    pub enters: u64,
    /// Dispatcher returns.
    pub exits: u64,
    /// Returns in the success class.
    pub ok: u64,
    /// Returns in an error class.
    pub errs: u64,
    /// Latency distribution of completed calls (modeled cycles).
    pub hist: LatencyHist,
}

/// One CPU's trace state.
#[derive(Clone, Debug)]
struct PerCpuTrace {
    ring: EventRing,
    /// Events pushed, by [`EventKind`] (monotone; unlike the ring, never
    /// loses history to overwrite).
    kinds: [u64; NUM_EVENT_KINDS],
    /// Per-syscall-kind statistics.
    syscalls: Vec<SyscallStats>,
}

impl PerCpuTrace {
    fn new(ring_capacity: usize) -> Self {
        PerCpuTrace {
            ring: EventRing::new(ring_capacity),
            kinds: [0; NUM_EVENT_KINDS],
            syscalls: vec![SyscallStats::default(); NUM_SYSCALL_KINDS],
        }
    }
}

struct TraceInner {
    cpus: Vec<PerCpuTrace>,
    counters: Counters,
    /// CPU attributed to subsystem emissions: set at syscall entry; sound
    /// because the big lock serializes kernel execution (§3).
    current_cpu: usize,
    /// Counter values at the previous `trace_wf` audit (monotonicity
    /// low-water mark).
    low_water: Counters,
}

/// The trace sink for one kernel instance.
///
/// Cheap to share ([`TraceHandle`] = `Arc<TraceSink>`); interior
/// mutability keeps subsystem signatures unchanged. The mutex is
/// uncontended in practice — kernel code runs under the big lock.
pub struct TraceSink {
    inner: Mutex<TraceInner>,
}

/// A shared reference to a kernel's trace sink.
pub type TraceHandle = Arc<TraceSink>;

impl TraceSink {
    /// A sink with one ring per CPU, each retaining `ring_capacity`
    /// events. All storage is allocated here, never afterwards.
    pub fn new(ncpus: usize, ring_capacity: usize) -> TraceHandle {
        Arc::new(TraceSink {
            inner: Mutex::new(TraceInner {
                cpus: (0..ncpus.max(1))
                    .map(|_| PerCpuTrace::new(ring_capacity))
                    .collect(),
                counters: Counters::default(),
                current_cpu: 0,
                low_water: Counters::default(),
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, TraceInner> {
        // A panicking holder cannot leave the counters half-updated in a
        // way the audit should hide, so poisoning is not propagated.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of per-CPU rings.
    pub fn ncpus(&self) -> usize {
        self.lock().cpus.len()
    }

    /// Attributes subsequent [`emit`](Self::emit) calls to `cpu`
    /// (called at syscall entry, under the big lock).
    pub fn set_cpu(&self, cpu: usize) {
        let mut inner = self.lock();
        if cpu < inner.cpus.len() {
            inner.current_cpu = cpu;
        }
    }

    /// Emits `ev` on the currently attributed CPU.
    pub fn emit(&self, ev: KernelEvent) {
        let mut inner = self.lock();
        let cpu = inner.current_cpu;
        apply(&mut inner, cpu, ev);
    }

    /// Emits `ev` on an explicit CPU.
    pub fn emit_on(&self, cpu: usize, ev: KernelEvent) {
        let mut inner = self.lock();
        let cpu = cpu.min(inner.cpus.len() - 1);
        apply(&mut inner, cpu, ev);
    }

    /// Records a dispatcher entry for `kind` on `cpu` (also attributes
    /// subsequent emissions to `cpu`).
    pub fn syscall_enter(&self, cpu: usize, kind: SyscallKind) {
        let mut inner = self.lock();
        let cpu = cpu.min(inner.cpus.len() - 1);
        inner.current_cpu = cpu;
        apply(&mut inner, cpu, KernelEvent::SyscallEnter { kind });
    }

    /// Records a dispatcher return: the exit event plus the latency
    /// histogram update.
    pub fn syscall_exit(&self, cpu: usize, kind: SyscallKind, class: ReturnClass, cycles: u64) {
        let mut inner = self.lock();
        let cpu = cpu.min(inner.cpus.len() - 1);
        apply(
            &mut inner,
            cpu,
            KernelEvent::SyscallExit {
                kind,
                class,
                cycles,
            },
        );
    }

    /// Builds the merged snapshot: per-CPU ring summaries, merged
    /// per-kind syscall statistics and the subsystem counters, all read
    /// atomically under one lock acquisition.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut per_cpu = Vec::with_capacity(inner.cpus.len());
        let mut merged_kinds = [0u64; NUM_EVENT_KINDS];
        let mut merged: Vec<SyscallStats> = vec![SyscallStats::default(); NUM_SYSCALL_KINDS];
        let mut total_events = 0u64;
        let mut total_dropped = 0u64;
        for (cpu, c) in inner.cpus.iter().enumerate() {
            for (m, k) in merged_kinds.iter_mut().zip(c.kinds.iter()) {
                *m += k;
            }
            for (m, s) in merged.iter_mut().zip(c.syscalls.iter()) {
                m.enters += s.enters;
                m.exits += s.exits;
                m.ok += s.ok;
                m.errs += s.errs;
                m.hist.merge(&s.hist);
            }
            total_events += c.ring.head();
            total_dropped += c.ring.dropped();
            per_cpu.push(CpuSummary {
                cpu,
                head: c.ring.head(),
                tail: c.ring.tail(),
                dropped: c.ring.dropped(),
                kinds: c.kinds,
                per_kind_enters: c.syscalls.iter().map(|s| s.enters).collect(),
                per_kind_exits: c.syscalls.iter().map(|s| s.exits).collect(),
            });
        }
        let syscalls = SyscallKind::ALL
            .iter()
            .map(|&kind| {
                let s = &merged[kind.index()];
                SyscallSummary {
                    kind,
                    enters: s.enters,
                    exits: s.exits,
                    ok: s.ok,
                    errs: s.errs,
                    mean_cycles: s.hist.mean(),
                    p50_cycles: s.hist.p50(),
                    p90_cycles: s.hist.p90(),
                    p99_cycles: s.hist.p99(),
                    max_cycles: s.hist.max(),
                }
            })
            .collect();
        Snapshot {
            per_cpu,
            syscalls,
            kinds: merged_kinds,
            counters: inner.counters,
            total_events,
            total_dropped,
        }
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("TraceSink")
            .field("ncpus", &inner.cpus.len())
            .field("counters", &inner.counters)
            .finish()
    }
}

fn apply(inner: &mut TraceInner, cpu: usize, ev: KernelEvent) {
    let counters = &mut inner.counters;
    match ev {
        KernelEvent::ContextSwitch { .. } => counters.pm.context_switches += 1,
        KernelEvent::EndpointSend { rendezvous, .. } => {
            counters.pm.ipc_sends += 1;
            if rendezvous {
                counters.pm.rendezvous += 1;
            }
        }
        KernelEvent::EndpointRecv { rendezvous, .. } => {
            counters.pm.ipc_recvs += 1;
            if rendezvous {
                counters.pm.rendezvous += 1;
            }
        }
        KernelEvent::PageAlloc { frames, .. } => {
            counters.mem.allocs += 1;
            counters.mem.frames_allocated += frames;
        }
        KernelEvent::PageFree { frames, .. } => {
            counters.mem.frees += 1;
            counters.mem.frames_freed += frames;
        }
        KernelEvent::PtMap { frames, .. } => {
            counters.ptable.maps += 1;
            counters.ptable.frames_mapped += frames;
        }
        KernelEvent::PtUnmap { frames, .. } => {
            counters.ptable.unmaps += 1;
            counters.ptable.frames_unmapped += frames;
        }
        KernelEvent::DriverRx { batch, .. } => {
            counters.drivers.rx_batches += 1;
            counters.drivers.rx_items += batch;
        }
        KernelEvent::DriverTx { batch, .. } => {
            counters.drivers.tx_batches += 1;
            counters.drivers.tx_items += batch;
        }
        KernelEvent::SyscallEnter { .. } | KernelEvent::SyscallExit { .. } => {}
    }
    let c = &mut inner.cpus[cpu];
    c.ring.push(ev);
    c.kinds[ev.kind().index()] += 1;
    match ev {
        KernelEvent::SyscallEnter { kind } => c.syscalls[kind.index()].enters += 1,
        KernelEvent::SyscallExit {
            kind,
            class,
            cycles,
        } => {
            let s = &mut c.syscalls[kind.index()];
            s.exits += 1;
            if class.is_ok() {
                s.ok += 1;
            } else {
                s.errs += 1;
            }
            s.hist.record(cycles);
        }
        _ => {}
    }
}

/// The trace subsystem's well-formedness invariant (conjoined into the
/// kernel's `total_wf`):
///
/// * every per-CPU ring is coherent (`tail ≤ head`,
///   `head − tail ≤ capacity`, retained slots carry their sequence
///   numbers, `dropped` accounts for the advanced tail);
/// * per CPU, the per-kind event counts sum to the ring's `head` (no
///   event pushed without being counted, none counted without a push);
/// * per CPU and syscall kind, the latency histogram total equals the
///   exit count, `ok + errs = exits`, and at most one call is in flight
///   (`exits ≤ enters ≤ exits + 1`);
/// * subsystem counters reconcile with the per-kind event counts
///   (e.g. `pm.context_switches` = total `ContextSwitch` events);
/// * no counter has decreased since the previous audit (low-water
///   mark, raised on every check).
pub fn trace_wf(sink: &TraceSink) -> VerifResult {
    let mut inner = sink.lock();
    let mut kind_totals = [0u64; NUM_EVENT_KINDS];
    let mut enter_total = 0u64;
    let mut exit_total = 0u64;
    for (cpu, c) in inner.cpus.iter().enumerate() {
        c.ring.wf()?;
        let pushed: u64 = c.kinds.iter().sum();
        check(
            pushed == c.ring.head(),
            "trace",
            format!(
                "cpu {cpu}: {pushed} counted events but ring head {}",
                c.ring.head()
            ),
        )?;
        for (m, k) in kind_totals.iter_mut().zip(c.kinds.iter()) {
            *m += k;
        }
        for (kind, s) in SyscallKind::ALL.iter().zip(c.syscalls.iter()) {
            s.hist.wf()?;
            check(
                s.hist.count() == s.exits,
                "trace",
                format!(
                    "cpu {cpu} {}: histogram holds {} samples for {} exits",
                    kind.name(),
                    s.hist.count(),
                    s.exits
                ),
            )?;
            check(
                s.ok + s.errs == s.exits,
                "trace",
                format!("cpu {cpu} {}: ok+errs != exits", kind.name()),
            )?;
            check(
                s.exits <= s.enters && s.enters <= s.exits + 1,
                "trace",
                format!(
                    "cpu {cpu} {}: {} enters vs {} exits",
                    kind.name(),
                    s.enters,
                    s.exits
                ),
            )?;
            enter_total += s.enters;
            exit_total += s.exits;
        }
    }
    check(
        kind_totals[EventKind::SyscallEnter.index()] == enter_total
            && kind_totals[EventKind::SyscallExit.index()] == exit_total,
        "trace",
        "per-kind syscall stats disagree with event counts",
    )?;
    let ctrs = inner.counters;
    let pairs = [
        (
            "pm.context_switches",
            ctrs.pm.context_switches,
            EventKind::ContextSwitch,
        ),
        ("pm.ipc_sends", ctrs.pm.ipc_sends, EventKind::EndpointSend),
        ("pm.ipc_recvs", ctrs.pm.ipc_recvs, EventKind::EndpointRecv),
        ("mem.allocs", ctrs.mem.allocs, EventKind::PageAlloc),
        ("mem.frees", ctrs.mem.frees, EventKind::PageFree),
        ("ptable.maps", ctrs.ptable.maps, EventKind::PtMap),
        ("ptable.unmaps", ctrs.ptable.unmaps, EventKind::PtUnmap),
        (
            "drivers.rx_batches",
            ctrs.drivers.rx_batches,
            EventKind::DriverRx,
        ),
        (
            "drivers.tx_batches",
            ctrs.drivers.tx_batches,
            EventKind::DriverTx,
        ),
    ];
    for (name, counter, kind) in pairs {
        check(
            counter == kind_totals[kind.index()],
            "trace",
            format!(
                "counter {name} = {counter} but {} {} events",
                kind_totals[kind.index()],
                kind.name()
            ),
        )?;
    }
    check(
        ctrs.pm.rendezvous <= ctrs.pm.ipc_sends + ctrs.pm.ipc_recvs,
        "trace",
        "more rendezvous than IPC operations",
    )?;
    let low = inner.low_water;
    ctrs.monotone_since(&low)?;
    inner.low_water = ctrs;
    Ok(())
}

impl Invariant for TraceSink {
    fn wf(&self) -> VerifResult {
        trace_wf(self)
    }
}

/// An optional trace handle a subsystem can hold without disturbing its
/// derived `Clone`/`PartialEq`/`Eq`: two shares always compare equal, so
/// attaching a tracer never changes a subsystem's abstract state.
#[derive(Clone, Default)]
pub struct TraceShare(Option<TraceHandle>);

impl TraceShare {
    /// A share of `sink`.
    pub fn new(sink: TraceHandle) -> Self {
        TraceShare(Some(sink))
    }

    /// A share with no sink attached (emissions are dropped).
    pub fn detached() -> Self {
        TraceShare(None)
    }

    /// Attaches `sink`; subsequent emissions land in it.
    pub fn attach(&mut self, sink: TraceHandle) {
        self.0 = Some(sink);
    }

    /// `true` when a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Emits on the attributed CPU (no-op when detached).
    pub fn emit(&self, ev: KernelEvent) {
        if let Some(sink) = &self.0 {
            sink.emit(ev);
        }
    }

    /// The underlying handle, when attached.
    pub fn handle(&self) -> Option<&TraceHandle> {
        self.0.as_ref()
    }
}

impl fmt::Debug for TraceShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "TraceShare(attached)"
        } else {
            "TraceShare(detached)"
        })
    }
}

impl PartialEq for TraceShare {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for TraceShare {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emissions_are_counted_and_wf_holds() {
        let sink = TraceSink::new(2, 8);
        sink.syscall_enter(1, SyscallKind::Mmap);
        sink.emit(KernelEvent::PageAlloc {
            frames: 1,
            closure_delta: 1,
        });
        sink.emit(KernelEvent::PtMap {
            va: 0x1000,
            frames: 1,
        });
        sink.syscall_exit(1, SyscallKind::Mmap, ReturnClass::Ok, 1234);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
        let snap = sink.snapshot();
        assert_eq!(snap.exits(SyscallKind::Mmap), 1);
        assert_eq!(snap.counters.mem.allocs, 1);
        assert_eq!(snap.counters.ptable.maps, 1);
        assert_eq!(snap.per_cpu[1].head, 4, "all events on the set CPU");
        assert_eq!(snap.per_cpu[0].head, 0);
    }

    #[test]
    fn wf_detects_counter_regression() {
        let sink = TraceSink::new(1, 8);
        sink.emit(KernelEvent::ContextSwitch {
            cpu: 0,
            from: None,
            to: Some(1),
        });
        assert!(trace_wf(&sink).is_ok());
        // Forge a regression: counters behind the low-water mark.
        sink.lock().counters.pm.context_switches = 0;
        assert!(trace_wf(&sink).is_err());
    }

    #[test]
    fn shares_compare_equal_regardless_of_attachment() {
        let a = TraceShare::detached();
        let b = TraceShare::new(TraceSink::new(1, 4));
        assert_eq!(a, b);
        b.emit(KernelEvent::DriverRx {
            device: crate::event::DeviceKind::Ixgbe,
            batch: 32,
        });
        assert_eq!(b.handle().unwrap().snapshot().counters.drivers.rx_items, 32);
    }

    #[test]
    fn ring_overflow_keeps_wf() {
        let sink = TraceSink::new(1, 4);
        for i in 0..64 {
            sink.emit(KernelEvent::PtMap { va: i, frames: 1 });
        }
        assert!(trace_wf(&sink).is_ok());
        let snap = sink.snapshot();
        assert_eq!(snap.total_events, 64);
        assert_eq!(snap.total_dropped, 60);
        assert_eq!(snap.counters.ptable.maps, 64, "counters survive overwrite");
    }
}
