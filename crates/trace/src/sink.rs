//! The shared trace sink: per-CPU rings + histograms + counters behind
//! one handle, with the `trace_wf` well-formedness audit.
//!
//! The sink is itself sharded per CPU: each simulated CPU owns a
//! [`PerCpuTrace`] shard (ring + per-kind stats + its own [`Counters`]
//! block) behind its own mutex, so concurrent syscalls on distinct CPUs
//! never contend on trace emission. CPU attribution for deep-call-graph
//! emissions uses a thread-local set at syscall entry, which is correct
//! even without the big lock: each OS thread drives exactly one
//! simulated CPU at a time. Trace-shard locks are the *last* locks in
//! the kernel's total lock order and never acquire anything else, so
//! they cannot participate in a deadlock cycle.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::time::Instant;

use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_spec::lock_recovering;

use crate::audit::AuditDelta;
use crate::counters::{
    BlkCounters, Counters, FastpathCounters, HttpdCounters, NetCounters, NrCounters, SchedCounters,
    VmCounters,
};
use crate::event::{
    EventKind, KernelEvent, ReturnClass, SyscallKind, NUM_EVENT_KINDS, NUM_SYSCALL_KINDS,
};
use crate::hist::LatencyHist;
use crate::ring::EventRing;
use crate::snapshot::{CpuSummary, Snapshot, SyscallSummary};

/// Which kernel lock domain an acquisition belongs to, for the
/// per-domain lock counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockDomain {
    /// Process-manager domain (scheduler, endpoints, containers).
    Pm,
    /// Memory domain (allocator, page tables, grants, IOMMU).
    Mem,
    /// Trace shards themselves.
    Trace,
}

impl LockDomain {
    /// Stable lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            LockDomain::Pm => "pm",
            LockDomain::Mem => "mem",
            LockDomain::Trace => "trace",
        }
    }
}

/// Outcome of one IPC fastpath attempt (or slot-cache probe), counted
/// into [`FastpathCounters`] without a ring event — like lock
/// acquisitions, these annotate operations that already have their own
/// `EndpointSend`/`EndpointRecv` events, so pairing them with ring
/// entries would double-count under the exact reconciliation audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FastpathOutcome {
    /// Direct handoff performed.
    Hit,
    /// Endpoint idle or queued on the sending side.
    WrongSide,
    /// Endpoint queue full.
    QueueFull,
    /// Partner homed on a different CPU.
    CrossCpu,
    /// Payload carries a capability grant (needs the mem domain).
    CapTransfer,
    /// Consecutive-handoff budget exhausted; yielded to the run queue.
    Budget,
    /// Descriptor-slot cache hit (validation skipped).
    SlotCacheHit,
    /// Descriptor-slot cache miss (full table lookup).
    SlotCacheMiss,
}

impl FastpathOutcome {
    fn count_into(self, fp: &mut FastpathCounters) {
        match self {
            FastpathOutcome::Hit => fp.hits += 1,
            FastpathOutcome::WrongSide => fp.fallback_wrong_side += 1,
            FastpathOutcome::QueueFull => fp.fallback_queue_full += 1,
            FastpathOutcome::CrossCpu => fp.fallback_cross_cpu += 1,
            FastpathOutcome::CapTransfer => fp.fallback_cap_transfer += 1,
            FastpathOutcome::Budget => fp.fallback_budget += 1,
            FastpathOutcome::SlotCacheHit => fp.slot_cache_hits += 1,
            FastpathOutcome::SlotCacheMiss => fp.slot_cache_misses += 1,
        }
    }
}

/// One batched-VM-datapath observation. Like [`FastpathOutcome`] these
/// are counter-only annotations: the ring events for the underlying
/// allocator/page-table work are already emitted by those subsystems, so
/// an extra ring entry would break the exact per-kind reconciliation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmOutcome {
    /// Batched leaf fills that hit the walk cache (count = fills).
    MapBatchHit,
    /// A 512-page run was promoted to one 2 MiB entry.
    SuperpagePromotion,
    /// A promoted entry was split back to 512 4 KiB entries.
    SuperpageDemotion,
    /// Page invalidations queued for a deferred shootdown (count =
    /// pages).
    ShootdownDeferred,
    /// Page invalidations broadcast by a batched flush (count = pages).
    ShootdownFlushed,
}

impl VmOutcome {
    fn count_into(self, vm: &mut VmCounters, n: u64) {
        match self {
            VmOutcome::MapBatchHit => vm.map_batch_hits += n,
            VmOutcome::SuperpagePromotion => vm.superpage_promotions += n,
            VmOutcome::SuperpageDemotion => vm.superpage_demotions += n,
            VmOutcome::ShootdownDeferred => vm.tlb_shootdowns_deferred += n,
            VmOutcome::ShootdownFlushed => vm.tlb_shootdowns_flushed += n,
        }
    }
}

/// One zero-copy-network-datapath observation. Like [`VmOutcome`] these
/// are counter-only annotations: the batched RX/TX work already emits
/// `DriverRx`/`DriverTx` ring events, so an extra ring entry would break
/// the exact per-kind reconciliation. `PoolAcquire`/`PoolRelease`
/// additionally move the sink's in-flight gauge, which `trace_wf` checks
/// against the merged counters (`acquired == released + in_flight`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetOutcome {
    /// Pool slots handed out (count = slots).
    PoolAcquire,
    /// Pool slots returned (count = slots).
    PoolRelease,
    /// Acquire attempts that found the pool empty (count = attempts).
    PoolExhausted,
    /// One zero-copy receive batch (count = frames).
    RxBatch,
    /// One zero-copy transmit batch (count = frames).
    TxBatch,
    /// Frames steered to the local queue's CPU (count = frames).
    SteerHit,
    /// Frames delivered to the wrong queue for their flow (count =
    /// frames).
    SteerMiss,
    /// Frames copied out of the pool into owned buffers (count =
    /// frames).
    Fallback,
}

impl NetOutcome {
    fn count_into(self, net: &mut NetCounters, n: u64) {
        match self {
            NetOutcome::PoolAcquire => net.pool_acquired += n,
            NetOutcome::PoolRelease => net.pool_released += n,
            NetOutcome::PoolExhausted => net.pool_exhausted += n,
            NetOutcome::RxBatch => {
                net.rx_zc_batches += 1;
                net.rx_zc_frames += n;
            }
            NetOutcome::TxBatch => {
                net.tx_zc_batches += 1;
                net.tx_zc_frames += n;
            }
            NetOutcome::SteerHit => net.steer_hits += n,
            NetOutcome::SteerMiss => net.steer_misses += n,
            NetOutcome::Fallback => net.fallback_copies += n,
        }
    }
}

/// One zero-copy-block-datapath observation. Like [`NetOutcome`] these
/// are counter-only annotations: batched SQ/CQ work already emits
/// `DriverTx`/`DriverRx` ring events (device = NVMe), so an extra ring
/// entry would break the exact per-kind reconciliation.
/// `PoolAcquire`/`PoolRelease` additionally move the sink's blk
/// in-flight gauge, which `trace_wf` checks against the merged counters
/// (`acquired == released + in_flight`), alongside the global
/// `reap_ios <= submit_ios` completion bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlkOutcome {
    /// Pool slots handed out (count = slots).
    PoolAcquire,
    /// Pool slots returned (count = slots).
    PoolRelease,
    /// Acquire attempts that found the pool empty (count = attempts).
    PoolExhausted,
    /// One batched SQ doorbell ring (count = I/O commands).
    SubmitBatch,
    /// One batched CQ reap pass (count = completions).
    ReapBatch,
    /// Parked reapers woken by a completion over the direct-handoff
    /// fast path (count = wakeups).
    Wakeup,
    /// Blocks copied out of the pool into owned buffers (count =
    /// blocks).
    Fallback,
}

impl BlkOutcome {
    fn count_into(self, blk: &mut BlkCounters, n: u64) {
        match self {
            BlkOutcome::PoolAcquire => blk.pool_acquired += n,
            BlkOutcome::PoolRelease => blk.pool_released += n,
            BlkOutcome::PoolExhausted => blk.pool_exhausted += n,
            BlkOutcome::SubmitBatch => {
                blk.submit_batches += 1;
                blk.submit_ios += n;
            }
            BlkOutcome::ReapBatch => {
                blk.reap_batches += 1;
                blk.reap_ios += n;
            }
            BlkOutcome::Wakeup => blk.wakeups += n,
            BlkOutcome::Fallback => blk.fallback_copies += n,
        }
    }
}

/// One event-driven-httpd observation. Like [`NetOutcome`] these are
/// counter-only annotations: the connection shards, timer wheels and
/// ready rings are app-level structures whose datapath work already
/// rides the driver's `DriverRx`/`DriverTx` ring events, so an extra
/// ring entry would break the exact per-kind reconciliation.
/// `ReadyBatch` additionally lands the ready-set size in the sink's
/// ready-batch histogram — with `n == 0` allowed, because an empty
/// event-loop iteration is itself a sample (it is what makes idle cost
/// O(ready), and `trace_wf` balances the histogram's sample count
/// against `httpd.polls`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpdOutcome {
    /// Connections opened (count = connections).
    Accept,
    /// Connections closed (count = connections).
    Close,
    /// Requests fully served (count = requests).
    Served,
    /// Keepalive-timer closes (count = connections).
    TimeoutKeepalive,
    /// Read-header-timer closes — slowloris (count = connections).
    TimeoutHeader,
    /// Write-drain-timer closes (count = connections).
    TimeoutDrain,
    /// Timer-wheel nodes moved or fired by cascades (count = nodes).
    WheelCascade,
    /// Connections parked on pool exhaustion (count = connections).
    Parked,
    /// Parked connections resumed (count = connections).
    Unparked,
    /// Requests rejected by the parser (count = requests).
    Malformed,
    /// One event-loop iteration (count = ready entries drained; zero
    /// is meaningful and recorded).
    ReadyBatch,
}

impl HttpdOutcome {
    fn count_into(self, httpd: &mut HttpdCounters, n: u64) {
        match self {
            HttpdOutcome::Accept => httpd.accepts += n,
            HttpdOutcome::Close => httpd.closes += n,
            HttpdOutcome::Served => httpd.served += n,
            HttpdOutcome::TimeoutKeepalive => httpd.timeouts_keepalive += n,
            HttpdOutcome::TimeoutHeader => httpd.timeouts_header += n,
            HttpdOutcome::TimeoutDrain => httpd.timeouts_drain += n,
            HttpdOutcome::WheelCascade => httpd.wheel_cascades += n,
            HttpdOutcome::Parked => httpd.parked += n,
            HttpdOutcome::Unparked => httpd.unparked += n,
            HttpdOutcome::Malformed => httpd.malformed += n,
            HttpdOutcome::ReadyBatch => httpd.polls += 1,
        }
    }
}

/// One multi-tenant-scheduler observation. Like [`FastpathOutcome`]
/// these are counter-only annotations: run-queue picks already emit
/// their own `ContextSwitch` ring events when `current` changes, so an
/// extra ring entry would break the exact per-kind reconciliation.
/// Picks themselves go through
/// [`TraceSink::sched_pick`], which additionally lands the pick's
/// wall-clock cost (converted to modeled cycles, like lock hold times)
/// in the sink's pick-latency histogram — the measured O(1) claim.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedOutcome {
    /// Threads enqueued onto a run-queue level (count = threads).
    Enqueue,
    /// Threads removed from the run queues (count = threads).
    Remove,
    /// Threads parked off the run queues — container throttled
    /// (count = threads).
    Park,
    /// Parked threads re-enqueued after a refill (count = threads).
    Unpark,
    /// Container accounts throttled on budget exhaustion (count =
    /// accounts).
    Throttle,
    /// Container accounts unthrottled by the refill wheel (count =
    /// accounts).
    Unthrottle,
    /// Budget refills performed by the timer wheel (count = refills).
    Refill,
    /// IPC direct handoffs that inherited the client's budget account
    /// (count = handoffs).
    InheritHandoff,
    /// MLFQ level demotions (count = threads).
    Demote,
}

impl SchedOutcome {
    fn count_into(self, sched: &mut SchedCounters, n: u64) {
        match self {
            SchedOutcome::Enqueue => sched.enqueues += n,
            SchedOutcome::Remove => sched.removes += n,
            SchedOutcome::Park => sched.parked += n,
            SchedOutcome::Unpark => sched.unparked += n,
            SchedOutcome::Throttle => sched.throttles += n,
            SchedOutcome::Unthrottle => sched.unthrottles += n,
            SchedOutcome::Refill => sched.refills += n,
            SchedOutcome::InheritHandoff => sched.inherited_handoffs += n,
            SchedOutcome::Demote => sched.demotions += n,
        }
    }
}

/// One node-replication observation. Like [`VmOutcome`] these are
/// counter-only annotations: replica reads and log appends decorate
/// syscalls that already emit their own enter/exit ring events, so an
/// extra ring entry would break the exact per-kind reconciliation.
/// `Append` additionally lands an [`AuditDelta::NrAppended`] ledger
/// entry when audit recording is on, so the incremental auditor can
/// balance the ledger sum against the logs' published tails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NrOutcome {
    /// Ops appended to a shared operation log (count = ops).
    Append,
    /// Flat-combining flushes this CPU performed, draining every CPU's
    /// pending slot (count = non-empty flushes).
    CombineBatch,
    /// Ops replayed into a replica to bring it to the tail (count =
    /// ops).
    Replay,
    /// Read syscalls served lock-free from the local replica (count =
    /// reads).
    ReadLocal,
    /// Read syscalls served by the locked domain path instead (count =
    /// reads).
    FallbackLocked,
}

impl NrOutcome {
    fn count_into(self, nr: &mut NrCounters, n: u64) {
        match self {
            NrOutcome::Append => nr.appended += n,
            NrOutcome::CombineBatch => nr.combine_batches += n,
            NrOutcome::Replay => nr.replayed += n,
            NrOutcome::ReadLocal => nr.read_local += n,
            NrOutcome::FallbackLocked => nr.fallback_locked += n,
        }
    }
}

/// Converts wall-clock nanoseconds into modeled cycles at the c220g5
/// profile's 2.2 GHz, for lock hold times (the only place real time
/// leaks into the modeled-cycle world).
pub fn ns_to_cycles(ns: u64) -> u64 {
    ns * 11 / 5
}

/// Per-kind syscall statistics on one CPU.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyscallStats {
    /// Dispatcher entries.
    pub enters: u64,
    /// Dispatcher returns.
    pub exits: u64,
    /// Returns in the success class.
    pub ok: u64,
    /// Returns in an error class.
    pub errs: u64,
    /// Latency distribution of completed calls (modeled cycles).
    pub hist: LatencyHist,
}

/// One CPU's trace shard.
#[derive(Clone, Debug)]
struct PerCpuTrace {
    ring: EventRing,
    /// Events pushed, by [`EventKind`] (monotone; unlike the ring, never
    /// loses history to overwrite).
    kinds: [u64; NUM_EVENT_KINDS],
    /// Per-syscall-kind statistics.
    syscalls: Vec<SyscallStats>,
    /// This shard's counter block; the snapshot merges all shards.
    counters: Counters,
    /// This shard's pending audit-ledger entries (drained by the
    /// incremental auditor; empty whenever recording is off). Lives
    /// outside the event ring: ledger entries must never be dropped to
    /// overwrite or double-counted by the per-kind reconciliation.
    ledger: Vec<AuditDelta>,
}

impl PerCpuTrace {
    fn new(ring_capacity: usize) -> Self {
        PerCpuTrace {
            ring: EventRing::new(ring_capacity),
            kinds: [0; NUM_EVENT_KINDS],
            syscalls: vec![SyscallStats::default(); NUM_SYSCALL_KINDS],
            counters: Counters::default(),
            ledger: Vec::new(),
        }
    }
}

/// The sink-global audit latency/size histograms (modeled cycles for
/// audit latencies, entry counts for the touched histogram). Sink-global
/// like the pool gauges: audits run on one thread at a time.
#[derive(Clone, Debug, Default)]
struct AuditHists {
    incremental: LatencyHist,
    full: LatencyHist,
    touched: LatencyHist,
}

/// The sink-global lock acquisition-*wait* histograms (modeled cycles a
/// syscall spent catching its meter up to a domain lock's published
/// model time — the DES analogue of spinning on a contended lock). Kept
/// apart from the per-shard `LockCounters`, which track real hold times:
/// waits are modeled-time and recorded at the few serialization points,
/// so one global mutex'd pair is cheap and merges exactly.
#[derive(Clone, Debug, Default)]
struct LockWaitHists {
    pm: LatencyHist,
    mem: LatencyHist,
}

thread_local! {
    /// CPU attributed to subsystem emissions on this OS thread: set at
    /// syscall entry. Thread-local (not sink-global) so concurrent
    /// syscalls on different CPUs attribute correctly without a lock.
    static CURRENT_CPU: Cell<usize> = const { Cell::new(0) };
}

/// The trace sink for one kernel instance, sharded per CPU.
///
/// Cheap to share ([`TraceHandle`] = `Arc<TraceSink>`); interior
/// mutability keeps subsystem signatures unchanged.
pub struct TraceSink {
    shards: Vec<Mutex<PerCpuTrace>>,
    /// Merged counter values at the previous `trace_wf` audit
    /// (monotonicity low-water mark).
    low_water: Mutex<Counters>,
    /// Packet-pool slots currently in flight (acquired − released). A
    /// gauge, not a counter: it moves both ways, so it lives outside the
    /// monotone [`Counters`] block. Kept sink-global (not per shard)
    /// because a `PktBuf` may be released on a different CPU than it was
    /// acquired on; `trace_wf` balances it against the *merged* pool
    /// counters.
    net_in_flight: Mutex<i64>,
    /// Block-pool slots currently in flight (acquired − released); same
    /// gauge discipline as `net_in_flight`, for `BlkBuf` handles.
    blk_in_flight: Mutex<i64>,
    /// Whether mutations should emit [`AuditDelta`]s into the per-CPU
    /// ledgers. Off by default so kernels that never audit incrementally
    /// pay one relaxed atomic load per choke point and store nothing.
    audit_recording: AtomicBool,
    /// Audit latency and touched-set histograms.
    audit_hists: Mutex<AuditHists>,
    /// Ready-set sizes per httpd event-loop iteration. Sink-global like
    /// the audit histograms: each shard's event loop records its own
    /// ticks, and the merged `httpd.polls` counter balances the sample
    /// count exactly.
    httpd_ready_hist: Mutex<LatencyHist>,
    /// Per-domain lock acquisition-wait histograms.
    lock_wait_hists: Mutex<LockWaitHists>,
    /// Run-queue pick costs (wall-clock nanoseconds converted to
    /// modeled cycles, like lock hold times). Sink-global like the
    /// audit histograms; the merged `sched.picks` counter balances the
    /// sample count exactly.
    sched_pick_hist: Mutex<LatencyHist>,
}

/// A shared reference to a kernel's trace sink.
pub type TraceHandle = Arc<TraceSink>;

impl TraceSink {
    /// A sink with one ring per CPU, each retaining `ring_capacity`
    /// events. All storage is allocated here, never afterwards.
    pub fn new(ncpus: usize, ring_capacity: usize) -> TraceHandle {
        Arc::new(TraceSink {
            shards: (0..ncpus.max(1))
                .map(|_| Mutex::new(PerCpuTrace::new(ring_capacity)))
                .collect(),
            low_water: Mutex::new(Counters::default()),
            net_in_flight: Mutex::new(0),
            blk_in_flight: Mutex::new(0),
            audit_recording: AtomicBool::new(false),
            audit_hists: Mutex::new(AuditHists::default()),
            httpd_ready_hist: Mutex::new(LatencyHist::default()),
            lock_wait_hists: Mutex::new(LockWaitHists::default()),
            sched_pick_hist: Mutex::new(LatencyHist::default()),
        })
    }

    /// Runs `f` under `cpu`'s shard lock, self-instrumenting the
    /// acquisition into that shard's `locks.trace` counters.
    fn with_shard<R>(&self, cpu: usize, f: impl FnOnce(&mut PerCpuTrace) -> R) -> R {
        let (mut shard, contended) = self.lock_shard(cpu);
        let start = Instant::now();
        let r = f(&mut shard);
        let held = ns_to_cycles(start.elapsed().as_nanos() as u64);
        let lc = &mut shard.counters.locks.trace;
        lc.acquisitions += 1;
        if contended {
            lc.contended += 1;
        }
        lc.hold_max_cycles = lc.hold_max_cycles.max(held);
        r
    }

    /// Acquires `cpu`'s shard (clamped), reporting whether the fast
    /// try-lock path lost to another holder.
    fn lock_shard(&self, cpu: usize) -> (MutexGuard<'_, PerCpuTrace>, bool) {
        let mutex = &self.shards[cpu.min(self.shards.len() - 1)];
        match mutex.try_lock() {
            Ok(g) => (g, false),
            Err(TryLockError::Poisoned(e)) => (e.into_inner(), false),
            Err(TryLockError::WouldBlock) => (lock_recovering(mutex), true),
        }
    }

    /// Number of per-CPU rings.
    pub fn ncpus(&self) -> usize {
        self.shards.len()
    }

    /// Attributes subsequent [`emit`](Self::emit) calls from this OS
    /// thread to `cpu` (called at syscall entry).
    pub fn set_cpu(&self, cpu: usize) {
        CURRENT_CPU.set(cpu);
    }

    /// Emits `ev` on the CPU attributed to this OS thread.
    pub fn emit(&self, ev: KernelEvent) {
        self.with_shard(CURRENT_CPU.get(), |shard| apply(shard, ev));
    }

    /// Emits `ev` on an explicit CPU.
    pub fn emit_on(&self, cpu: usize, ev: KernelEvent) {
        self.with_shard(cpu, |shard| apply(shard, ev));
    }

    /// Records a dispatcher entry for `kind` on `cpu` (also attributes
    /// subsequent emissions from this OS thread to `cpu`).
    pub fn syscall_enter(&self, cpu: usize, kind: SyscallKind) {
        CURRENT_CPU.set(cpu);
        self.with_shard(cpu, |shard| {
            apply(shard, KernelEvent::SyscallEnter { kind })
        });
    }

    /// Records a dispatcher return: the exit event plus the latency
    /// histogram update.
    pub fn syscall_exit(&self, cpu: usize, kind: SyscallKind, class: ReturnClass, cycles: u64) {
        self.with_shard(cpu, |shard| {
            apply(
                shard,
                KernelEvent::SyscallExit {
                    kind,
                    class,
                    cycles,
                },
            )
        });
    }

    /// Records a domain-lock acquisition observed by a [`DomainLock`]
    /// in the kernel crate, attributed to `cpu`'s shard.
    ///
    /// [`DomainLock`]: https://docs.rs/atmo-kernel
    pub fn lock_event(&self, cpu: usize, domain: LockDomain, contended: bool, hold_cycles: u64) {
        self.with_shard(cpu, |shard| {
            let lc = match domain {
                LockDomain::Pm => &mut shard.counters.locks.pm,
                LockDomain::Mem => &mut shard.counters.locks.mem,
                LockDomain::Trace => &mut shard.counters.locks.trace,
            };
            lc.acquisitions += 1;
            if contended {
                lc.contended += 1;
            }
            lc.hold_max_cycles = lc.hold_max_cycles.max(hold_cycles);
        });
    }

    /// Records the modeled cycles one acquisition of `domain` spent
    /// waiting (catching its meter up to the lock's published model
    /// time). Zero waits are recorded too — uncontended acquisitions
    /// belong in the distribution. The trace domain has no modeled
    /// serialization, so its waits are ignored.
    pub fn lock_wait(&self, domain: LockDomain, cycles: u64) {
        let mut h = lock_recovering(&self.lock_wait_hists);
        match domain {
            LockDomain::Pm => h.pm.record(cycles),
            LockDomain::Mem => h.mem.record(cycles),
            LockDomain::Trace => {}
        }
    }

    /// Counts `n` node-replication observations on the CPU attributed
    /// to this OS thread. Counter-only, no ring event (see
    /// [`NrOutcome`]); appends additionally land an audit-ledger entry
    /// when recording is on, so the auditor can balance appended ops
    /// against the logs' published tails.
    pub fn nr_event(&self, outcome: NrOutcome, n: u64) {
        if n == 0 {
            return;
        }
        let audit = self.audit_recording();
        self.with_shard(CURRENT_CPU.get(), |shard| {
            if audit {
                if let NrOutcome::Append = outcome {
                    shard.ledger.push(AuditDelta::NrAppended(n));
                }
            }
            outcome.count_into(&mut shard.counters.nr, n)
        });
    }

    /// Counts an IPC fastpath outcome on the CPU attributed to this OS
    /// thread. Counter-only, no ring event (see [`FastpathOutcome`]).
    pub fn fastpath_event(&self, outcome: FastpathOutcome) {
        self.with_shard(CURRENT_CPU.get(), |shard| {
            outcome.count_into(&mut shard.counters.pm.fastpath)
        });
    }

    /// Counts `n` batched-VM-datapath observations on the CPU attributed
    /// to this OS thread. Counter-only, no ring event (see
    /// [`VmOutcome`]).
    pub fn vm_event(&self, outcome: VmOutcome, n: u64) {
        if n == 0 {
            return;
        }
        self.with_shard(CURRENT_CPU.get(), |shard| {
            outcome.count_into(&mut shard.counters.vm, n)
        });
    }

    /// Counts `n` zero-copy-network-datapath observations on the CPU
    /// attributed to this OS thread. Counter-only, no ring event (see
    /// [`NetOutcome`]); pool acquire/release additionally move the
    /// in-flight gauge.
    pub fn net_event(&self, outcome: NetOutcome, n: u64) {
        if n == 0 {
            return;
        }
        match outcome {
            NetOutcome::PoolAcquire => *lock_recovering(&self.net_in_flight) += n as i64,
            NetOutcome::PoolRelease => *lock_recovering(&self.net_in_flight) -= n as i64,
            _ => {}
        }
        let audit = self.audit_recording();
        self.with_shard(CURRENT_CPU.get(), |shard| {
            // Handle movements double as audit-ledger entries, so pool
            // users need no extra instrumentation.
            if audit {
                match outcome {
                    NetOutcome::PoolAcquire => {
                        shard.ledger.push(AuditDelta::HandleNet(n as i64));
                    }
                    NetOutcome::PoolRelease => {
                        shard.ledger.push(AuditDelta::HandleNet(-(n as i64)));
                    }
                    _ => {}
                }
            }
            outcome.count_into(&mut shard.counters.net, n)
        });
    }

    /// Packet-pool slots currently in flight (acquired − released across
    /// all CPUs).
    pub fn net_in_flight(&self) -> i64 {
        *lock_recovering(&self.net_in_flight)
    }

    /// Turns audit-delta recording on or off. Turning it off leaves any
    /// pending ledger entries in place; the auditor discards them before
    /// rebaselining.
    pub fn set_audit_recording(&self, on: bool) {
        self.audit_recording.store(on, Ordering::Relaxed);
    }

    /// `true` when mutations are recording audit deltas.
    pub fn audit_recording(&self) -> bool {
        self.audit_recording.load(Ordering::Relaxed)
    }

    /// Appends one audit delta to the ledger of the CPU attributed to
    /// this OS thread. No-op unless recording is enabled.
    pub fn audit_delta(&self, d: AuditDelta) {
        if !self.audit_recording() {
            return;
        }
        self.with_shard(CURRENT_CPU.get(), |shard| shard.ledger.push(d));
    }

    /// Moves every pending ledger entry (all CPUs) into `into`,
    /// preserving per-shard order. The caller's buffer keeps its
    /// capacity across audits, so steady-state folding allocates
    /// nothing.
    pub fn drain_audit_ledgers(&self, into: &mut Vec<AuditDelta>) {
        for mutex in self.shards.iter() {
            let mut shard = lock_recovering(mutex);
            into.append(&mut shard.ledger);
        }
    }

    /// Pending ledger entries across all CPUs (diagnostic).
    pub fn audit_ledger_len(&self) -> usize {
        self.shards
            .iter()
            .map(|m| lock_recovering(m).ledger.len())
            .sum()
    }

    /// Records one completed audit on the CPU attributed to this OS
    /// thread: an incremental audit that folded `touched` ledger
    /// entries, or a full stop-the-world audit (`touched` ignored).
    /// `cycles` is the audit's wall-clock cost converted to modeled
    /// cycles (like lock hold times).
    pub fn audit_event(&self, incremental: bool, touched: u64, cycles: u64) {
        self.with_shard(CURRENT_CPU.get(), |shard| {
            let a = &mut shard.counters.audit;
            if incremental {
                a.incremental += 1;
                a.touched_entries += touched;
            } else {
                a.full += 1;
            }
        });
        let mut h = lock_recovering(&self.audit_hists);
        if incremental {
            h.incremental.record(cycles);
            h.touched.record(touched);
        } else {
            h.full.record(cycles);
        }
    }

    /// Records one run-queue pick on the CPU attributed to this OS
    /// thread: the shard's `sched.picks` counter advances and the
    /// pick's cost (wall-clock nanoseconds converted to modeled cycles,
    /// like lock hold times) lands in the sink's pick-latency
    /// histogram. One method for both so the histogram's sample count
    /// balances `sched.picks` exactly under `trace_wf`.
    pub fn sched_pick(&self, cycles: u64) {
        self.with_shard(CURRENT_CPU.get(), |shard| {
            shard.counters.sched.picks += 1;
        });
        lock_recovering(&self.sched_pick_hist).record(cycles);
    }

    /// Counts `n` multi-tenant-scheduler observations on the CPU
    /// attributed to this OS thread. Counter-only, no ring event (see
    /// [`SchedOutcome`]); budget grant/charge/refund movements emit
    /// their own [`AuditDelta`]s at the account sites, not here.
    pub fn sched_event(&self, outcome: SchedOutcome, n: u64) {
        if n == 0 {
            return;
        }
        self.with_shard(CURRENT_CPU.get(), |shard| {
            outcome.count_into(&mut shard.counters.sched, n)
        });
    }

    /// Counts `n` zero-copy-block-datapath observations on the CPU
    /// attributed to this OS thread. Counter-only, no ring event (see
    /// [`BlkOutcome`]); pool acquire/release additionally move the blk
    /// in-flight gauge.
    pub fn blk_event(&self, outcome: BlkOutcome, n: u64) {
        if n == 0 {
            return;
        }
        match outcome {
            BlkOutcome::PoolAcquire => *lock_recovering(&self.blk_in_flight) += n as i64,
            BlkOutcome::PoolRelease => *lock_recovering(&self.blk_in_flight) -= n as i64,
            _ => {}
        }
        let audit = self.audit_recording();
        self.with_shard(CURRENT_CPU.get(), |shard| {
            if audit {
                match outcome {
                    BlkOutcome::PoolAcquire => {
                        shard.ledger.push(AuditDelta::HandleBlk(n as i64));
                    }
                    BlkOutcome::PoolRelease => {
                        shard.ledger.push(AuditDelta::HandleBlk(-(n as i64)));
                    }
                    _ => {}
                }
            }
            outcome.count_into(&mut shard.counters.blk, n)
        });
    }

    /// Block-pool slots currently in flight (acquired − released across
    /// all CPUs).
    pub fn blk_in_flight(&self) -> i64 {
        *lock_recovering(&self.blk_in_flight)
    }

    /// Counts `n` event-driven-httpd observations on the CPU attributed
    /// to this OS thread. Counter-only, no ring event (see
    /// [`HttpdOutcome`]). Unlike the other subsystem events,
    /// `ReadyBatch` is recorded even for `n == 0`: an empty event-loop
    /// iteration is a sample of the O(ready) claim, and its size lands
    /// in the sink's ready-batch histogram.
    pub fn httpd_event(&self, outcome: HttpdOutcome, n: u64) {
        if n == 0 && outcome != HttpdOutcome::ReadyBatch {
            return;
        }
        if outcome == HttpdOutcome::ReadyBatch {
            lock_recovering(&self.httpd_ready_hist).record(n);
        }
        self.with_shard(CURRENT_CPU.get(), |shard| {
            outcome.count_into(&mut shard.counters.httpd, n)
        });
    }

    /// Builds the merged snapshot: per-CPU ring summaries, merged
    /// per-kind syscall statistics and the merged subsystem counters.
    ///
    /// Shards are read one at a time, so each per-CPU summary is
    /// internally coherent; the cross-CPU merge is exact whenever the
    /// sink is quiescent (all snapshot call sites — audits, reports,
    /// `TraceSnapshot` syscalls under the pm lock — satisfy this for
    /// the counters they assert on).
    pub fn snapshot(&self) -> Snapshot {
        let mut per_cpu = Vec::with_capacity(self.shards.len());
        let mut merged_kinds = [0u64; NUM_EVENT_KINDS];
        let mut merged: Vec<SyscallStats> = vec![SyscallStats::default(); NUM_SYSCALL_KINDS];
        let mut counters = Counters::default();
        let mut total_events = 0u64;
        let mut total_dropped = 0u64;
        for (cpu, mutex) in self.shards.iter().enumerate() {
            let c = lock_recovering(mutex);
            for (m, k) in merged_kinds.iter_mut().zip(c.kinds.iter()) {
                *m += k;
            }
            for (m, s) in merged.iter_mut().zip(c.syscalls.iter()) {
                m.enters += s.enters;
                m.exits += s.exits;
                m.ok += s.ok;
                m.errs += s.errs;
                m.hist.merge(&s.hist);
            }
            counters.merge(&c.counters);
            total_events += c.ring.head();
            total_dropped += c.ring.dropped();
            per_cpu.push(CpuSummary {
                cpu,
                head: c.ring.head(),
                tail: c.ring.tail(),
                dropped: c.ring.dropped(),
                kinds: c.kinds,
                per_kind_enters: c.syscalls.iter().map(|s| s.enters).collect(),
                per_kind_exits: c.syscalls.iter().map(|s| s.exits).collect(),
            });
        }
        let syscalls = SyscallKind::ALL
            .iter()
            .map(|&kind| {
                let s = &merged[kind.index()];
                SyscallSummary {
                    kind,
                    enters: s.enters,
                    exits: s.exits,
                    ok: s.ok,
                    errs: s.errs,
                    mean_cycles: s.hist.mean(),
                    p50_cycles: s.hist.p50(),
                    p90_cycles: s.hist.p90(),
                    p99_cycles: s.hist.p99(),
                    max_cycles: s.hist.max(),
                }
            })
            .collect();
        let hists = lock_recovering(&self.audit_hists);
        let waits = lock_recovering(&self.lock_wait_hists);
        let ready = lock_recovering(&self.httpd_ready_hist);
        let picks = lock_recovering(&self.sched_pick_hist);
        let httpd_conns_live = counters.httpd.accepts as i64 - counters.httpd.closes as i64;
        Snapshot {
            per_cpu,
            syscalls,
            kinds: merged_kinds,
            counters,
            net_in_flight: self.net_in_flight(),
            blk_in_flight: self.blk_in_flight(),
            audit_incremental_hist: hists.incremental.clone(),
            audit_full_hist: hists.full.clone(),
            audit_touched_hist: hists.touched.clone(),
            lock_wait_pm_hist: waits.pm.clone(),
            lock_wait_mem_hist: waits.mem.clone(),
            httpd_conns_live,
            httpd_ready_hist: ready.clone(),
            sched_pick_hist: picks.clone(),
            total_events,
            total_dropped,
        }
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("ncpus", &self.shards.len())
            .finish()
    }
}

fn apply(shard: &mut PerCpuTrace, ev: KernelEvent) {
    let counters = &mut shard.counters;
    match ev {
        KernelEvent::ContextSwitch { .. } => counters.pm.context_switches += 1,
        KernelEvent::EndpointSend { rendezvous, .. } => {
            counters.pm.ipc_sends += 1;
            if rendezvous {
                counters.pm.rendezvous += 1;
            }
        }
        KernelEvent::EndpointRecv { rendezvous, .. } => {
            counters.pm.ipc_recvs += 1;
            if rendezvous {
                counters.pm.rendezvous += 1;
            }
        }
        KernelEvent::PageAlloc { frames, .. } => {
            counters.mem.allocs += 1;
            counters.mem.frames_allocated += frames;
        }
        KernelEvent::PageFree { frames, .. } => {
            counters.mem.frees += 1;
            counters.mem.frames_freed += frames;
        }
        KernelEvent::PtMap { frames, .. } => {
            counters.ptable.maps += 1;
            counters.ptable.frames_mapped += frames;
        }
        KernelEvent::PtUnmap { frames, .. } => {
            counters.ptable.unmaps += 1;
            counters.ptable.frames_unmapped += frames;
        }
        KernelEvent::DriverRx { batch, .. } => {
            counters.drivers.rx_batches += 1;
            counters.drivers.rx_items += batch;
        }
        KernelEvent::DriverTx { batch, .. } => {
            counters.drivers.tx_batches += 1;
            counters.drivers.tx_items += batch;
        }
        KernelEvent::SyscallEnter { .. } | KernelEvent::SyscallExit { .. } => {}
    }
    shard.ring.push(ev);
    shard.kinds[ev.kind().index()] += 1;
    match ev {
        KernelEvent::SyscallEnter { kind } => shard.syscalls[kind.index()].enters += 1,
        KernelEvent::SyscallExit {
            kind,
            class,
            cycles,
        } => {
            let s = &mut shard.syscalls[kind.index()];
            s.exits += 1;
            if class.is_ok() {
                s.ok += 1;
            } else {
                s.errs += 1;
            }
            s.hist.record(cycles);
        }
        _ => {}
    }
}

/// The trace subsystem's well-formedness invariant (conjoined into the
/// kernel's `total_wf`):
///
/// * every per-CPU ring is coherent (`tail ≤ head`,
///   `head − tail ≤ capacity`, retained slots carry their sequence
///   numbers, `dropped` accounts for the advanced tail);
/// * per shard, the per-kind event counts sum to the ring's `head` (no
///   event pushed without being counted, none counted without a push);
/// * per shard and syscall kind, the latency histogram total equals the
///   exit count, `ok + errs = exits`, and at most one call is in flight
///   (`exits ≤ enters ≤ exits + 1`);
/// * per shard, the subsystem counters reconcile with that shard's
///   per-kind event counts (e.g. `pm.context_switches` = `ContextSwitch`
///   events) — a *stronger* statement than the old global-sink check,
///   because counters and events are updated under the same shard lock;
/// * no merged counter has decreased since the previous audit
///   (low-water mark, raised on every check).
pub fn trace_wf(sink: &TraceSink) -> VerifResult {
    let mut kind_totals = [0u64; NUM_EVENT_KINDS];
    let mut enter_total = 0u64;
    let mut exit_total = 0u64;
    let mut merged = Counters::default();
    for (cpu, mutex) in sink.shards.iter().enumerate() {
        let c = lock_recovering(mutex);
        c.ring.wf()?;
        let pushed: u64 = c.kinds.iter().sum();
        check(
            pushed == c.ring.head(),
            "trace",
            format!(
                "cpu {cpu}: {pushed} counted events but ring head {}",
                c.ring.head()
            ),
        )?;
        for (m, k) in kind_totals.iter_mut().zip(c.kinds.iter()) {
            *m += k;
        }
        for (kind, s) in SyscallKind::ALL.iter().zip(c.syscalls.iter()) {
            s.hist.wf()?;
            check(
                s.hist.count() == s.exits,
                "trace",
                format!(
                    "cpu {cpu} {}: histogram holds {} samples for {} exits",
                    kind.name(),
                    s.hist.count(),
                    s.exits
                ),
            )?;
            check(
                s.ok + s.errs == s.exits,
                "trace",
                format!("cpu {cpu} {}: ok+errs != exits", kind.name()),
            )?;
            check(
                s.exits <= s.enters && s.enters <= s.exits + 1,
                "trace",
                format!(
                    "cpu {cpu} {}: {} enters vs {} exits",
                    kind.name(),
                    s.enters,
                    s.exits
                ),
            )?;
            enter_total += s.enters;
            exit_total += s.exits;
        }
        let ctrs = c.counters;
        let pairs = [
            (
                "pm.context_switches",
                ctrs.pm.context_switches,
                EventKind::ContextSwitch,
            ),
            ("pm.ipc_sends", ctrs.pm.ipc_sends, EventKind::EndpointSend),
            ("pm.ipc_recvs", ctrs.pm.ipc_recvs, EventKind::EndpointRecv),
            ("mem.allocs", ctrs.mem.allocs, EventKind::PageAlloc),
            ("mem.frees", ctrs.mem.frees, EventKind::PageFree),
            ("ptable.maps", ctrs.ptable.maps, EventKind::PtMap),
            ("ptable.unmaps", ctrs.ptable.unmaps, EventKind::PtUnmap),
            (
                "drivers.rx_batches",
                ctrs.drivers.rx_batches,
                EventKind::DriverRx,
            ),
            (
                "drivers.tx_batches",
                ctrs.drivers.tx_batches,
                EventKind::DriverTx,
            ),
        ];
        for (name, counter, kind) in pairs {
            check(
                counter == c.kinds[kind.index()],
                "trace",
                format!(
                    "cpu {cpu}: counter {name} = {counter} but {} {} events",
                    c.kinds[kind.index()],
                    kind.name()
                ),
            )?;
        }
        check(
            ctrs.pm.rendezvous <= ctrs.pm.ipc_sends + ctrs.pm.ipc_recvs,
            "trace",
            format!("cpu {cpu}: more rendezvous than IPC operations"),
        )?;
        // Every fastpath hit performs a rendezvous delivery (and emits
        // the same EndpointSend/EndpointRecv pair as the slow path), so
        // hits can never outnumber rendezvous completions on a shard.
        check(
            ctrs.pm.fastpath.hits <= ctrs.pm.rendezvous,
            "trace",
            format!("cpu {cpu}: more fastpath hits than rendezvous deliveries"),
        )?;
        // A batched shootdown flush only drains invalidations the same
        // mem critical section queued, so on any shard the flushed pages
        // can never outnumber the deferred ones.
        check(
            ctrs.vm.tlb_shootdowns_flushed <= ctrs.vm.tlb_shootdowns_deferred,
            "trace",
            format!("cpu {cpu}: more shootdown pages flushed than deferred"),
        )?;
        merged.merge(&ctrs);
    }
    // Pool ledger: slots in flight are exactly the acquired-but-not-yet-
    // released ones. Checked on the merged view only — a PktBuf may be
    // released on a different CPU than it was acquired on, so per-shard
    // released can legitimately exceed per-shard acquired.
    let in_flight = *lock_recovering(&sink.net_in_flight);
    check(
        in_flight >= 0,
        "trace",
        format!("net pool gauge negative: {in_flight} slots in flight"),
    )?;
    check(
        merged.net.pool_acquired == merged.net.pool_released + in_flight as u64,
        "trace",
        format!(
            "net pool ledger: {} acquired != {} released + {in_flight} in flight",
            merged.net.pool_acquired, merged.net.pool_released
        ),
    )?;
    // Block-pool ledger: same merged-view discipline as the net pool —
    // a BlkBuf may be reaped and released on a different CPU than it
    // was acquired on.
    let blk_in_flight = *lock_recovering(&sink.blk_in_flight);
    check(
        blk_in_flight >= 0,
        "trace",
        format!("blk pool gauge negative: {blk_in_flight} slots in flight"),
    )?;
    check(
        merged.blk.pool_acquired == merged.blk.pool_released + blk_in_flight as u64,
        "trace",
        format!(
            "blk pool ledger: {} acquired != {} released + {blk_in_flight} in flight",
            merged.blk.pool_acquired, merged.blk.pool_released
        ),
    )?;
    // Completions are reaped from prior submissions; globally the CQ can
    // never return more I/Os than the SQ accepted.
    check(
        merged.blk.reap_ios <= merged.blk.submit_ios,
        "trace",
        format!(
            "blk queues reaped {} I/Os but only {} were submitted",
            merged.blk.reap_ios, merged.blk.submit_ios
        ),
    )?;
    // Node-replication accounting: every flat-combining flush drains at
    // least one op (empty drains are not counted), so flushes can never
    // outnumber appended ops; and each appended op is replayed at most
    // once per replica plus once by the auditor's shadow fold. The
    // replica count is bounded by the shard count, since replicas are
    // per-CPU.
    check(
        merged.nr.combine_batches <= merged.nr.appended,
        "trace",
        format!(
            "nr log: {} combine batches but only {} appended ops",
            merged.nr.combine_batches, merged.nr.appended
        ),
    )?;
    check(
        merged.nr.replayed <= merged.nr.appended * (sink.shards.len() as u64 + 1),
        "trace",
        format!(
            "nr log: {} replayed ops exceeds {} appended × ({} replicas + 1)",
            merged.nr.replayed,
            merged.nr.appended,
            sink.shards.len()
        ),
    )?;
    // Lock-wait histograms: internally coherent, and each recorded wait
    // annotates one domain-lock acquisition, so samples can never
    // outnumber acquisitions.
    {
        let waits = lock_recovering(&sink.lock_wait_hists);
        waits.pm.wf()?;
        waits.mem.wf()?;
        check(
            waits.pm.count() <= merged.locks.pm.acquisitions
                && waits.mem.count() <= merged.locks.mem.acquisitions,
            "trace",
            format!(
                "lock-wait histograms hold {}/{} samples for {}/{} pm/mem acquisitions",
                waits.pm.count(),
                waits.mem.count(),
                merged.locks.pm.acquisitions,
                merged.locks.mem.acquisitions
            ),
        )?;
    }
    // Event-driven httpd accounting: the live gauge (accepts − closes)
    // never goes negative, timeout-driven closes are a subset of all
    // closes, parked connections resume at most once, and the ready-
    // batch histogram holds exactly one sample per event-loop poll —
    // every iteration records its ready-set size, empty ones included.
    check(
        merged.httpd.closes <= merged.httpd.accepts,
        "trace",
        format!(
            "httpd ledger: {} closes exceed {} accepts",
            merged.httpd.closes, merged.httpd.accepts
        ),
    )?;
    check(
        merged.httpd.timeouts_keepalive
            + merged.httpd.timeouts_header
            + merged.httpd.timeouts_drain
            <= merged.httpd.closes,
        "trace",
        format!(
            "httpd timeouts {}+{}+{} exceed {} closes",
            merged.httpd.timeouts_keepalive,
            merged.httpd.timeouts_header,
            merged.httpd.timeouts_drain,
            merged.httpd.closes
        ),
    )?;
    check(
        merged.httpd.unparked <= merged.httpd.parked,
        "trace",
        format!(
            "httpd backpressure: {} unparked but only {} parked",
            merged.httpd.unparked, merged.httpd.parked
        ),
    )?;
    {
        let ready = lock_recovering(&sink.httpd_ready_hist);
        ready.wf()?;
        check(
            ready.count() == merged.httpd.polls,
            "trace",
            format!(
                "ready-batch histogram holds {} samples for {} polls",
                ready.count(),
                merged.httpd.polls
            ),
        )?;
    }
    // Multi-tenant-scheduler accounting: a parked thread resumes at
    // most once per park, an account unthrottles at most once per
    // throttle, and the pick-latency histogram holds exactly one
    // sample per run-queue pick — `sched_pick` moves both under the
    // same call, so a drifted pair means a lost or forged sample.
    check(
        merged.sched.unparked <= merged.sched.parked,
        "trace",
        format!(
            "sched parking: {} unparked but only {} parked",
            merged.sched.unparked, merged.sched.parked
        ),
    )?;
    check(
        merged.sched.unthrottles <= merged.sched.throttles,
        "trace",
        format!(
            "sched budgets: {} unthrottles but only {} throttles",
            merged.sched.unthrottles, merged.sched.throttles
        ),
    )?;
    {
        let picks = lock_recovering(&sink.sched_pick_hist);
        picks.wf()?;
        check(
            picks.count() == merged.sched.picks,
            "trace",
            format!(
                "pick-latency histogram holds {} samples for {} picks",
                picks.count(),
                merged.sched.picks
            ),
        )?;
    }
    // Every full audit folds the pending ledger first (that fold is
    // counted as an incremental audit), so incremental audits can never
    // trail full ones.
    check(
        merged.audit.incremental >= merged.audit.full,
        "trace",
        format!(
            "audit ledger: {} incremental audits but {} full audits",
            merged.audit.incremental, merged.audit.full
        ),
    )?;
    {
        let hists = lock_recovering(&sink.audit_hists);
        hists.incremental.wf()?;
        hists.full.wf()?;
        hists.touched.wf()?;
        check(
            hists.incremental.count() == merged.audit.incremental
                && hists.full.count() == merged.audit.full,
            "trace",
            format!(
                "audit histograms hold {}/{} samples for {}/{} audits",
                hists.incremental.count(),
                hists.full.count(),
                merged.audit.incremental,
                merged.audit.full
            ),
        )?;
        check(
            hists.touched.total_cycles() == merged.audit.touched_entries,
            "trace",
            format!(
                "touched-entry histogram sums {} entries but counters saw {}",
                hists.touched.total_cycles(),
                merged.audit.touched_entries
            ),
        )?;
    }
    check(
        kind_totals[EventKind::SyscallEnter.index()] == enter_total
            && kind_totals[EventKind::SyscallExit.index()] == exit_total,
        "trace",
        "per-kind syscall stats disagree with event counts",
    )?;
    let mut low = lock_recovering(&sink.low_water);
    merged.monotone_since(&low)?;
    *low = merged;
    Ok(())
}

impl Invariant for TraceSink {
    fn wf(&self) -> VerifResult {
        trace_wf(self)
    }
}

/// An optional trace handle a subsystem can hold without disturbing its
/// derived `Clone`/`PartialEq`/`Eq`: two shares always compare equal, so
/// attaching a tracer never changes a subsystem's abstract state.
#[derive(Clone, Default)]
pub struct TraceShare(Option<TraceHandle>);

impl TraceShare {
    /// A share of `sink`.
    pub fn new(sink: TraceHandle) -> Self {
        TraceShare(Some(sink))
    }

    /// A share with no sink attached (emissions are dropped).
    pub fn detached() -> Self {
        TraceShare(None)
    }

    /// Attaches `sink`; subsequent emissions land in it.
    pub fn attach(&mut self, sink: TraceHandle) {
        self.0 = Some(sink);
    }

    /// `true` when a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Emits on the attributed CPU (no-op when detached).
    pub fn emit(&self, ev: KernelEvent) {
        if let Some(sink) = &self.0 {
            sink.emit(ev);
        }
    }

    /// Counts an IPC fastpath outcome (no-op when detached).
    pub fn fastpath(&self, outcome: FastpathOutcome) {
        if let Some(sink) = &self.0 {
            sink.fastpath_event(outcome);
        }
    }

    /// Counts `n` batched-VM-datapath observations (no-op when
    /// detached).
    pub fn vm(&self, outcome: VmOutcome, n: u64) {
        if let Some(sink) = &self.0 {
            sink.vm_event(outcome, n);
        }
    }

    /// Counts `n` zero-copy-network-datapath observations (no-op when
    /// detached).
    pub fn net(&self, outcome: NetOutcome, n: u64) {
        if let Some(sink) = &self.0 {
            sink.net_event(outcome, n);
        }
    }

    /// Counts `n` zero-copy-block-datapath observations (no-op when
    /// detached).
    pub fn blk(&self, outcome: BlkOutcome, n: u64) {
        if let Some(sink) = &self.0 {
            sink.blk_event(outcome, n);
        }
    }

    /// Counts `n` node-replication observations (no-op when detached).
    pub fn nr(&self, outcome: NrOutcome, n: u64) {
        if let Some(sink) = &self.0 {
            sink.nr_event(outcome, n);
        }
    }

    /// Counts `n` event-driven-httpd observations (no-op when
    /// detached).
    pub fn httpd(&self, outcome: HttpdOutcome, n: u64) {
        if let Some(sink) = &self.0 {
            sink.httpd_event(outcome, n);
        }
    }

    /// Records one run-queue pick costing `cycles` (no-op when
    /// detached).
    pub fn sched_pick(&self, cycles: u64) {
        if let Some(sink) = &self.0 {
            sink.sched_pick(cycles);
        }
    }

    /// Counts `n` multi-tenant-scheduler observations (no-op when
    /// detached).
    pub fn sched(&self, outcome: SchedOutcome, n: u64) {
        if let Some(sink) = &self.0 {
            sink.sched_event(outcome, n);
        }
    }

    /// Appends one audit-ledger delta (no-op when detached or when
    /// recording is off).
    pub fn audit(&self, d: AuditDelta) {
        if let Some(sink) = &self.0 {
            sink.audit_delta(d);
        }
    }

    /// The underlying handle, when attached.
    pub fn handle(&self) -> Option<&TraceHandle> {
        self.0.as_ref()
    }
}

impl fmt::Debug for TraceShare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "TraceShare(attached)"
        } else {
            "TraceShare(detached)"
        })
    }
}

impl PartialEq for TraceShare {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for TraceShare {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emissions_are_counted_and_wf_holds() {
        let sink = TraceSink::new(2, 8);
        sink.syscall_enter(1, SyscallKind::Mmap);
        sink.emit(KernelEvent::PageAlloc {
            frames: 1,
            closure_delta: 1,
        });
        sink.emit(KernelEvent::PtMap {
            va: 0x1000,
            frames: 1,
        });
        sink.syscall_exit(1, SyscallKind::Mmap, ReturnClass::Ok, 1234);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
        let snap = sink.snapshot();
        assert_eq!(snap.exits(SyscallKind::Mmap), 1);
        assert_eq!(snap.counters.mem.allocs, 1);
        assert_eq!(snap.counters.ptable.maps, 1);
        assert_eq!(snap.per_cpu[1].head, 4, "all events on the set CPU");
        assert_eq!(snap.per_cpu[0].head, 0);
    }

    #[test]
    fn wf_detects_counter_regression() {
        let sink = TraceSink::new(1, 8);
        sink.emit(KernelEvent::ContextSwitch {
            cpu: 0,
            from: None,
            to: Some(1),
        });
        assert!(trace_wf(&sink).is_ok());
        // Forge a regression on the shard: counter no longer matches the
        // shard's own event count.
        lock_recovering(&sink.shards[0])
            .counters
            .pm
            .context_switches = 0;
        assert!(trace_wf(&sink).is_err());
    }

    #[test]
    fn shares_compare_equal_regardless_of_attachment() {
        let a = TraceShare::detached();
        let b = TraceShare::new(TraceSink::new(1, 4));
        assert_eq!(a, b);
        b.emit(KernelEvent::DriverRx {
            device: crate::event::DeviceKind::Ixgbe,
            batch: 32,
        });
        assert_eq!(b.handle().unwrap().snapshot().counters.drivers.rx_items, 32);
    }

    #[test]
    fn ring_overflow_keeps_wf() {
        let sink = TraceSink::new(1, 4);
        sink.set_cpu(0);
        for i in 0..64 {
            sink.emit(KernelEvent::PtMap { va: i, frames: 1 });
        }
        assert!(trace_wf(&sink).is_ok());
        let snap = sink.snapshot();
        assert_eq!(snap.total_events, 64);
        assert_eq!(snap.total_dropped, 60);
        assert_eq!(snap.counters.ptable.maps, 64, "counters survive overwrite");
    }

    #[test]
    fn lock_events_accumulate_per_domain() {
        let sink = TraceSink::new(2, 8);
        sink.lock_event(0, LockDomain::Pm, false, 100);
        sink.lock_event(0, LockDomain::Pm, true, 700);
        sink.lock_event(1, LockDomain::Mem, false, 40);
        let snap = sink.snapshot();
        assert_eq!(snap.counters.locks.pm.acquisitions, 2);
        assert_eq!(snap.counters.locks.pm.contended, 1);
        assert_eq!(snap.counters.locks.pm.hold_max_cycles, 700);
        assert_eq!(snap.counters.locks.mem.acquisitions, 1);
        assert!(
            snap.counters.locks.trace.acquisitions >= 3,
            "shard locks self-instrument"
        );
        assert!(trace_wf(&sink).is_ok());
    }

    #[test]
    fn fastpath_events_accumulate_without_ring_entries() {
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        // A hit performs a rendezvous delivery: the same event pair the
        // slow path emits, plus the counter-only outcome.
        sink.emit(KernelEvent::EndpointSend {
            endpoint: 0x1000,
            rendezvous: true,
        });
        sink.emit(KernelEvent::EndpointRecv {
            endpoint: 0x1000,
            rendezvous: false,
        });
        sink.fastpath_event(FastpathOutcome::Hit);
        sink.fastpath_event(FastpathOutcome::CrossCpu);
        sink.fastpath_event(FastpathOutcome::SlotCacheHit);
        let snap = sink.snapshot();
        assert_eq!(snap.counters.pm.fastpath.hits, 1);
        assert_eq!(snap.counters.pm.fastpath.fallback_cross_cpu, 1);
        assert_eq!(snap.counters.pm.fastpath.slot_cache_hits, 1);
        assert_eq!(snap.counters.pm.fastpath.fallbacks(), 1);
        assert_eq!(snap.total_events, 2, "outcomes never enter the ring");
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
    }

    #[test]
    fn net_events_accumulate_and_balance_the_pool_ledger() {
        let sink = TraceSink::new(2, 16);
        sink.set_cpu(0);
        sink.net_event(NetOutcome::PoolAcquire, 32);
        sink.net_event(NetOutcome::RxBatch, 32);
        sink.net_event(NetOutcome::SteerHit, 32);
        // The batch is transmitted — and released — on the other CPU:
        // the ledger must still balance on the merged view.
        sink.set_cpu(1);
        sink.net_event(NetOutcome::TxBatch, 32);
        sink.net_event(NetOutcome::PoolRelease, 24);
        assert_eq!(sink.net_in_flight(), 8);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
        let snap = sink.snapshot();
        assert_eq!(snap.counters.net.pool_acquired, 32);
        assert_eq!(snap.counters.net.pool_released, 24);
        assert_eq!(snap.net_in_flight, 8);
        assert_eq!(snap.counters.net.rx_zc_batches, 1);
        assert_eq!(snap.counters.net.rx_zc_frames, 32);
        assert_eq!(snap.counters.net.tx_zc_frames, 32);
        assert_eq!(snap.counters.net.steer_hits, 32);
        assert_eq!(snap.total_events, 0, "outcomes never enter the ring");
        sink.net_event(NetOutcome::PoolRelease, 8);
        assert_eq!(sink.net_in_flight(), 0);
        assert!(trace_wf(&sink).is_ok());
    }

    #[test]
    fn blk_events_accumulate_and_balance_the_pool_ledger() {
        let sink = TraceSink::new(2, 16);
        sink.set_cpu(0);
        sink.blk_event(BlkOutcome::PoolAcquire, 32);
        sink.blk_event(BlkOutcome::SubmitBatch, 32);
        // Completions are reaped — and buffers released — on the other
        // CPU: the ledger must still balance on the merged view.
        sink.set_cpu(1);
        sink.blk_event(BlkOutcome::ReapBatch, 32);
        sink.blk_event(BlkOutcome::Wakeup, 1);
        sink.blk_event(BlkOutcome::PoolRelease, 24);
        assert_eq!(sink.blk_in_flight(), 8);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
        let snap = sink.snapshot();
        assert_eq!(snap.counters.blk.pool_acquired, 32);
        assert_eq!(snap.counters.blk.pool_released, 24);
        assert_eq!(snap.blk_in_flight, 8);
        assert_eq!(snap.counters.blk.submit_batches, 1);
        assert_eq!(snap.counters.blk.submit_ios, 32);
        assert_eq!(snap.counters.blk.reap_batches, 1);
        assert_eq!(snap.counters.blk.reap_ios, 32);
        assert_eq!(snap.counters.blk.wakeups, 1);
        assert_eq!(snap.total_events, 0, "outcomes never enter the ring");
        sink.blk_event(BlkOutcome::PoolRelease, 8);
        assert_eq!(sink.blk_in_flight(), 0);
        assert!(trace_wf(&sink).is_ok());
    }

    #[test]
    fn nr_events_accumulate_and_ledger_appends_when_recording() {
        let sink = TraceSink::new(2, 8);
        sink.set_cpu(0);
        sink.nr_event(NrOutcome::Append, 3);
        sink.nr_event(NrOutcome::CombineBatch, 1);
        sink.nr_event(NrOutcome::Replay, 3);
        sink.set_cpu(1);
        sink.nr_event(NrOutcome::Replay, 3);
        sink.nr_event(NrOutcome::ReadLocal, 10);
        sink.nr_event(NrOutcome::FallbackLocked, 2);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
        let snap = sink.snapshot();
        assert_eq!(snap.counters.nr.appended, 3);
        assert_eq!(snap.counters.nr.combine_batches, 1);
        assert_eq!(snap.counters.nr.replayed, 6);
        assert_eq!(snap.counters.nr.read_local, 10);
        assert_eq!(snap.counters.nr.fallback_locked, 2);
        assert_eq!(snap.total_events, 0, "outcomes never enter the ring");
        assert_eq!(sink.audit_ledger_len(), 0, "no ledger while recording off");
        sink.set_audit_recording(true);
        sink.nr_event(NrOutcome::Append, 2);
        sink.nr_event(NrOutcome::ReadLocal, 1);
        assert_eq!(sink.audit_ledger_len(), 1, "only appends enter the ledger");
        let mut drained = Vec::new();
        sink.drain_audit_ledgers(&mut drained);
        assert_eq!(drained, vec![AuditDelta::NrAppended(2)]);
    }

    #[test]
    fn sched_events_accumulate_and_picks_balance_the_histogram() {
        let sink = TraceSink::new(2, 8);
        sink.set_cpu(0);
        sink.sched_event(SchedOutcome::Enqueue, 3);
        sink.sched_pick(120);
        sink.sched_event(SchedOutcome::Park, 2);
        sink.sched_event(SchedOutcome::Throttle, 1);
        sink.set_cpu(1);
        sink.sched_pick(80);
        sink.sched_event(SchedOutcome::Unpark, 2);
        sink.sched_event(SchedOutcome::Unthrottle, 1);
        sink.sched_event(SchedOutcome::Refill, 1);
        sink.sched_event(SchedOutcome::InheritHandoff, 4);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
        let snap = sink.snapshot();
        assert_eq!(snap.counters.sched.picks, 2);
        assert_eq!(snap.counters.sched.enqueues, 3);
        assert_eq!(snap.counters.sched.parked, 2);
        assert_eq!(snap.counters.sched.unparked, 2);
        assert_eq!(snap.counters.sched.inherited_handoffs, 4);
        assert_eq!(snap.sched_pick_hist.count(), 2);
        assert_eq!(snap.total_events, 0, "outcomes never enter the ring");
    }

    #[test]
    fn wf_rejects_unpark_without_park_and_forged_pick_samples() {
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        sink.sched_event(SchedOutcome::Unpark, 1);
        assert!(trace_wf(&sink).is_err(), "unpark without a park must fail");
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        sink.sched_pick(50);
        assert!(trace_wf(&sink).is_ok());
        lock_recovering(&sink.shards[0]).counters.sched.picks += 1;
        assert!(
            trace_wf(&sink).is_err(),
            "a pick without a histogram sample must fail wf"
        );
    }

    #[test]
    fn wf_rejects_more_combine_batches_than_appends() {
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        sink.nr_event(NrOutcome::Append, 1);
        sink.nr_event(NrOutcome::CombineBatch, 1);
        assert!(trace_wf(&sink).is_ok());
        sink.nr_event(NrOutcome::CombineBatch, 1);
        assert!(
            trace_wf(&sink).is_err(),
            "a combine batch with no appended op must fail wf"
        );
    }

    #[test]
    fn lock_waits_land_in_per_domain_histograms() {
        let sink = TraceSink::new(2, 8);
        sink.lock_event(0, LockDomain::Pm, false, 10);
        sink.lock_event(0, LockDomain::Mem, false, 10);
        sink.lock_wait(LockDomain::Pm, 0);
        sink.lock_wait(LockDomain::Mem, 4200);
        assert!(trace_wf(&sink).is_ok(), "{:?}", trace_wf(&sink));
        let snap = sink.snapshot();
        assert_eq!(snap.lock_wait_pm_hist.count(), 1);
        assert_eq!(snap.lock_wait_pm_hist.max(), 0, "zero waits are recorded");
        assert_eq!(snap.lock_wait_mem_hist.count(), 1);
        assert_eq!(snap.lock_wait_mem_hist.max(), 4200);
        assert!(snap.render().contains("lock.wait_cycles.mem"));
    }

    #[test]
    fn wf_rejects_more_waits_than_acquisitions() {
        let sink = TraceSink::new(1, 8);
        sink.lock_wait(LockDomain::Pm, 100);
        assert!(
            trace_wf(&sink).is_err(),
            "a wait sample with no acquisition must fail wf"
        );
    }

    #[test]
    fn wf_rejects_blk_reaps_exceeding_submissions() {
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        sink.blk_event(BlkOutcome::SubmitBatch, 4);
        sink.blk_event(BlkOutcome::ReapBatch, 4);
        assert!(trace_wf(&sink).is_ok());
        sink.blk_event(BlkOutcome::ReapBatch, 1);
        assert!(
            trace_wf(&sink).is_err(),
            "reaping more I/Os than were submitted must fail wf"
        );
    }

    #[test]
    fn wf_rejects_unbalanced_blk_pool_ledger() {
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        sink.blk_event(BlkOutcome::PoolAcquire, 4);
        assert!(trace_wf(&sink).is_ok(), "in-flight slots are accounted");
        lock_recovering(&sink.shards[0]).counters.blk.pool_released += 1;
        assert!(trace_wf(&sink).is_err(), "ledger imbalance must fail wf");
    }

    #[test]
    fn wf_rejects_unbalanced_pool_ledger() {
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        sink.net_event(NetOutcome::PoolAcquire, 4);
        assert!(trace_wf(&sink).is_ok(), "in-flight slots are accounted");
        // Forge a leak: the counter says released but the gauge did not
        // move (a slot dropped on the floor without a release event).
        lock_recovering(&sink.shards[0]).counters.net.pool_released += 1;
        assert!(trace_wf(&sink).is_err(), "ledger imbalance must fail wf");
    }

    #[test]
    fn wf_rejects_hits_exceeding_rendezvous() {
        let sink = TraceSink::new(1, 8);
        sink.set_cpu(0);
        sink.fastpath_event(FastpathOutcome::Hit);
        assert!(trace_wf(&sink).is_err(), "hit without rendezvous delivery");
    }

    #[test]
    fn attribution_is_per_os_thread() {
        // Two OS threads attribute to different CPUs concurrently; with
        // a thread-local current CPU neither steals the other's events.
        let sink = TraceSink::new(2, 64);
        let s0 = Arc::clone(&sink);
        let s1 = Arc::clone(&sink);
        let t0 = std::thread::spawn(move || {
            s0.set_cpu(0);
            for i in 0..100 {
                s0.emit(KernelEvent::PtMap { va: i, frames: 1 });
            }
        });
        let t1 = std::thread::spawn(move || {
            s1.set_cpu(1);
            for i in 0..100 {
                s1.emit(KernelEvent::PtUnmap { va: i, frames: 1 });
            }
        });
        t0.join().unwrap();
        t1.join().unwrap();
        let snap = sink.snapshot();
        assert_eq!(snap.per_cpu[0].kinds[EventKind::PtMap.index()], 100);
        assert_eq!(snap.per_cpu[0].kinds[EventKind::PtUnmap.index()], 0);
        assert_eq!(snap.per_cpu[1].kinds[EventKind::PtUnmap.index()], 100);
        assert!(trace_wf(&sink).is_ok());
    }
}
