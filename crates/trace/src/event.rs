//! Typed kernel events and their discriminants.

/// Every system call the kernel dispatches, as a dense discriminant.
///
/// Lives here (below the kernel crate) so the tracer can key histograms
/// and counters without depending on `SyscallArgs`; the kernel maps its
/// argument enum onto this one at the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum SyscallKind {
    Mmap,
    Munmap,
    NewContainer,
    TerminateContainer,
    NewProcess,
    NewChildProcess,
    Exit,
    TerminateProcess,
    NewThread,
    NewEndpoint,
    Send,
    Recv,
    Poll,
    Call,
    Reply,
    TakeMsg,
    MapGranted,
    DropGrant,
    MmapHuge2M,
    MunmapHuge2M,
    IommuCreateDomain,
    IommuAttach,
    IommuDetach,
    IommuMap,
    IommuUnmap,
    Yield,
    TraceSnapshot,
    ReplyRecv,
    BlkSubmitBatch,
    BlkReapBatch,
    Getpid,
    ThreadLookup,
    DescriptorResolve,
    VmResolve,
    SchedSetWeight,
    SchedThrottle,
}

/// Number of syscall kinds (array dimension for per-kind state).
pub const NUM_SYSCALL_KINDS: usize = 36;

impl SyscallKind {
    /// All kinds, in discriminant order.
    pub const ALL: [SyscallKind; NUM_SYSCALL_KINDS] = [
        SyscallKind::Mmap,
        SyscallKind::Munmap,
        SyscallKind::NewContainer,
        SyscallKind::TerminateContainer,
        SyscallKind::NewProcess,
        SyscallKind::NewChildProcess,
        SyscallKind::Exit,
        SyscallKind::TerminateProcess,
        SyscallKind::NewThread,
        SyscallKind::NewEndpoint,
        SyscallKind::Send,
        SyscallKind::Recv,
        SyscallKind::Poll,
        SyscallKind::Call,
        SyscallKind::Reply,
        SyscallKind::TakeMsg,
        SyscallKind::MapGranted,
        SyscallKind::DropGrant,
        SyscallKind::MmapHuge2M,
        SyscallKind::MunmapHuge2M,
        SyscallKind::IommuCreateDomain,
        SyscallKind::IommuAttach,
        SyscallKind::IommuDetach,
        SyscallKind::IommuMap,
        SyscallKind::IommuUnmap,
        SyscallKind::Yield,
        SyscallKind::TraceSnapshot,
        SyscallKind::ReplyRecv,
        SyscallKind::BlkSubmitBatch,
        SyscallKind::BlkReapBatch,
        SyscallKind::Getpid,
        SyscallKind::ThreadLookup,
        SyscallKind::DescriptorResolve,
        SyscallKind::VmResolve,
        SyscallKind::SchedSetWeight,
        SyscallKind::SchedThrottle,
    ];

    /// Dense index for per-kind arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SyscallKind::Mmap => "mmap",
            SyscallKind::Munmap => "munmap",
            SyscallKind::NewContainer => "new_container",
            SyscallKind::TerminateContainer => "terminate_container",
            SyscallKind::NewProcess => "new_process",
            SyscallKind::NewChildProcess => "new_child_process",
            SyscallKind::Exit => "exit",
            SyscallKind::TerminateProcess => "terminate_process",
            SyscallKind::NewThread => "new_thread",
            SyscallKind::NewEndpoint => "new_endpoint",
            SyscallKind::Send => "send",
            SyscallKind::Recv => "recv",
            SyscallKind::Poll => "poll",
            SyscallKind::Call => "call",
            SyscallKind::Reply => "reply",
            SyscallKind::TakeMsg => "take_msg",
            SyscallKind::MapGranted => "map_granted",
            SyscallKind::DropGrant => "drop_grant",
            SyscallKind::MmapHuge2M => "mmap_huge_2m",
            SyscallKind::MunmapHuge2M => "munmap_huge_2m",
            SyscallKind::IommuCreateDomain => "iommu_create_domain",
            SyscallKind::IommuAttach => "iommu_attach",
            SyscallKind::IommuDetach => "iommu_detach",
            SyscallKind::IommuMap => "iommu_map",
            SyscallKind::IommuUnmap => "iommu_unmap",
            SyscallKind::Yield => "yield",
            SyscallKind::TraceSnapshot => "trace_snapshot",
            SyscallKind::ReplyRecv => "reply_recv",
            SyscallKind::BlkSubmitBatch => "blk_submit_batch",
            SyscallKind::BlkReapBatch => "blk_reap_batch",
            SyscallKind::Getpid => "getpid",
            SyscallKind::ThreadLookup => "thread_lookup",
            SyscallKind::DescriptorResolve => "descriptor_resolve",
            SyscallKind::VmResolve => "vm_resolve",
            SyscallKind::SchedSetWeight => "sched_set_weight",
            SyscallKind::SchedThrottle => "sched_throttle",
        }
    }
}

/// The class of a syscall return value, mirroring `SyscallError` plus
/// `Ok` (the tracer records the class, not the payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReturnClass {
    /// Success.
    Ok,
    /// Out of physical memory.
    NoMem,
    /// Container quota exhausted.
    Quota,
    /// A fixed-capacity structure is full.
    Capacity,
    /// Referenced object does not exist.
    NotFound,
    /// Malformed arguments.
    Invalid,
    /// Permission denied.
    Denied,
    /// Object in the wrong state.
    WrongState,
    /// Address fault.
    Fault,
}

impl ReturnClass {
    /// `true` for the success class.
    pub fn is_ok(self) -> bool {
        self == ReturnClass::Ok
    }
}

/// Which simulated device emitted a driver batch event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// The ixgbe 10 GbE NIC (§6.3).
    Ixgbe,
    /// The NVMe SSD (§6.4).
    Nvme,
}

/// One traced kernel transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelEvent {
    /// A system call entered the dispatcher on the attributed CPU.
    SyscallEnter {
        /// Which syscall.
        kind: SyscallKind,
    },
    /// The dispatcher returned.
    SyscallExit {
        /// Which syscall.
        kind: SyscallKind,
        /// Success or error class of the return.
        class: ReturnClass,
        /// Modeled cycles between enter and exit (from `hw::cycles`).
        cycles: u64,
    },
    /// The scheduler changed the running thread on a CPU.
    ContextSwitch {
        /// The CPU whose `current` changed.
        cpu: usize,
        /// Previously running thread (`None` = idle).
        from: Option<usize>,
        /// Newly running thread (`None` = idle).
        to: Option<usize>,
    },
    /// A message was sent over an endpoint.
    EndpointSend {
        /// Endpoint object page.
        endpoint: usize,
        /// `true` when a waiting receiver took the message immediately.
        rendezvous: bool,
    },
    /// A message was received from an endpoint.
    EndpointRecv {
        /// Endpoint object page.
        endpoint: usize,
        /// `true` when a queued sender's message was already waiting.
        rendezvous: bool,
    },
    /// Frames left the allocator's free state.
    PageAlloc {
        /// 4 KiB frames allocated (512 for a 2 MiB page, …).
        frames: u64,
        /// Signed change to the owner's `page_closure` size.
        closure_delta: i64,
    },
    /// Frames returned to the allocator's free state.
    PageFree {
        /// 4 KiB frames freed.
        frames: u64,
        /// Signed change to the owner's `page_closure` size.
        closure_delta: i64,
    },
    /// A page-table leaf was written.
    PtMap {
        /// Virtual address of the new mapping.
        va: usize,
        /// 4 KiB frames covered by the leaf.
        frames: u64,
    },
    /// A page-table leaf was cleared.
    PtUnmap {
        /// Virtual address of the removed mapping.
        va: usize,
        /// 4 KiB frames the leaf covered.
        frames: u64,
    },
    /// A driver received a batch of completions/packets.
    DriverRx {
        /// Which device.
        device: DeviceKind,
        /// Items in the batch.
        batch: u64,
    },
    /// A driver submitted a batch of descriptors/commands.
    DriverTx {
        /// Which device.
        device: DeviceKind,
        /// Items in the batch.
        batch: u64,
    },
}

/// Dense discriminant of [`KernelEvent`] for counting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum EventKind {
    SyscallEnter,
    SyscallExit,
    ContextSwitch,
    EndpointSend,
    EndpointRecv,
    PageAlloc,
    PageFree,
    PtMap,
    PtUnmap,
    DriverRx,
    DriverTx,
}

/// Number of event kinds (array dimension for per-kind counts).
pub const NUM_EVENT_KINDS: usize = 11;

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; NUM_EVENT_KINDS] = [
        EventKind::SyscallEnter,
        EventKind::SyscallExit,
        EventKind::ContextSwitch,
        EventKind::EndpointSend,
        EventKind::EndpointRecv,
        EventKind::PageAlloc,
        EventKind::PageFree,
        EventKind::PtMap,
        EventKind::PtUnmap,
        EventKind::DriverRx,
        EventKind::DriverTx,
    ];

    /// Dense index for per-kind arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SyscallEnter => "syscall_enter",
            EventKind::SyscallExit => "syscall_exit",
            EventKind::ContextSwitch => "context_switch",
            EventKind::EndpointSend => "endpoint_send",
            EventKind::EndpointRecv => "endpoint_recv",
            EventKind::PageAlloc => "page_alloc",
            EventKind::PageFree => "page_free",
            EventKind::PtMap => "pt_map",
            EventKind::PtUnmap => "pt_unmap",
            EventKind::DriverRx => "driver_rx",
            EventKind::DriverTx => "driver_tx",
        }
    }
}

impl KernelEvent {
    /// The event's discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            KernelEvent::SyscallEnter { .. } => EventKind::SyscallEnter,
            KernelEvent::SyscallExit { .. } => EventKind::SyscallExit,
            KernelEvent::ContextSwitch { .. } => EventKind::ContextSwitch,
            KernelEvent::EndpointSend { .. } => EventKind::EndpointSend,
            KernelEvent::EndpointRecv { .. } => EventKind::EndpointRecv,
            KernelEvent::PageAlloc { .. } => EventKind::PageAlloc,
            KernelEvent::PageFree { .. } => EventKind::PageFree,
            KernelEvent::PtMap { .. } => EventKind::PtMap,
            KernelEvent::PtUnmap { .. } => EventKind::PtUnmap,
            KernelEvent::DriverRx { .. } => EventKind::DriverRx,
            KernelEvent::DriverTx { .. } => EventKind::DriverTx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_kind_indices_are_dense() {
        for (i, k) in SyscallKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn event_kind_indices_are_dense() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SyscallKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SYSCALL_KINDS);
    }
}
