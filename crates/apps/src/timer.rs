//! Hierarchical timer wheels for the event-driven httpd core.
//!
//! A four-level, 64-slots-per-level wheel over modeled ticks (the event
//! core maps one tick to a fixed number of modeled cycles). Arming,
//! cancelling and cascading are all O(1) per timer: a timer at delta
//! `d` lands in the lowest level whose span covers `d`, and each time a
//! level-`l` boundary passes, the nodes in that level's current slot
//! cascade one level down (or fire, when their deadline has arrived).
//! This replaces any scan of live connections — a million idle
//! connections cost nothing per tick; only armed slots that actually
//! expire are touched.
//!
//! Node storage is a preallocated slab indexed by the caller's id (the
//! event core uses the connection-slot index, giving exactly one timer
//! per connection and no allocation after construction). Like every
//! subsystem in this reproduction the wheel carries a flat
//! well-formedness invariant ([`TimerWheel::wf`]): doubly-linked slot
//! lists are coherent, per-level armed counts match the lists, and
//! every armed node hangs in the slot its deadline hashes to.

use atmo_spec::harness::{check, Invariant, VerifResult};

/// Levels in the hierarchy.
pub const WHEEL_LEVELS: usize = 4;

/// Slots per level.
pub const WHEEL_SLOTS: usize = 64;

/// log2([`WHEEL_SLOTS`]): the per-level shift.
const SLOT_BITS: u32 = 6;

/// Null link / empty slot marker.
const NONE: u32 = u32::MAX;

/// One slab node: an intrusive doubly-linked list entry plus the
/// deadline and the caller's timer kind.
#[derive(Clone, Copy, Debug)]
struct TimerNode {
    deadline: u64,
    next: u32,
    prev: u32,
    kind: u8,
    level: u8,
    slot: u8,
    armed: bool,
}

impl TimerNode {
    const fn idle() -> Self {
        TimerNode {
            deadline: 0,
            next: NONE,
            prev: NONE,
            kind: 0,
            level: 0,
            slot: 0,
            armed: false,
        }
    }
}

/// The hierarchical timer wheel. Timer ids are slab indices chosen by
/// the caller (`0..capacity`); each id holds at most one armed timer,
/// and re-arming an armed id moves it.
#[derive(Clone, Debug)]
pub struct TimerWheel {
    now: u64,
    heads: [[u32; WHEEL_SLOTS]; WHEEL_LEVELS],
    nodes: Vec<TimerNode>,
    level_armed: [usize; WHEEL_LEVELS],
    armed: usize,
    /// Nodes moved down a level (or fired) by boundary cascades.
    cascades: u64,
    fired: u64,
    cancelled: u64,
}

impl TimerWheel {
    /// A wheel with `capacity` timer ids, all idle, at tick 0.
    pub fn new(capacity: usize) -> Self {
        TimerWheel {
            now: 0,
            heads: [[NONE; WHEEL_SLOTS]; WHEEL_LEVELS],
            nodes: vec![TimerNode::idle(); capacity],
            level_armed: [0; WHEEL_LEVELS],
            armed: 0,
            cascades: 0,
            fired: 0,
            cancelled: 0,
        }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Timers currently armed.
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// Timer ids the slab holds.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes moved (or fired) by level-boundary cascades so far.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Timers fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Timers cancelled before firing.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// `true` when id `id` holds an armed timer.
    pub fn is_armed(&self, id: u32) -> bool {
        self.nodes[id as usize].armed
    }

    /// The armed deadline of `id`, when armed.
    pub fn deadline(&self, id: u32) -> Option<u64> {
        let n = &self.nodes[id as usize];
        n.armed.then_some(n.deadline)
    }

    /// Arms (or re-arms) timer `id` with payload `kind` to fire at tick
    /// `deadline`. Deadlines at or before the current tick are clamped
    /// to the next tick — a wheel never fires in the past.
    ///
    /// # Panics
    ///
    /// Panics when `id` is outside the slab.
    pub fn arm(&mut self, id: u32, kind: u8, deadline: u64) {
        assert!((id as usize) < self.nodes.len(), "timer id out of range");
        if self.nodes[id as usize].armed {
            self.unlink(id);
        }
        let deadline = deadline.max(self.now + 1);
        let (level, slot) = self.place(deadline);
        let n = &mut self.nodes[id as usize];
        n.deadline = deadline;
        n.kind = kind;
        self.link(id, level, slot);
    }

    /// Cancels timer `id`; returns whether it was armed.
    pub fn cancel(&mut self, id: u32) -> bool {
        if !self.nodes[id as usize].armed {
            return false;
        }
        self.unlink(id);
        self.cancelled += 1;
        true
    }

    /// Advances the wheel to tick `to`, appending every firing timer as
    /// `(id, kind)` to `expired` (in firing-tick order; ties fire in
    /// arbitrary order within their tick). Idle stretches are skipped in
    /// O(boundaries), not O(ticks): while the lowest occupied level is
    /// `l`, the wheel jumps straight to the next level-`l` boundary.
    pub fn advance(&mut self, to: u64, expired: &mut Vec<(u32, u8)>) {
        while self.now < to {
            if self.armed == 0 {
                self.now = to;
                return;
            }
            if self.level_armed[0] > 0 {
                // A level-0 slot fires within the next 63 ticks; step.
                self.now += 1;
            } else {
                // Jump to the next boundary of the lowest occupied
                // level; everything below it is empty, so no tick in
                // between can fire or cascade anything.
                let mut next = to;
                for l in 1..WHEEL_LEVELS {
                    if self.level_armed[l] > 0 {
                        let span = 1u64 << (SLOT_BITS * l as u32);
                        next = ((self.now / span + 1) * span).min(to);
                        break;
                    }
                }
                self.now = next;
            }
            self.tick(expired);
        }
    }

    /// Processes the tick `self.now`: cascades every level whose
    /// boundary this tick crosses (top-down, so cascaded nodes settle in
    /// one pass), then fires the level-0 slot.
    fn tick(&mut self, expired: &mut Vec<(u32, u8)>) {
        let t = self.now;
        for l in (1..WHEEL_LEVELS).rev() {
            let span = 1u64 << (SLOT_BITS * l as u32);
            if t.is_multiple_of(span) {
                let slot = ((t >> (SLOT_BITS * l as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
                self.cascade(l, slot, expired);
            }
        }
        let slot = (t & (WHEEL_SLOTS as u64 - 1)) as usize;
        let mut id = self.heads[0][slot];
        while id != NONE {
            let next = self.nodes[id as usize].next;
            debug_assert_eq!(self.nodes[id as usize].deadline, t, "level-0 slot is exact");
            self.unlink(id);
            self.fired += 1;
            expired.push((id, self.nodes[id as usize].kind));
            id = next;
        }
    }

    /// Empties level `level` slot `slot`, re-placing each node by its
    /// remaining delta (firing it when the deadline is this tick).
    fn cascade(&mut self, level: usize, slot: usize, expired: &mut Vec<(u32, u8)>) {
        let mut id = self.heads[level][slot];
        while id != NONE {
            let next = self.nodes[id as usize].next;
            self.unlink(id);
            self.cascades += 1;
            let deadline = self.nodes[id as usize].deadline;
            if deadline <= self.now {
                self.fired += 1;
                expired.push((id, self.nodes[id as usize].kind));
            } else {
                let (l, s) = self.place(deadline);
                self.link(id, l, s);
            }
            id = next;
        }
    }

    /// The (level, slot) a deadline hangs in, seen from the current
    /// tick: the lowest level whose span covers the delta, slotted by
    /// the deadline's digits at that level. Deltas beyond the top
    /// level's horizon alias into the top level and re-cascade until
    /// their delta fits — arbitrary deadlines stay exact.
    fn place(&self, deadline: u64) -> (usize, usize) {
        let delta = deadline - self.now;
        let mut level = WHEEL_LEVELS - 1;
        for l in 0..WHEEL_LEVELS {
            if delta < 1u64 << (SLOT_BITS * (l as u32 + 1)) {
                level = l;
                break;
            }
        }
        let slot = ((deadline >> (SLOT_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
        (level, slot)
    }

    fn link(&mut self, id: u32, level: usize, slot: usize) {
        let head = self.heads[level][slot];
        {
            let n = &mut self.nodes[id as usize];
            n.level = level as u8;
            n.slot = slot as u8;
            n.prev = NONE;
            n.next = head;
            n.armed = true;
        }
        if head != NONE {
            self.nodes[head as usize].prev = id;
        }
        self.heads[level][slot] = id;
        self.level_armed[level] += 1;
        self.armed += 1;
    }

    fn unlink(&mut self, id: u32) {
        let (prev, next, level, slot) = {
            let n = &self.nodes[id as usize];
            debug_assert!(n.armed, "unlink of idle node");
            (n.prev, n.next, n.level as usize, n.slot as usize)
        };
        if prev != NONE {
            self.nodes[prev as usize].next = next;
        } else {
            self.heads[level][slot] = next;
        }
        if next != NONE {
            self.nodes[next as usize].prev = prev;
        }
        let n = &mut self.nodes[id as usize];
        n.armed = false;
        n.prev = NONE;
        n.next = NONE;
        self.level_armed[level] -= 1;
        self.armed -= 1;
    }
}

impl Invariant for TimerWheel {
    /// Wheel well-formedness:
    ///
    /// 1. every slot list is doubly linked and acyclic, and every node
    ///    on it is armed with matching (level, slot) fields;
    /// 2. per-level armed counts equal the list lengths, and their sum
    ///    is the global armed count;
    /// 3. every armed deadline is in the future, and hangs in the slot
    ///    its digits at that level select;
    /// 4. fired + cancelled + armed balances against every arm ever
    ///    linked (checked structurally: no node is on two lists, which
    ///    the per-node armed flag plus count equality imply).
    fn wf(&self) -> VerifResult {
        let mut seen_armed = 0usize;
        for level in 0..WHEEL_LEVELS {
            let mut level_count = 0usize;
            for slot in 0..WHEEL_SLOTS {
                let mut id = self.heads[level][slot];
                let mut prev = NONE;
                let mut steps = 0usize;
                while id != NONE {
                    check(
                        steps <= self.nodes.len(),
                        "timer_wheel",
                        format!("cycle in level {level} slot {slot}"),
                    )?;
                    let n = &self.nodes[id as usize];
                    check(
                        n.armed,
                        "timer_wheel",
                        format!("idle node {id} linked in level {level} slot {slot}"),
                    )?;
                    check(
                        n.level as usize == level && n.slot as usize == slot,
                        "timer_wheel",
                        format!(
                            "node {id} thinks it is in level {} slot {}",
                            n.level, n.slot
                        ),
                    )?;
                    check(
                        n.prev == prev,
                        "timer_wheel",
                        format!("node {id} back-link broken"),
                    )?;
                    check(
                        n.deadline > self.now,
                        "timer_wheel",
                        format!(
                            "node {id} deadline {} not after now {}",
                            n.deadline, self.now
                        ),
                    )?;
                    let digit = ((n.deadline >> (SLOT_BITS * level as u32))
                        & (WHEEL_SLOTS as u64 - 1)) as usize;
                    check(
                        digit == slot,
                        "timer_wheel",
                        format!("node {id} deadline {} hashes to slot {digit}", n.deadline),
                    )?;
                    prev = id;
                    id = n.next;
                    steps += 1;
                    level_count += 1;
                }
            }
            check(
                level_count == self.level_armed[level],
                "timer_wheel",
                format!(
                    "level {level} lists hold {level_count} nodes but count says {}",
                    self.level_armed[level]
                ),
            )?;
            seen_armed += level_count;
        }
        check(
            seen_armed == self.armed,
            "timer_wheel",
            format!("lists hold {seen_armed} nodes but armed = {}", self.armed),
        )?;
        let flagged = self.nodes.iter().filter(|n| n.armed).count();
        check(
            flagged == self.armed,
            "timer_wheel",
            format!("{flagged} nodes flagged armed but armed = {}", self.armed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::rng::XorShift64Star;

    fn drain(w: &mut TimerWheel, to: u64) -> Vec<(u32, u8)> {
        let mut out = Vec::new();
        w.advance(to, &mut out);
        out
    }

    #[test]
    fn arm_fire_roundtrip() {
        let mut w = TimerWheel::new(8);
        w.arm(3, 7, 10);
        assert!(w.is_armed(3));
        assert_eq!(w.deadline(3), Some(10));
        assert!(w.is_wf());
        assert_eq!(drain(&mut w, 9), vec![]);
        assert_eq!(drain(&mut w, 10), vec![(3, 7)]);
        assert!(!w.is_armed(3));
        assert_eq!(w.fired(), 1);
        assert!(w.is_wf());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w = TimerWheel::new(4);
        w.arm(0, 1, 5);
        w.arm(1, 2, 5);
        assert!(w.cancel(0));
        assert!(!w.cancel(0), "double cancel is a no-op");
        assert_eq!(drain(&mut w, 20), vec![(1, 2)]);
        assert_eq!(w.cancelled(), 1);
        assert!(w.is_wf());
    }

    #[test]
    fn rearm_moves_the_deadline() {
        let mut w = TimerWheel::new(2);
        w.arm(0, 1, 5);
        w.arm(0, 9, 300); // keepalive refresh: same id, later deadline
        assert_eq!(w.armed(), 1);
        assert_eq!(drain(&mut w, 299), vec![]);
        assert_eq!(drain(&mut w, 300), vec![(0, 9)]);
        assert!(w.is_wf());
    }

    #[test]
    fn past_deadlines_clamp_to_next_tick() {
        let mut w = TimerWheel::new(2);
        assert_eq!(drain(&mut w, 100), vec![]);
        w.arm(0, 4, 7); // already in the past
        assert_eq!(w.deadline(0), Some(101));
        assert_eq!(drain(&mut w, 101), vec![(0, 4)]);
    }

    #[test]
    fn cascades_cross_level_boundaries_exactly() {
        let mut w = TimerWheel::new(4);
        // One timer per level: deltas of 63, 64, 64^2+5, 64^3+17.
        w.arm(0, 0, 63);
        w.arm(1, 1, 64);
        w.arm(2, 2, 64 * 64 + 5);
        w.arm(3, 3, 64 * 64 * 64 + 17);
        assert!(w.is_wf());
        let fired = drain(&mut w, 64 * 64 * 64 + 17);
        assert_eq!(fired, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert!(w.cascades() >= 3, "higher levels cascaded down");
        assert!(w.is_wf());
    }

    #[test]
    fn idle_skip_is_cheap_and_exact() {
        // A deadline past the whole level-2 horizon still fires exactly,
        // and the skip logic must not touch intermediate empty ticks.
        let mut w = TimerWheel::new(2);
        let far = 64u64 * 64 * 64 * 7 + 123;
        w.arm(0, 5, far);
        assert_eq!(drain(&mut w, far - 1), vec![]);
        assert_eq!(drain(&mut w, far), vec![(0, 5)]);
        assert_eq!(w.now(), far);
    }

    #[test]
    fn wrap_past_all_four_levels_fires_exactly_once() {
        // Beyond 64^4 the top level aliases and the node re-cascades
        // through the wrap; the deadline still fires exactly.
        let mut w = TimerWheel::new(3);
        let horizon = 64u64.pow(4);
        w.arm(0, 1, horizon + 7);
        w.arm(1, 2, 2 * horizon + 9);
        w.arm(2, 3, 100);
        let fired = drain(&mut w, 2 * horizon + 9);
        assert_eq!(fired, vec![(2, 3), (0, 1), (1, 2)]);
        assert_eq!(w.fired(), 3);
        assert_eq!(w.armed(), 0);
        assert!(w.is_wf());
    }

    #[test]
    fn cancel_after_cascade_does_not_fire() {
        let mut w = TimerWheel::new(2);
        w.arm(0, 1, 64 + 20); // starts in level 1
        assert_eq!(drain(&mut w, 64), vec![], "cascaded into level 0 at 64");
        assert!(w.cascades() >= 1);
        assert!(w.cancel(0), "cancel after the node moved levels");
        assert_eq!(drain(&mut w, 1000), vec![]);
        assert_eq!(w.fired(), 0);
        assert!(w.is_wf());
    }

    /// The satellite property test: against a flat sorted-list oracle,
    /// random arm/cancel/re-arm traffic fires every surviving timer
    /// exactly once, in deadline order, including deltas that cross all
    /// four levels and cancels after cascades.
    #[test]
    fn property_wheel_matches_sorted_list_oracle() {
        let mut rng = XorShift64Star::new(0x1775_0BA5);
        for round in 0..8 {
            let cap = 256usize;
            let mut w = TimerWheel::new(cap);
            // Oracle: deadline per id, None when cancelled/unarmed.
            let mut oracle: Vec<Option<(u64, u8)>> = vec![None; cap];
            let mut fired: Vec<(u64, u32, u8)> = Vec::new();
            let mut expired = Vec::new();
            let horizon: u64 = match round % 3 {
                0 => 200,                     // level-0/1 churn
                1 => 64 * 64 * 3,             // level-2 cascades
                _ => 64u64.pow(3) * 2 + 1717, // deep wrap incl. level 3
            };
            let mut t = 0u64;
            for _ in 0..600 {
                match rng.below(10) {
                    // Arm / re-arm a random id at a random future delta.
                    0..=5 => {
                        let id = rng.below(cap) as u32;
                        let delta = 1 + rng.below(horizon as usize) as u64;
                        let kind = rng.below(3) as u8;
                        w.arm(id, kind, t + delta);
                        oracle[id as usize] = Some((t + delta, kind));
                    }
                    // Cancel a random id.
                    6..=7 => {
                        let id = rng.below(cap) as u32;
                        assert_eq!(
                            w.cancel(id),
                            oracle[id as usize].is_some(),
                            "cancel visibility must match the oracle"
                        );
                        oracle[id as usize] = None;
                    }
                    // Advance by a random stretch.
                    _ => {
                        let step = 1 + rng.below((horizon / 4).max(2) as usize) as u64;
                        t += step;
                        expired.clear();
                        w.advance(t, &mut expired);
                        for &(id, kind) in &expired {
                            let (dl, k) = oracle[id as usize]
                                .take()
                                .expect("wheel fired a timer the oracle had retired");
                            assert_eq!(k, kind);
                            assert!(dl <= t, "fired before its deadline");
                            fired.push((dl, id, kind));
                        }
                        // Everything the oracle says is due must have fired.
                        for (id, o) in oracle.iter().enumerate() {
                            if let Some((dl, _)) = o {
                                assert!(*dl > t, "timer {id} due at {dl} missed at {t}");
                            }
                        }
                        assert!(
                            fired.windows(2).all(|p| p[0].0 <= p[1].0),
                            "fired out of deadline order"
                        );
                    }
                }
            }
            w.wf().unwrap_or_else(|e| panic!("round {round}: {e:?}"));
            // Drain the rest: every survivor fires exactly once.
            let survivors = oracle.iter().filter(|o| o.is_some()).count();
            let max_dl = oracle.iter().flatten().map(|(d, _)| *d).max().unwrap_or(t);
            expired.clear();
            w.advance(max_dl.max(t), &mut expired);
            assert_eq!(expired.len(), survivors, "round {round}");
            assert_eq!(w.armed(), 0);
            assert!(w.is_wf());
        }
    }
}
