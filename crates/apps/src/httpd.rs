//! httpd: a tiny static web server (§6.6).
//!
//! "We develop a simple web server, httpd, capable of serving static HTTP
//! context. The web server continuously polls for incoming requests from
//! open connections in a round-robin manner, parses requests, and returns
//! the static web page." Connections are modeled as in-memory byte
//! streams; the parser and response builder are real.

use std::collections::BTreeMap;

/// A parsed HTTP/1.1 request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (only GET is served).
    pub method: String,
    /// Request path.
    pub path: String,
    /// `true` when the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// An HTTP response (status line + body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Serializes the response.
    pub fn to_bytes(&self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            404 => "Not Found",
            400 => "Bad Request",
            _ => "Error",
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.status,
            reason,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Parses one HTTP request from `buf`; returns the request and the bytes
/// consumed, or `None` when the request is incomplete.
pub fn parse_request(buf: &[u8]) -> Option<(HttpRequest, usize)> {
    let text = std::str::from_utf8(buf).ok()?;
    let end = text.find("\r\n\r\n")?;
    let head = &text[..end];
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    // HTTP/1.1 defaults to keep-alive unless told otherwise.
    let mut keep_alive = true;
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("connection:") && lower.contains("close") {
            keep_alive = false;
        }
    }
    Some((
        HttpRequest {
            method,
            path,
            keep_alive,
        },
        end + 4,
    ))
}

/// One client connection: request bytes in, response bytes out.
#[derive(Debug, Default)]
pub struct Connection {
    /// Bytes received from the client, not yet parsed.
    pub inbound: Vec<u8>,
    /// Bytes to be sent to the client.
    pub outbound: Vec<u8>,
    /// Server-side close flag.
    pub closed: bool,
}

/// The web server: static pages + open connections, polled round-robin.
#[derive(Debug)]
pub struct Httpd {
    pages: BTreeMap<String, Vec<u8>>,
    connections: Vec<Connection>,
    next_poll: usize,
    /// Requests served (diagnostics / benchmark counter).
    pub served: u64,
}

impl Httpd {
    /// A server with a default index page.
    pub fn new() -> Self {
        let mut pages = BTreeMap::new();
        pages.insert(
            "/".to_string(),
            b"<html><body><h1>Atmosphere httpd</h1></body></html>".to_vec(),
        );
        Httpd {
            pages,
            connections: Vec::new(),
            next_poll: 0,
            served: 0,
        }
    }

    /// Registers a static page.
    pub fn add_page(&mut self, path: &str, body: &[u8]) {
        self.pages.insert(path.to_string(), body.to_vec());
    }

    /// Opens a connection; returns its id.
    pub fn open_connection(&mut self) -> usize {
        self.connections.push(Connection::default());
        self.connections.len() - 1
    }

    /// Client-side: delivers request bytes on connection `id`.
    ///
    /// # Panics
    ///
    /// Panics for an unknown connection id.
    pub fn client_send(&mut self, id: usize, bytes: &[u8]) {
        self.connections[id].inbound.extend_from_slice(bytes);
    }

    /// Client-side: drains response bytes from connection `id`.
    pub fn client_recv(&mut self, id: usize) -> Vec<u8> {
        std::mem::take(&mut self.connections[id].outbound)
    }

    /// Number of open (non-closed) connections.
    pub fn open_count(&self) -> usize {
        self.connections.iter().filter(|c| !c.closed).count()
    }

    /// One round-robin poll step over all connections: parses at most one
    /// request per connection and enqueues the response. Returns requests
    /// served this step.
    pub fn poll_step(&mut self) -> usize {
        let n = self.connections.len();
        let mut handled = 0;
        for off in 0..n {
            let id = (self.next_poll + off) % n.max(1);
            if self.connections[id].closed {
                continue;
            }
            let parsed = parse_request(&self.connections[id].inbound);
            if let Some((req, consumed)) = parsed {
                self.connections[id].inbound.drain(..consumed);
                let resp = self.respond(&req);
                self.connections[id]
                    .outbound
                    .extend_from_slice(&resp.to_bytes());
                if !req.keep_alive {
                    self.connections[id].closed = true;
                }
                self.served += 1;
                handled += 1;
            }
        }
        if n > 0 {
            self.next_poll = (self.next_poll + 1) % n;
        }
        handled
    }

    fn respond(&self, req: &HttpRequest) -> HttpResponse {
        if req.method != "GET" {
            return HttpResponse {
                status: 400,
                body: b"bad request".to_vec(),
            };
        }
        match self.pages.get(&req.path) {
            Some(body) => HttpResponse {
                status: 200,
                body: body.clone(),
            },
            None => HttpResponse {
                status: 404,
                body: b"not found".to_vec(),
            },
        }
    }
}

impl Default for Httpd {
    fn default() -> Self {
        Httpd::new()
    }
}

/// Calibrated per-request cost of the httpd data path on the c220g5
/// (connection poll + parse + response copy + TCP-ish segmentation over
/// the NIC). Calibrated so the linked configuration serves ≈99.4 K
/// requests/s (§6.6).
pub const HTTPD_REQUEST_COST: u64 = 21_900;

#[cfg(test)]
mod tests {
    use super::*;

    const GET: &[u8] = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";

    #[test]
    fn parse_simple_get() {
        let (req, used) = parse_request(GET).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/");
        assert!(req.keep_alive);
        assert_eq!(used, GET.len());
    }

    #[test]
    fn parse_incomplete_returns_none() {
        assert!(parse_request(b"GET / HTTP/1.1\r\nHost").is_none());
        assert!(parse_request(b"").is_none());
    }

    #[test]
    fn parse_connection_close() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (req, _) = parse_request(raw).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn serves_known_page() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, GET);
        assert_eq!(srv.poll_step(), 1);
        let resp = srv.client_recv(c);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("Atmosphere httpd"));
        assert_eq!(srv.served, 1);
    }

    #[test]
    fn unknown_page_is_404() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, b"GET /missing HTTP/1.1\r\n\r\n");
        srv.poll_step();
        let resp = String::from_utf8(srv.client_recv(c)).unwrap();
        assert!(resp.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn non_get_is_rejected() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, b"POST / HTTP/1.1\r\n\r\n");
        srv.poll_step();
        let resp = String::from_utf8(srv.client_recv(c)).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn keep_alive_pipelines_requests() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, GET);
        srv.client_send(c, GET);
        assert_eq!(srv.poll_step(), 1, "one request per poll per connection");
        assert_eq!(srv.poll_step(), 1);
        assert_eq!(srv.served, 2);
        assert_eq!(srv.open_count(), 1);
    }

    #[test]
    fn close_marks_connection() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        srv.poll_step();
        assert_eq!(srv.open_count(), 0);
        // Further polls serve nothing on the closed connection.
        srv.client_send(c, GET);
        assert_eq!(srv.poll_step(), 0);
    }

    #[test]
    fn round_robin_covers_twenty_connections() {
        // The wrk configuration of §6.6: 20 concurrent connections.
        let mut srv = Httpd::new();
        let conns: Vec<_> = (0..20).map(|_| srv.open_connection()).collect();
        for &c in &conns {
            srv.client_send(c, GET);
        }
        assert_eq!(srv.poll_step(), 20);
        for &c in &conns {
            assert!(!srv.client_recv(c).is_empty(), "conn {c} got a response");
        }
    }
}
