//! httpd: a tiny static web server (§6.6).
//!
//! "We develop a simple web server, httpd, capable of serving static HTTP
//! context. The web server continuously polls for incoming requests from
//! open connections in a round-robin manner, parses requests, and returns
//! the static web page." Connections are modeled as in-memory byte
//! streams; the parser and response builder are real.

use std::collections::BTreeMap;

/// A parsed HTTP/1.1 request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (only GET is served).
    pub method: String,
    /// Request path.
    pub path: String,
    /// `true` when the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// An HTTP response (status line + body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

/// Largest request line (method + path + version) the parser accepts;
/// a longer line without a CRLF is rejected as
/// [`MalformedKind::OversizedRequestLine`] instead of buffering
/// without bound (slowloris defense shared with the event core's
/// incremental parser).
pub const MAX_REQUEST_LINE: usize = 1024;

/// The upper bound of any response head this server emits
/// (`HTTP/1.1 NNN <reason>\r\nContent-Length: <u32>\r\nConnection:
/// keep-alive\r\n\r\n`): a stack scratch of this size always fits.
pub const MAX_HEAD_LEN: usize = 96;

impl HttpResponse {
    /// The status line's reason phrase.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            404 => "Not Found",
            400 => "Bad Request",
            _ => "Error",
        }
    }

    /// Serializes a response head for `status` with `body_len` content
    /// bytes directly into `out` (an outgoing `PktBuf` slot or a
    /// reusable scratch), returning the bytes written. No allocation,
    /// no formatting machinery — this is the event loop's steady-state
    /// path, and [`MAX_HEAD_LEN`] bounds the result.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than the head being written.
    pub fn write_head(status: u16, body_len: usize, out: &mut [u8]) -> usize {
        fn put(out: &mut [u8], at: &mut usize, bytes: &[u8]) {
            out[*at..*at + bytes.len()].copy_from_slice(bytes);
            *at += bytes.len();
        }
        let mut at = 0usize;
        put(out, &mut at, b"HTTP/1.1 ");
        at += write_decimal(status as u64, &mut out[at..]);
        put(out, &mut at, b" ");
        put(out, &mut at, HttpResponse::reason(status).as_bytes());
        put(out, &mut at, b"\r\nContent-Length: ");
        at += write_decimal(body_len as u64, &mut out[at..]);
        put(out, &mut at, b"\r\nConnection: keep-alive\r\n\r\n");
        at
    }

    /// Serializes the response (head + body) into one owned buffer.
    /// Allocates exactly once, sized up front; the head goes through
    /// the same [`write_head`](Self::write_head) path the zero-copy
    /// event loop uses.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut head = [0u8; MAX_HEAD_LEN];
        let n = HttpResponse::write_head(self.status, self.body.len(), &mut head);
        let mut out = Vec::with_capacity(n + self.body.len());
        out.extend_from_slice(&head[..n]);
        out.extend_from_slice(&self.body);
        out
    }
}

/// Writes `v` in decimal at the start of `out`, returning the digit
/// count (the no-`format!` serializer behind [`HttpResponse::write_head`]).
fn write_decimal(v: u64, out: &mut [u8]) -> usize {
    let mut digits = [0u8; 20];
    let mut v = v;
    let mut n = 0;
    loop {
        digits[n] = b'0' + (v % 10) as u8;
        v /= 10;
        n += 1;
        if v == 0 {
            break;
        }
    }
    for i in 0..n {
        out[i] = digits[n - 1 - i];
    }
    n
}

/// Why a request was rejected outright (as opposed to merely not being
/// complete yet).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MalformedKind {
    /// The request line exceeded [`MAX_REQUEST_LINE`] bytes without a
    /// CRLF.
    OversizedRequestLine,
    /// The request line did not have `method path version` shape.
    BadRequestLine,
    /// The version token was not `HTTP/1.x`.
    BadVersion,
    /// The header block was not valid UTF-8 text.
    NotText,
}

/// The typed result of [`parse_request_ex`]: a complete request, a
/// prefix that may still grow into one, or bytes that can never parse.
/// The distinction matters operationally — `Partial` keeps the
/// connection (and its read-header timer) alive, `Malformed` closes it
/// immediately.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseOutcome {
    /// A full request and the bytes it consumed.
    Complete {
        /// The parsed request.
        req: HttpRequest,
        /// Header bytes consumed (including the blank line).
        consumed: usize,
    },
    /// A valid prefix; more bytes may complete it.
    Partial,
    /// Bytes that can never become a valid request.
    Malformed(MalformedKind),
}

/// Parses one HTTP request from `buf` with a typed
/// incomplete/invalid distinction. See [`ParseOutcome`].
pub fn parse_request_ex(buf: &[u8]) -> ParseOutcome {
    let Some(end) = find_header_end(buf) else {
        // No blank line yet: still partial, unless the request line has
        // already overrun its bound without terminating.
        let line_done = buf.windows(2).any(|w| w == b"\r\n");
        if !line_done && buf.len() > MAX_REQUEST_LINE {
            return ParseOutcome::Malformed(MalformedKind::OversizedRequestLine);
        }
        return ParseOutcome::Partial;
    };
    let Ok(head) = std::str::from_utf8(&buf[..end]) else {
        return ParseOutcome::Malformed(MalformedKind::NotText);
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE {
        return ParseOutcome::Malformed(MalformedKind::OversizedRequestLine);
    }
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Malformed(MalformedKind::BadRequestLine);
    };
    if method.is_empty() || path.is_empty() {
        return ParseOutcome::Malformed(MalformedKind::BadRequestLine);
    }
    if !version.starts_with("HTTP/1.") {
        return ParseOutcome::Malformed(MalformedKind::BadVersion);
    }
    // HTTP/1.1 defaults to keep-alive unless told otherwise.
    let mut keep_alive = true;
    for line in lines {
        let lower = line.to_ascii_lowercase();
        if lower.starts_with("connection:") && lower.contains("close") {
            keep_alive = false;
        }
    }
    ParseOutcome::Complete {
        req: HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            keep_alive,
        },
        consumed: end + 4,
    }
}

/// Byte offset of the `\r\n\r\n` header terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parses one HTTP request from `buf`; returns the request and the bytes
/// consumed, or `None` when the request is incomplete or malformed.
/// Compatibility shim over [`parse_request_ex`] for callers that only
/// care whether a request is servable.
pub fn parse_request(buf: &[u8]) -> Option<(HttpRequest, usize)> {
    match parse_request_ex(buf) {
        ParseOutcome::Complete { req, consumed } => Some((req, consumed)),
        ParseOutcome::Partial | ParseOutcome::Malformed(_) => None,
    }
}

/// One client connection: request bytes in, response bytes out.
#[derive(Debug, Default)]
pub struct Connection {
    /// Bytes received from the client, not yet parsed.
    pub inbound: Vec<u8>,
    /// Bytes to be sent to the client.
    pub outbound: Vec<u8>,
    /// Server-side close flag.
    pub closed: bool,
}

/// The web server: static pages + open connections, polled round-robin.
#[derive(Debug)]
pub struct Httpd {
    pages: BTreeMap<String, Vec<u8>>,
    connections: Vec<Connection>,
    next_poll: usize,
    /// Requests served (diagnostics / benchmark counter).
    pub served: u64,
}

impl Httpd {
    /// A server with a default index page.
    pub fn new() -> Self {
        let mut pages = BTreeMap::new();
        pages.insert(
            "/".to_string(),
            b"<html><body><h1>Atmosphere httpd</h1></body></html>".to_vec(),
        );
        Httpd {
            pages,
            connections: Vec::new(),
            next_poll: 0,
            served: 0,
        }
    }

    /// Registers a static page.
    pub fn add_page(&mut self, path: &str, body: &[u8]) {
        self.pages.insert(path.to_string(), body.to_vec());
    }

    /// Opens a connection; returns its id.
    pub fn open_connection(&mut self) -> usize {
        self.connections.push(Connection::default());
        self.connections.len() - 1
    }

    /// Client-side: delivers request bytes on connection `id`.
    ///
    /// # Panics
    ///
    /// Panics for an unknown connection id.
    pub fn client_send(&mut self, id: usize, bytes: &[u8]) {
        self.connections[id].inbound.extend_from_slice(bytes);
    }

    /// Client-side: drains response bytes from connection `id`.
    pub fn client_recv(&mut self, id: usize) -> Vec<u8> {
        std::mem::take(&mut self.connections[id].outbound)
    }

    /// Number of open (non-closed) connections.
    pub fn open_count(&self) -> usize {
        self.connections.iter().filter(|c| !c.closed).count()
    }

    /// One round-robin poll step over all connections: parses at most one
    /// request per connection and enqueues the response. Returns requests
    /// served this step.
    pub fn poll_step(&mut self) -> usize {
        let n = self.connections.len();
        let mut handled = 0;
        for off in 0..n {
            let id = (self.next_poll + off) % n.max(1);
            if self.connections[id].closed {
                continue;
            }
            let parsed = parse_request(&self.connections[id].inbound);
            if let Some((req, consumed)) = parsed {
                self.connections[id].inbound.drain(..consumed);
                let resp = self.respond(&req);
                self.connections[id]
                    .outbound
                    .extend_from_slice(&resp.to_bytes());
                if !req.keep_alive {
                    self.connections[id].closed = true;
                }
                self.served += 1;
                handled += 1;
            }
        }
        if n > 0 {
            self.next_poll = (self.next_poll + 1) % n;
        }
        handled
    }

    fn respond(&self, req: &HttpRequest) -> HttpResponse {
        if req.method != "GET" {
            return HttpResponse {
                status: 400,
                body: b"bad request".to_vec(),
            };
        }
        match self.pages.get(&req.path) {
            Some(body) => HttpResponse {
                status: 200,
                body: body.clone(),
            },
            None => HttpResponse {
                status: 404,
                body: b"not found".to_vec(),
            },
        }
    }
}

impl Default for Httpd {
    fn default() -> Self {
        Httpd::new()
    }
}

/// Calibrated per-request cost of the httpd data path on the c220g5
/// (connection poll + parse + response copy + TCP-ish segmentation over
/// the NIC). Calibrated so the linked configuration serves ≈99.4 K
/// requests/s (§6.6).
pub const HTTPD_REQUEST_COST: u64 = 21_900;

#[cfg(test)]
mod tests {
    use super::*;

    const GET: &[u8] = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n";

    #[test]
    fn parse_simple_get() {
        let (req, used) = parse_request(GET).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/");
        assert!(req.keep_alive);
        assert_eq!(used, GET.len());
    }

    #[test]
    fn parse_incomplete_returns_none() {
        assert!(parse_request(b"GET / HTTP/1.1\r\nHost").is_none());
        assert!(parse_request(b"").is_none());
    }

    #[test]
    fn parse_connection_close() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (req, _) = parse_request(raw).unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn serves_known_page() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, GET);
        assert_eq!(srv.poll_step(), 1);
        let resp = srv.client_recv(c);
        let text = String::from_utf8(resp).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("Atmosphere httpd"));
        assert_eq!(srv.served, 1);
    }

    #[test]
    fn unknown_page_is_404() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, b"GET /missing HTTP/1.1\r\n\r\n");
        srv.poll_step();
        let resp = String::from_utf8(srv.client_recv(c)).unwrap();
        assert!(resp.starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn non_get_is_rejected() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, b"POST / HTTP/1.1\r\n\r\n");
        srv.poll_step();
        let resp = String::from_utf8(srv.client_recv(c)).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn keep_alive_pipelines_requests() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, GET);
        srv.client_send(c, GET);
        assert_eq!(srv.poll_step(), 1, "one request per poll per connection");
        assert_eq!(srv.poll_step(), 1);
        assert_eq!(srv.served, 2);
        assert_eq!(srv.open_count(), 1);
    }

    #[test]
    fn close_marks_connection() {
        let mut srv = Httpd::new();
        let c = srv.open_connection();
        srv.client_send(c, b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        srv.poll_step();
        assert_eq!(srv.open_count(), 0);
        // Further polls serve nothing on the closed connection.
        srv.client_send(c, GET);
        assert_eq!(srv.poll_step(), 0);
    }

    #[test]
    fn write_head_matches_format_reference() {
        for (status, len) in [
            (200u16, 0usize),
            (200, 51),
            (404, 9),
            (400, 11),
            (200, 262_144),
        ] {
            let mut buf = [0u8; MAX_HEAD_LEN];
            let n = HttpResponse::write_head(status, len, &mut buf);
            let want = format!(
                "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                status,
                HttpResponse::reason(status),
                len
            );
            assert_eq!(std::str::from_utf8(&buf[..n]).unwrap(), want);
            assert!(n <= MAX_HEAD_LEN);
        }
    }

    #[test]
    fn to_bytes_rides_write_head() {
        let resp = HttpResponse {
            status: 404,
            body: b"not found".to_vec(),
        };
        let bytes = resp.to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\nContent-Length: 9\r\n"));
        assert!(text.ends_with("\r\n\r\nnot found"));
    }

    #[test]
    fn partial_and_malformed_are_distinguished() {
        // Truncated requests are Partial: the connection stays open.
        assert_eq!(parse_request_ex(b""), ParseOutcome::Partial);
        assert_eq!(
            parse_request_ex(b"GET / HTTP/1.1\r\nHost"),
            ParseOutcome::Partial
        );
        // Missing CRLF before the blank line: still Partial (the bytes
        // could yet grow a terminator).
        assert_eq!(parse_request_ex(b"GET / HTTP/1.1"), ParseOutcome::Partial);
        // A bad version is Malformed: no suffix can repair it.
        assert_eq!(
            parse_request_ex(b"GET / SPDY/9\r\n\r\n"),
            ParseOutcome::Malformed(MalformedKind::BadVersion)
        );
        // A request line without three tokens is Malformed.
        assert_eq!(
            parse_request_ex(b"GET /\r\n\r\n"),
            ParseOutcome::Malformed(MalformedKind::BadRequestLine)
        );
    }

    #[test]
    fn oversized_request_line_is_malformed_not_partial() {
        // An attacker streaming an endless method line must be rejected
        // once the bound passes, even though no CRLF ever arrived.
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 8));
        assert_eq!(
            parse_request_ex(&raw),
            ParseOutcome::Malformed(MalformedKind::OversizedRequestLine)
        );
        // And a complete-but-oversized line is equally rejected.
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(
            parse_request_ex(&raw),
            ParseOutcome::Malformed(MalformedKind::OversizedRequestLine)
        );
    }

    #[test]
    fn split_across_buffers_completes_once_joined() {
        // The batch parser is fed accumulated bytes; a header split in
        // two arbitrary places is Partial at each prefix and Complete
        // on the joined buffer.
        let raw = b"GET /idx HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
        for cut in 1..raw.len() - 1 {
            assert_eq!(
                parse_request_ex(&raw[..cut]),
                ParseOutcome::Partial,
                "prefix of {cut} bytes"
            );
        }
        match parse_request_ex(raw) {
            ParseOutcome::Complete { req, consumed } => {
                assert_eq!(req.path, "/idx");
                assert!(!req.keep_alive);
                assert_eq!(consumed, raw.len());
            }
            other => panic!("joined buffer must complete, got {other:?}"),
        }
    }

    #[test]
    fn round_robin_covers_twenty_connections() {
        // The wrk configuration of §6.6: 20 concurrent connections.
        let mut srv = Httpd::new();
        let conns: Vec<_> = (0..20).map(|_| srv.open_connection()).collect();
        for &c in &conns {
            srv.client_send(c, GET);
        }
        assert_eq!(srv.poll_step(), 20);
        for &c in &conns {
            assert!(!srv.client_recv(c).is_empty(), "conn {c} got a response");
        }
    }
}
