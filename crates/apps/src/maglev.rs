//! The Maglev consistent-hashing load balancer (§6.6, [Eisenbud et al.,
//! NSDI'16]).
//!
//! Maglev spreads flows over backends using a permutation-filled lookup
//! table: each backend generates a permutation of table slots from two
//! hashes of its name (`offset`, `skip`), and backends take turns
//! claiming their next preferred free slot until the table fills. The
//! construction yields near-perfect balance and minimal disruption when
//! backends come and go.

use crate::{fnv1a, fnv1a_fold};
use atmo_drivers::pkt::{self, Packet};

/// Default lookup-table size (a prime, per the Maglev paper's small
/// setting; production uses 65537).
pub const DEFAULT_TABLE_SIZE: usize = 65537;

/// A populated Maglev lookup table.
#[derive(Clone, Debug)]
pub struct MaglevTable {
    backends: Vec<String>,
    table: Vec<u32>,
}

impl MaglevTable {
    /// Builds the table for `backends` with `size` slots.
    ///
    /// # Panics
    ///
    /// Panics when `backends` is empty or `size` is zero (the algorithm
    /// needs at least one backend and one slot).
    pub fn new(backends: &[String], size: usize) -> Self {
        assert!(!backends.is_empty(), "Maglev needs at least one backend");
        assert!(size > 0, "Maglev table must have slots");
        let n = backends.len();

        // Per-backend permutation parameters (Maglev paper §3.4).
        let params: Vec<(usize, usize)> = backends
            .iter()
            .map(|b| {
                // The second hash is fnv1a("{b}#skip"); folding the static
                // suffix into the first hash's state yields the identical
                // value without a per-backend String allocation.
                let h1 = fnv1a(b.as_bytes());
                let h2 = fnv1a_fold(h1, b"#skip");
                (h1 as usize % size, h2 as usize % (size - 1).max(1) + 1)
            })
            .collect();

        let mut table = vec![u32::MAX; size];
        let mut next = vec![0usize; n];
        let mut filled = 0usize;
        while filled < size {
            for (i, &(offset, skip)) in params.iter().enumerate() {
                // Find backend i's next preferred slot that is still free.
                loop {
                    let slot = (offset + next[i] * skip) % size;
                    next[i] += 1;
                    if table[slot] == u32::MAX {
                        table[slot] = i as u32;
                        filled += 1;
                        break;
                    }
                }
                if filled == size {
                    break;
                }
            }
        }
        MaglevTable {
            backends: backends.to_vec(),
            table,
        }
    }

    /// Number of table slots.
    pub fn size(&self) -> usize {
        self.table.len()
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Backend index for a flow hash.
    pub fn lookup(&self, flow_hash: u64) -> usize {
        self.table[(flow_hash % self.table.len() as u64) as usize] as usize
    }

    /// Backend name for a flow hash.
    pub fn backend(&self, flow_hash: u64) -> &str {
        &self.backends[self.lookup(flow_hash)]
    }

    /// Processes one packet: parse the flow key, hash it, select the
    /// backend, and rewrite the destination (the per-packet work the
    /// Figure 6 benchmark measures). Returns the backend index, or `None`
    /// for non-UDP frames (dropped).
    pub fn process_packet(&self, pkt: &mut Packet) -> Option<usize> {
        self.process_frame(&mut pkt.data)
    }

    /// [`Self::process_packet`] over a borrowed frame — the zero-copy
    /// datapath hands the app a mutable view of the NIC buffer slot, so
    /// the rewrite happens in place with no owned `Packet` in sight.
    pub fn process_frame(&self, frame: &mut [u8]) -> Option<usize> {
        let key = pkt::flow_key_of(frame)?;
        let backend = self.lookup(fnv1a(&key));
        // Rewrite destination MAC and IP to the backend's (derived here
        // from the backend index, as a real deployment would via ARP).
        frame[0..6].copy_from_slice(&[0x52, 0x54, 0, 0xbe, 0, backend as u8]);
        let ip = 0x0a00_0200u32 | (backend as u32 & 0xff);
        frame[30..34].copy_from_slice(&ip.to_be_bytes());
        Some(backend)
    }

    /// Per-slot load per backend (for balance checks).
    pub fn slot_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.backends.len()];
        for &slot in &self.table {
            counts[slot as usize] += 1;
        }
        counts
    }
}

/// Calibrated per-packet application cost of the Maglev data path on the
/// c220g5 (flow-key extraction + FNV + table lookup + header rewrite).
pub const MAGLEV_APP_COST: u64 = 75;

#[cfg(test)]
mod tests {
    use super::*;

    fn backends(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("backend-{i}")).collect()
    }

    #[test]
    fn table_is_fully_populated() {
        let t = MaglevTable::new(&backends(5), 1031);
        assert_eq!(t.size(), 1031);
        assert!(t.slot_counts().iter().all(|&c| c > 0));
        assert_eq!(t.slot_counts().iter().sum::<usize>(), 1031);
    }

    #[test]
    fn load_is_balanced() {
        // Maglev's headline property: slot shares within a few percent.
        let t = MaglevTable::new(&backends(7), 65537);
        let counts = t.slot_counts();
        let expect = 65537 / 7;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect as u64 / 10,
                "unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn removal_causes_minimal_disruption() {
        let all = backends(8);
        let t1 = MaglevTable::new(&all, 65537);
        let t2 = MaglevTable::new(&all[..7], 65537);
        // Flows not mapped to the removed backend should mostly stay put.
        let mut moved = 0usize;
        let mut kept_flows = 0usize;
        for flow in 0..20_000u64 {
            let h = fnv1a(&flow.to_le_bytes());
            let b1 = t1.backend(h);
            if b1 == "backend-7" {
                continue; // its flows must move
            }
            kept_flows += 1;
            if t2.backend(h) != b1 {
                moved += 1;
            }
        }
        let frac = moved as f64 / kept_flows as f64;
        assert!(frac < 0.25, "disruption {frac} too high");
    }

    #[test]
    fn lookup_is_deterministic() {
        let t = MaglevTable::new(&backends(3), 1031);
        assert_eq!(t.lookup(12345), t.lookup(12345));
    }

    #[test]
    fn process_packet_rewrites_destination() {
        let t = MaglevTable::new(&backends(4), 1031);
        let mut pkt = Packet::udp64(99);
        let before_ip = pkt.data[30..34].to_vec();
        let b = t.process_packet(&mut pkt).unwrap();
        assert!(b < 4);
        assert_ne!(pkt.data[30..34].to_vec(), before_ip);
        assert_eq!(pkt.data[3], 0xbe, "backend MAC prefix installed");
    }

    #[test]
    fn skip_hash_matches_former_string_allocation() {
        // The folded second hash must be bit-identical to the old
        // `fnv1a(format!("{b}#skip"))`, so table layouts are unchanged.
        for b in backends(6) {
            let old = fnv1a(format!("{b}#skip").as_bytes());
            let new = fnv1a_fold(fnv1a(b.as_bytes()), b"#skip");
            assert_eq!(new, old, "skip hash drifted for {b}");
        }
    }

    #[test]
    fn process_frame_matches_process_packet() {
        let t = MaglevTable::new(&backends(4), 1031);
        let mut pkt = Packet::udp64(7);
        let mut frame = pkt.data.clone();
        let b1 = t.process_packet(&mut pkt);
        let b2 = t.process_frame(&mut frame);
        assert_eq!(b1, b2);
        assert_eq!(pkt.data, frame, "in-place rewrite must be identical");
    }

    #[test]
    fn non_udp_packets_dropped() {
        let t = MaglevTable::new(&backends(2), 101);
        let mut pkt = Packet::udp64(1);
        pkt.data[23] = 6; // TCP
        assert_eq!(t.process_packet(&mut pkt), None);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_backends_rejected() {
        let _ = MaglevTable::new(&[], 101);
    }
}
