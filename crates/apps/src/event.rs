//! The event-driven httpd core: per-CPU connection shards, hierarchical
//! timer wheels, and an epoll-style readiness surface over the
//! zero-copy datapath.
//!
//! The run-to-completion [`crate::Httpd`] walks *every* open connection
//! per poll, so serving cost is O(live). This core inverts that: work
//! arrives as *events* — `rx_batch_zc` frames, timer expiries, TX-drain
//! completions — each event enqueues the affected connection on a
//! per-CPU ready ring, and one loop iteration costs O(ready + expired)
//! regardless of how many connections are merely open. A million idle
//! keepalive connections cost exactly zero cycles per tick.
//!
//! Structure per steered CPU (one [`EventHttpd`] per RSS queue, no
//! cross-CPU state, no domain locks — asserted by the PR 2 per-domain
//! lock counters in the benches):
//!
//! * a [`ConnTable`] shard keyed by the same 4096-residue flow
//!   partition as `RssSteer`;
//! * a [`TimerWheel`] whose ids are the shard's slot indices (exactly
//!   one timer per connection: keepalive, read-header, or write-drain);
//! * a ready ring of generation-tagged [`ConnId`]s with a per-conn
//!   dedup flag, drained under a budget each tick;
//! * the incremental HTTP parser: a byte-at-a-time DFA whose entire
//!   state lives in [`Conn`] registers, so a request split across any
//!   number of `PktBuf`s parses without reassembly buffers;
//! * a [`StaticSite`] whose response heads are serialized once at
//!   `add_page` time — the steady-state loop allocates nothing.
//!
//! Backpressure: packet-pool exhaustion *parks* the connection (state
//! preserved, counted, drain timer still armed) instead of dropping
//! anything; TX completions unpark in FIFO order. The pool ledger
//! (`acquired == released + in_flight`) stays balanced throughout.

use std::collections::VecDeque;

use atmo_drivers::{seq_of, IxgbeDriver, PktBuf, PktPool, PKT_SLOT_SIZE};
use atmo_hw::CycleMeter;
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_trace::{HttpdOutcome, LatencyHist, TraceHandle, TraceShare};

use crate::conn::{Conn, ConnId, ConnTable};
use crate::httpd::{HttpResponse, MAX_HEAD_LEN, MAX_REQUEST_LINE};
use crate::timer::TimerWheel;
use crate::{fnv1a, fnv1a_fold, FNV1A_OFFSET};

/// log2 of modeled cycles per wheel tick: 8192 cycles ≈ 3.7 µs at the
/// c220g5's 2.2 GHz.
pub const TICK_SHIFT: u32 = 13;

/// Modeled cycles per wheel tick.
pub const TICK_CYCLES: u64 = 1 << TICK_SHIFT;

/// Byte offset of the HTTP payload inside a request frame (after the
/// udp64 header and the 8-byte flow sequence number).
pub const HTTP_PAYLOAD_OFFSET: usize = 50;

// Modeled per-event costs (cycles on the c220g5 profile). The loop
// charges per *event*, never per live connection — that is the whole
// point.
/// One event-loop dispatch iteration (ring bookkeeping, budget check).
pub const EV_DISPATCH_COST: u64 = 60;
/// Accepting one connection (slot init, flow-map insert, timer arm).
pub const EV_ACCEPT_COST: u64 = 150;
/// Per received frame (descriptor lookup, flow hash, table lookup).
pub const EV_RX_FRAME_COST: u64 = 80;
/// Per parsed request byte (the DFA step).
pub const EV_PARSE_BYTE_COST: u64 = 1;
/// One timer arm/cancel/re-arm (O(1) wheel link operation).
pub const EV_TIMER_OP_COST: u64 = 30;
/// One node moved (or fired) by a wheel cascade.
pub const EV_CASCADE_NODE_COST: u64 = 12;
/// Per response segment: descriptor setup before the byte copy.
pub const EV_SEG_BASE_COST: u64 = 40;
/// Copying one 64-byte cache line into an outgoing slot (matches
/// `CostModel::c220g5().copy_cacheline`).
pub const EV_COPY_CACHELINE_COST: u64 = 14;
/// Visiting one connection in the O(live) scan *baseline* (state load +
/// deadline compare); what the wheel-driven core avoids paying.
pub const EV_SCAN_VISIT_COST: u64 = 6;

// Connection lifecycle states (Conn::state; 0 = free slot).
/// Waiting for (more) request bytes.
pub const C_READING: u8 = 1;
/// Streaming a response into TX segments.
pub const C_SENDING: u8 = 2;
/// Parked on pool exhaustion; resumed by a TX completion.
pub const C_PARKED: u8 = 3;

// Parser DFA states (Conn::pstate).
const P_METHOD: u8 = 0;
const P_PATH: u8 = 1;
const P_VERSION: u8 = 2;
const P_VER_TAIL: u8 = 3;
const P_HDR_START: u8 = 4;
const P_HDR_SKIP: u8 = 5;
const P_CONN_VAL: u8 = 6;
const P_FINAL_LF: u8 = 7;
/// Unsupported method: drain the header, then answer 400.
const P_SKIP_TO_END: u8 = 8;

// Flag bits (Conn::flags).
/// Connection is on the ready ring (dedup).
pub const F_READY: u8 = 1;
/// Client sent `Connection: close`.
pub const F_CONN_CLOSE: u8 = 2;
/// Request line was not a GET; answer 400 and close.
pub const F_BADREQ: u8 = 4;
/// Connection is parked on backpressure.
pub const F_PARKED: u8 = 8;

// Timer kinds (Conn::timer_kind; 0 = none armed).
/// Idle keepalive timeout.
pub const T_KEEPALIVE: u8 = 1;
/// Read-header timeout (slowloris defense).
pub const T_HEADER: u8 = 2;
/// Write-drain timeout (stuck TX / parked too long).
pub const T_DRAIN: u8 = 3;

const METHOD_LIT: &[u8] = b"GET ";
const VERSION_LIT: &[u8] = b"HTTP/1.";
const CONNECTION_LIT: &[u8] = b"connection:";
const CLOSE_LIT: &[u8] = b"close";
const HDR_END_LIT: &[u8] = b"\r\n\r\n";

/// Builtin site-entry indices.
const SITE_400: u16 = 0;
const SITE_404: u16 = 1;

/// Event-core tuning for one shard.
#[derive(Clone, Copy, Debug)]
pub struct EventCoreConfig {
    /// This shard's RSS queue.
    pub queue: usize,
    /// Steered queues in the deployment.
    pub nqueues: usize,
    /// Ready-ring entries drained per tick (latency/throughput knob).
    pub ready_budget: usize,
    /// Idle keepalive timeout, in wheel ticks.
    pub keepalive_ticks: u64,
    /// Read-header timeout, in wheel ticks.
    pub header_ticks: u64,
    /// Write-drain timeout, in wheel ticks.
    pub drain_ticks: u64,
}

impl EventCoreConfig {
    /// Defaults for one shard of a `nqueues`-way deployment: 1024
    /// ready entries per tick, ~18 ms keepalive, ~1.9 ms header, ~3.7
    /// ms drain (in 8192-cycle ticks at 2.2 GHz).
    pub fn new(queue: usize, nqueues: usize) -> Self {
        EventCoreConfig {
            queue,
            nqueues,
            ready_budget: 1024,
            keepalive_ticks: 5000,
            header_ticks: 500,
            drain_ticks: 1000,
        }
    }
}

/// One static page with its response head serialized once, at
/// registration time — the steady-state loop copies bytes, never
/// formats them.
#[derive(Clone, Debug)]
struct SiteEntry {
    head: Vec<u8>,
    body: Vec<u8>,
}

/// The static site: entries plus a sorted hash index. Entry 0 is the
/// builtin 400, entry 1 the builtin 404; pages follow.
#[derive(Clone, Debug, Default)]
pub struct StaticSite {
    entries: Vec<SiteEntry>,
    /// `(path_hash, entry index)`, sorted by hash for binary search.
    by_hash: Vec<(u64, u16)>,
}

impl StaticSite {
    fn entry(status: u16, body: &[u8]) -> SiteEntry {
        let mut head = [0u8; MAX_HEAD_LEN];
        let n = HttpResponse::write_head(status, body.len(), &mut head);
        SiteEntry {
            head: head[..n].to_vec(),
            body: body.to_vec(),
        }
    }

    fn builtin() -> Self {
        StaticSite {
            entries: vec![
                StaticSite::entry(400, b"bad request"),
                StaticSite::entry(404, b"not found"),
            ],
            by_hash: Vec::new(),
        }
    }

    /// Registers a page; its 200 head (status line + Content-Length) is
    /// serialized here, once.
    ///
    /// # Panics
    ///
    /// Panics when the path's FNV-1a hash collides with a registered
    /// page (the event core resolves by hash only) or when the entry
    /// table is full.
    fn add_page(&mut self, path: &str, body: &[u8]) -> u16 {
        let hash = fnv1a(path.as_bytes());
        assert!(
            self.by_hash.binary_search_by_key(&hash, |e| e.0).is_err(),
            "path hash collision for {path}"
        );
        let idx = u16::try_from(self.entries.len()).expect("site entry table full");
        self.entries.push(StaticSite::entry(200, body));
        let at = self.by_hash.partition_point(|e| e.0 < hash);
        self.by_hash.insert(at, (hash, idx));
        idx
    }

    fn resolve(&self, path_hash: u64) -> Option<u16> {
        self.by_hash
            .binary_search_by_key(&path_hash, |e| e.0)
            .ok()
            .map(|i| self.by_hash[i].1)
    }

    fn total_len(&self, idx: u16) -> u32 {
        let e = &self.entries[idx as usize];
        (e.head.len() + e.body.len()) as u32
    }

    /// Copies `dst.len()` response bytes starting at logical `offset`
    /// (head bytes first, then body bytes) into `dst`.
    fn fill(&self, idx: u16, offset: u32, dst: &mut [u8]) {
        let e = &self.entries[idx as usize];
        let mut at = offset as usize;
        let mut out = 0usize;
        while out < dst.len() {
            let (src, base) = if at < e.head.len() {
                (&e.head[..], 0)
            } else {
                (&e.body[..], e.head.len())
            };
            let take = (src.len() - (at - base)).min(dst.len() - out);
            dst[out..out + take].copy_from_slice(&src[at - base..at - base + take]);
            at += take;
            out += take;
        }
    }
}

/// Fixed-capacity FIFO ring of generation-tagged connection ids. A
/// connection appears at most once live (the [`F_READY`] flag dedups);
/// ids that went stale between enqueue and drain are skipped by the
/// generation check. Capacity is sized at construction so pushes never
/// allocate — overflow is a verification failure, not a resize.
#[derive(Debug)]
struct ReadyRing {
    buf: Vec<ConnId>,
    mask: usize,
    head: usize,
    tail: usize,
}

impl ReadyRing {
    fn new(capacity: usize) -> Self {
        let want = capacity.max(2).next_power_of_two();
        ReadyRing {
            buf: vec![ConnId { slot: 0, gen: 0 }; want],
            mask: want - 1,
            head: 0,
            tail: 0,
        }
    }

    fn len(&self) -> usize {
        self.head - self.tail
    }

    fn push(&mut self, id: ConnId) {
        assert!(self.len() <= self.mask, "ready ring overflow");
        self.buf[self.head & self.mask] = id;
        self.head += 1;
    }

    fn pop(&mut self) -> Option<ConnId> {
        if self.head == self.tail {
            return None;
        }
        let id = self.buf[self.tail & self.mask];
        self.tail += 1;
        Some(id)
    }
}

/// One CPU's event-driven httpd shard. See the module docs.
#[derive(Debug)]
pub struct EventHttpd {
    cfg: EventCoreConfig,
    table: ConnTable,
    wheel: TimerWheel,
    site: StaticSite,
    ready: ReadyRing,
    parked: VecDeque<ConnId>,
    txq: Vec<PktBuf>,
    expired: Vec<(u32, u8)>,
    rx_scratch: Vec<PktBuf>,
    latency: LatencyHist,
    served: u64,
    trace: TraceShare,
}

impl EventHttpd {
    /// A shard over `table` (whose queue/nqueues must match `cfg`).
    /// Every buffer — wheel slab, ready ring, parked queue, TX queue,
    /// expiry scratch — is allocated here; the event loop allocates
    /// nothing afterwards.
    pub fn new(cfg: EventCoreConfig, table: ConnTable) -> Self {
        assert_eq!(cfg.queue, table.queue(), "config/table queue mismatch");
        let capacity = table.capacity();
        EventHttpd {
            cfg,
            wheel: TimerWheel::new(capacity),
            site: StaticSite::builtin(),
            // Twice the table capacity: at most one live entry per slot
            // plus one stale entry per recycled slot awaiting drain.
            ready: ReadyRing::new(capacity * 2),
            parked: VecDeque::with_capacity(capacity),
            txq: Vec::with_capacity(4096),
            expired: Vec::with_capacity(4096),
            rx_scratch: Vec::with_capacity(512),
            latency: LatencyHist::default(),
            served: 0,
            trace: TraceShare::detached(),
            table,
        }
    }

    /// Routes `httpd.*` accounting into `sink` (shard and table).
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink.clone());
        self.table.attach_trace(sink);
    }

    /// Registers a static page (response head serialized now).
    pub fn add_page(&mut self, path: &str, body: &[u8]) {
        self.site.add_page(path, body);
    }

    /// Requests fully served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Live connections on this shard.
    pub fn live(&self) -> usize {
        self.table.live()
    }

    /// Request latency distribution (parse-complete → last TX segment
    /// queued), in modeled cycles.
    pub fn latency(&self) -> &LatencyHist {
        &self.latency
    }

    /// The connection shard.
    pub fn table(&self) -> &ConnTable {
        &self.table
    }

    /// The timer wheel.
    pub fn wheel(&self) -> &TimerWheel {
        &self.wheel
    }

    /// Ready entries currently queued.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Connections currently parked on backpressure.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Accepts a connection for `flow` (idle, keepalive timer armed).
    /// `None` means the shard is full — backpressure, no allocation.
    pub fn accept(&mut self, meter: &mut CycleMeter, flow: u64) -> Option<ConnId> {
        let id = self.table.open(flow)?;
        let c = self.table.slot_mut(id.slot);
        c.state = C_READING;
        c.path_hash = FNV1A_OFFSET;
        meter.charge(EV_ACCEPT_COST + EV_TIMER_OP_COST);
        self.arm(
            meter.now() >> TICK_SHIFT,
            id.slot,
            T_KEEPALIVE,
            self.cfg.keepalive_ticks,
        );
        Some(id)
    }

    /// Feeds received frames into the shard: resolves each frame's flow
    /// to its connection (auto-accepting unknown flows), advances the
    /// incremental parser over the payload in place (zero-copy: the
    /// bytes are read straight out of the pool slot), and releases the
    /// buffer. Unknown flows that cannot be accepted (shard full) are
    /// dropped — backpressure, the ledger stays balanced because the
    /// buffer is still released.
    pub fn ingest(&mut self, meter: &mut CycleMeter, pool: &mut PktPool, bufs: &mut Vec<PktBuf>) {
        for buf in bufs.drain(..) {
            meter.charge(EV_RX_FRAME_COST);
            let id = {
                let frame = pool.data(&buf);
                seq_of(frame).and_then(|flow| match self.table.lookup(flow) {
                    Some(id) => Some(id),
                    None => self.accept(meter, flow),
                })
            };
            if let Some(id) = id {
                if buf.len() > HTTP_PAYLOAD_OFFSET {
                    let frame = pool.data(&buf);
                    let payload = &frame[HTTP_PAYLOAD_OFFSET..buf.len()];
                    meter.charge(EV_PARSE_BYTE_COST * payload.len() as u64);
                    self.feed(meter, id, payload);
                }
            }
            pool.release(buf);
        }
    }

    /// Pulls one zero-copy RX batch from `drv` and ingests it — the
    /// readiness surface fed directly by `rx_batch_zc` arrivals.
    pub fn ingest_rx(
        &mut self,
        meter: &mut CycleMeter,
        drv: &mut IxgbeDriver,
        pool: &mut PktPool,
        batch: usize,
    ) -> usize {
        let mut scratch = std::mem::take(&mut self.rx_scratch);
        let n = drv.rx_batch_zc(meter, pool, &mut scratch, batch);
        self.ingest(meter, pool, &mut scratch);
        self.rx_scratch = scratch;
        n
    }

    /// One event-loop iteration: advance the wheel to the meter's tick
    /// (expiries close timed-out connections), drain up to
    /// `ready_budget` ready connections (streaming response segments
    /// zero-copy into pool slots), flush TX, and unpark as many parked
    /// connections as TX freed slots for. Cost is O(ready + expired) —
    /// idle connections are never visited. Returns ready entries
    /// drained.
    pub fn tick(
        &mut self,
        meter: &mut CycleMeter,
        drv: &mut IxgbeDriver,
        pool: &mut PktPool,
    ) -> usize {
        meter.charge(EV_DISPATCH_COST);
        // Timer expiries.
        let pre_cascades = self.wheel.cascades();
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        self.wheel.advance(meter.now() >> TICK_SHIFT, &mut expired);
        let cascaded = self.wheel.cascades() - pre_cascades;
        if cascaded > 0 {
            meter.charge(EV_CASCADE_NODE_COST * cascaded);
            self.trace.httpd(HttpdOutcome::WheelCascade, cascaded);
        }
        for &(slot, kind) in &expired {
            meter.charge(EV_TIMER_OP_COST);
            self.handle_timeout(slot, kind);
        }
        self.expired = expired;
        // Ready drain, under budget.
        let mut drained = 0usize;
        while drained < self.cfg.ready_budget {
            let Some(id) = self.ready.pop() else { break };
            let Some(c) = self.table.get_mut(id) else {
                // Closed between enqueue and drain; the generation
                // check skips it for free.
                continue;
            };
            c.flags &= !F_READY;
            drained += 1;
            self.serve(meter, id, pool);
        }
        // TX flush; completions release pool slots and unpark.
        let freed = drv.tx_batch_zc(meter, pool, &mut self.txq);
        if freed > 0 {
            self.unpark(meter, freed);
        }
        self.trace.httpd(HttpdOutcome::ReadyBatch, drained as u64);
        drained
    }

    /// The O(live) comparison baseline: what a poll-everything server
    /// pays per iteration at this shard's occupancy. Charges one visit
    /// per live connection and returns the live count; used by the
    /// benches to demonstrate the O(ready) claim, never by the loop.
    pub fn scan_step_baseline(&self, meter: &mut CycleMeter) -> usize {
        let live = self.table.live();
        meter.charge(EV_SCAN_VISIT_COST * live as u64);
        live
    }

    /// Arms `slot`'s timer `ticks` from the *meter's* current tick (not
    /// the wheel's, which only advances inside [`EventHttpd::tick`] and
    /// may lag arbitrarily while work is charged between iterations —
    /// arming relative to stale wheel time would make deadlines fire
    /// early on the next advance).
    fn arm(&mut self, now_tick: u64, slot: u32, kind: u8, ticks: u64) {
        let deadline = now_tick.max(self.wheel.now()) + ticks.max(1);
        self.wheel.arm(slot, kind, deadline);
        self.table.slot_mut(slot).timer_kind = kind;
    }

    fn enqueue_ready(&mut self, id: ConnId) {
        let c = self.table.slot_mut(id.slot);
        if c.flags & F_READY != 0 {
            return;
        }
        c.flags |= F_READY;
        self.ready.push(id);
    }

    fn handle_timeout(&mut self, slot: u32, kind: u8) {
        let c = self.table.slot_mut(slot);
        debug_assert!(c.active, "expired timer on a free slot");
        debug_assert_eq!(c.timer_kind, kind, "timer kind drifted");
        let id = ConnId { slot, gen: c.gen };
        c.timer_kind = 0;
        let outcome = match kind {
            T_KEEPALIVE => HttpdOutcome::TimeoutKeepalive,
            T_HEADER => HttpdOutcome::TimeoutHeader,
            _ => HttpdOutcome::TimeoutDrain,
        };
        self.trace.httpd(outcome, 1);
        // The wheel already retired this timer; close without cancel.
        self.table.close(id);
    }

    fn close_conn(&mut self, id: ConnId) {
        if self.table.slot_mut(id.slot).timer_kind != 0 {
            self.wheel.cancel(id.slot);
            self.table.slot_mut(id.slot).timer_kind = 0;
        }
        self.table.close(id);
    }

    /// Advances the incremental parser over `bytes`. All parser state
    /// lives in the connection's registers, so a request may be split
    /// across any number of frames at any byte boundary.
    fn feed(&mut self, meter: &mut CycleMeter, id: ConnId, bytes: &[u8]) {
        let Some(c) = self.table.get_mut(id) else {
            return;
        };
        if c.state != C_READING {
            // Bytes racing a response in flight (or a parked conn) are
            // dropped; one request per connection at a time.
            return;
        }
        // First bytes of a new request: the idle keepalive timer is
        // replaced by the (much shorter) read-header timer, so a client
        // trickling its header — slowloris — dies quickly.
        if c.timer_kind == T_KEEPALIVE {
            meter.charge(EV_TIMER_OP_COST);
            self.arm(
                meter.now() >> TICK_SHIFT,
                id.slot,
                T_HEADER,
                self.cfg.header_ticks,
            );
        }
        let mut outcome = FeedOutcome::Incomplete;
        {
            let c = self.table.slot_mut(id.slot);
            for &b in bytes {
                match step(c, b) {
                    FeedOutcome::Incomplete => {}
                    done => {
                        outcome = done;
                        break;
                    }
                }
            }
        }
        match outcome {
            FeedOutcome::Incomplete => {}
            FeedOutcome::Malformed => {
                self.trace.httpd(HttpdOutcome::Malformed, 1);
                meter.charge(EV_TIMER_OP_COST);
                self.close_conn(id);
            }
            FeedOutcome::Complete => self.finish_request(meter, id),
        }
    }

    /// A complete request: resolve the page by path hash, set up the
    /// response stream, and mark the connection ready. Bytes after the
    /// header in the same frame are dropped (one in-flight request per
    /// connection; the run-to-completion `Httpd` still covers pipelined
    /// streams).
    fn finish_request(&mut self, meter: &mut CycleMeter, id: ConnId) {
        let (resp_idx, resp_len) = {
            let c = self.table.slot_mut(id.slot);
            let idx = if c.flags & F_BADREQ != 0 {
                SITE_400
            } else {
                self.site.resolve(c.path_hash).unwrap_or(SITE_404)
            };
            (idx, self.site.total_len(idx))
        };
        let c = self.table.slot_mut(id.slot);
        c.resp_idx = resp_idx;
        c.resp_len = resp_len;
        c.tx_sent = 0;
        c.req_start = meter.now();
        c.state = C_SENDING;
        // Header timer retires; the write-drain timer bounds TX.
        meter.charge(2 * EV_TIMER_OP_COST);
        self.arm(
            meter.now() >> TICK_SHIFT,
            id.slot,
            T_DRAIN,
            self.cfg.drain_ticks,
        );
        self.enqueue_ready(id);
    }

    /// Streams the connection's pending response bytes into pool slots
    /// (≤ one slot per segment), parking on exhaustion. On completion
    /// the connection either returns to idle keepalive or closes.
    fn serve(&mut self, meter: &mut CycleMeter, id: ConnId, pool: &mut PktPool) {
        let mut progressed = false;
        loop {
            let (resp_idx, tx_sent, resp_len) = {
                let c = self.table.slot_mut(id.slot);
                debug_assert_eq!(c.state, C_SENDING);
                (c.resp_idx, c.tx_sent, c.resp_len)
            };
            if tx_sent >= resp_len {
                break;
            }
            let seg = (resp_len - tx_sent).min(PKT_SLOT_SIZE as u32) as usize;
            let Some(mut buf) = pool.try_acquire() else {
                // Backpressure: park. Connection state is preserved
                // exactly. The drain timer bounds *stall* time, not
                // total transfer time: if this call queued segments,
                // the connection made TX progress and the clock resets;
                // a conn parked with no progress keeps its old deadline
                // so a stuck pool still bounds its lifetime.
                if progressed {
                    meter.charge(EV_TIMER_OP_COST);
                    self.arm(
                        meter.now() >> TICK_SHIFT,
                        id.slot,
                        T_DRAIN,
                        self.cfg.drain_ticks,
                    );
                }
                let c = self.table.slot_mut(id.slot);
                c.state = C_PARKED;
                c.flags |= F_PARKED;
                self.parked.push_back(id);
                self.trace.httpd(HttpdOutcome::Parked, 1);
                return;
            };
            {
                let dst = pool.slot_mut(&buf);
                self.site.fill(resp_idx, tx_sent, &mut dst[..seg]);
            }
            buf.set_len(seg);
            meter.charge(EV_SEG_BASE_COST + EV_COPY_CACHELINE_COST * (seg as u64).div_ceil(64));
            self.txq.push(buf);
            self.table.slot_mut(id.slot).tx_sent = tx_sent + seg as u32;
            progressed = true;
        }
        // Response fully queued.
        self.served += 1;
        self.trace.httpd(HttpdOutcome::Served, 1);
        let done = {
            let c = self.table.slot_mut(id.slot);
            self.latency.record(meter.since(c.req_start));
            c.flags & (F_CONN_CLOSE | F_BADREQ) != 0
        };
        meter.charge(EV_TIMER_OP_COST);
        if done {
            self.close_conn(id);
        } else {
            let c = self.table.slot_mut(id.slot);
            c.state = C_READING;
            c.pstate = P_METHOD;
            c.hdr_match = 0;
            c.val_match = 0;
            c.line_len = 0;
            c.path_hash = FNV1A_OFFSET;
            c.flags &= F_READY; // keep only the ready dedup bit
            self.arm(
                meter.now() >> TICK_SHIFT,
                id.slot,
                T_KEEPALIVE,
                self.cfg.keepalive_ticks,
            );
        }
    }

    /// Resumes up to `n` parked connections after TX freed pool slots,
    /// in FIFO park order.
    fn unpark(&mut self, meter: &mut CycleMeter, n: usize) {
        for _ in 0..n {
            let Some(id) = self.parked.pop_front() else {
                return;
            };
            let Some(c) = self.table.get_mut(id) else {
                continue; // closed (e.g. drain timeout) while parked
            };
            if c.state != C_PARKED {
                continue;
            }
            c.state = C_SENDING;
            c.flags &= !F_PARKED;
            meter.charge(EV_DISPATCH_COST);
            self.trace.httpd(HttpdOutcome::Unparked, 1);
            self.enqueue_ready(id);
        }
    }
}

impl Invariant for EventHttpd {
    /// Event-core well-formedness: the shard and wheel invariants hold;
    /// every armed timer belongs to a live connection whose
    /// `timer_kind` agrees; ready/parked queue lengths are bounded by
    /// their stale-entry budgets; and every live connection is in a
    /// declared lifecycle state with a coherent parser register file.
    fn wf(&self) -> VerifResult {
        self.table.wf()?;
        self.wheel.wf()?;
        check(
            self.wheel.armed() <= self.table.live(),
            "event_core",
            format!(
                "{} armed timers exceed {} live connections",
                self.wheel.armed(),
                self.table.live()
            ),
        )?;
        for slot in 0..self.table.capacity() as u32 {
            let armed = self.wheel.is_armed(slot);
            let c = self.table.slot(slot);
            if c.active {
                check(
                    (c.timer_kind != 0) == armed,
                    "event_core",
                    format!(
                        "slot {slot}: timer_kind {} but wheel armed = {armed}",
                        c.timer_kind
                    ),
                )?;
                check(
                    matches!(c.state, C_READING | C_SENDING | C_PARKED),
                    "event_core",
                    format!("slot {slot}: live conn in state {}", c.state),
                )?;
                check(
                    (c.flags & F_PARKED != 0) == (c.state == C_PARKED),
                    "event_core",
                    format!("slot {slot}: parked flag/state disagree"),
                )?;
            } else {
                check(
                    !armed,
                    "event_core",
                    format!("slot {slot}: free slot has an armed timer"),
                )?;
            }
        }
        check(
            self.ready.len() <= 2 * self.table.capacity(),
            "event_core",
            "ready ring exceeds its stale-entry budget",
        )
    }
}

/// What one DFA step concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FeedOutcome {
    Incomplete,
    Complete,
    Malformed,
}

/// One byte through the request parser. The register file is entirely
/// inside [`Conn`]; no buffers, no allocation, O(1) per byte.
fn step(c: &mut Conn, b: u8) -> FeedOutcome {
    use FeedOutcome::*;
    if c.pstate <= P_VER_TAIL {
        c.line_len += 1;
        if c.line_len as usize > MAX_REQUEST_LINE {
            return Malformed;
        }
    }
    match c.pstate {
        P_METHOD => {
            if b == METHOD_LIT[c.hdr_match as usize] {
                c.hdr_match += 1;
                if c.hdr_match as usize == METHOD_LIT.len() {
                    c.pstate = P_PATH;
                    c.hdr_match = 0;
                }
            } else {
                // Not a GET: drain the header, then answer 400.
                c.flags |= F_BADREQ;
                c.pstate = P_SKIP_TO_END;
                c.val_match = 0;
            }
            Incomplete
        }
        P_PATH => match b {
            b' ' => {
                if c.line_len <= 5 {
                    return Malformed; // empty path
                }
                c.pstate = P_VERSION;
                c.hdr_match = 0;
                Incomplete
            }
            b'\r' | b'\n' => Malformed, // request line ended early
            _ => {
                c.path_hash = fnv1a_fold(c.path_hash, &[b]);
                Incomplete
            }
        },
        P_VERSION => {
            if b == VERSION_LIT[c.hdr_match as usize] {
                c.hdr_match += 1;
                if c.hdr_match as usize == VERSION_LIT.len() {
                    c.pstate = P_VER_TAIL;
                    c.hdr_match = 0;
                }
                Incomplete
            } else {
                Malformed // not HTTP/1.x
            }
        }
        P_VER_TAIL => match b {
            b'\r' => {
                c.pstate = P_FINAL_LF;
                c.hdr_match = 1; // resume into header-line start after LF
                Incomplete
            }
            b'\n' => Malformed,
            _ => Incomplete,
        },
        P_HDR_START => {
            if c.hdr_match == 0 && b == b'\r' {
                c.pstate = P_FINAL_LF;
                c.hdr_match = 0; // terminal blank line
                return Incomplete;
            }
            if b.to_ascii_lowercase() == CONNECTION_LIT[c.hdr_match as usize] {
                c.hdr_match += 1;
                if c.hdr_match as usize == CONNECTION_LIT.len() {
                    c.pstate = P_CONN_VAL;
                    c.val_match = 0;
                }
            } else if b == b'\n' {
                c.pstate = P_HDR_START;
                c.hdr_match = 0;
            } else {
                c.pstate = P_HDR_SKIP;
            }
            Incomplete
        }
        P_HDR_SKIP => {
            if b == b'\n' {
                c.pstate = P_HDR_START;
                c.hdr_match = 0;
            }
            Incomplete
        }
        P_CONN_VAL => {
            if b == b'\n' {
                c.pstate = P_HDR_START;
                c.hdr_match = 0;
                return Incomplete;
            }
            let lb = b.to_ascii_lowercase();
            if lb == CLOSE_LIT[c.val_match as usize] {
                c.val_match += 1;
                if c.val_match as usize == CLOSE_LIT.len() {
                    c.flags |= F_CONN_CLOSE;
                    c.pstate = P_HDR_SKIP;
                }
            } else {
                c.val_match = if lb == CLOSE_LIT[0] { 1 } else { 0 };
            }
            Incomplete
        }
        P_FINAL_LF => {
            if b != b'\n' {
                return Malformed;
            }
            if c.hdr_match == 0 {
                // Blank line: request complete.
                Complete
            } else {
                // End of the request line: header block begins.
                c.pstate = P_HDR_START;
                c.hdr_match = 0;
                Incomplete
            }
        }
        P_SKIP_TO_END => {
            // Bad method: scan for the header terminator, then 400.
            if b == HDR_END_LIT[c.val_match as usize] {
                c.val_match += 1;
                if c.val_match as usize == HDR_END_LIT.len() {
                    return Complete;
                }
            } else {
                c.val_match = if b == b'\r' { 1 } else { 0 };
            }
            Incomplete
        }
        _ => Malformed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_drivers::{write_udp64, DriverCosts, IxgbeDevice};

    const FREQ: u64 = 2_200_000_000;

    fn rig(capacity: usize, pool_slots: usize) -> (EventHttpd, IxgbeDriver, PktPool, CycleMeter) {
        let table = ConnTable::anonymous(capacity, 0, 1);
        let mut ev = EventHttpd::new(EventCoreConfig::new(0, 1), table);
        ev.add_page("/index.html", b"hello, event world");
        let drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let pool = PktPool::anonymous(pool_slots);
        (ev, drv, pool, CycleMeter::new())
    }

    /// Builds a request frame: udp64 framing carrying `http` at the
    /// payload offset, exactly how the benches drive the core.
    fn req_frame(pool: &mut PktPool, flow: u64, http: &[u8]) -> PktBuf {
        let mut buf = pool.try_acquire().expect("pool slot for request");
        let frame = pool.slot_mut(&buf);
        write_udp64(frame, flow);
        frame[HTTP_PAYLOAD_OFFSET..HTTP_PAYLOAD_OFFSET + http.len()].copy_from_slice(http);
        buf.set_len(HTTP_PAYLOAD_OFFSET + http.len());
        buf
    }

    fn send(
        ev: &mut EventHttpd,
        meter: &mut CycleMeter,
        pool: &mut PktPool,
        flow: u64,
        http: &[u8],
    ) {
        let mut bufs = vec![req_frame(pool, flow, http)];
        ev.ingest(meter, pool, &mut bufs);
    }

    #[test]
    fn end_to_end_request_keepalive() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(64, 64);
        send(
            &mut ev,
            &mut meter,
            &mut pool,
            7,
            b"GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert_eq!(ev.live(), 1, "auto-accepted on first frame");
        assert_eq!(ev.ready_len(), 1, "parse completion marks ready");
        let drained = ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(drained, 1);
        assert_eq!(ev.served(), 1);
        assert_eq!(ev.latency().count(), 1);
        assert_eq!(ev.live(), 1, "keep-alive: back to idle, still open");
        assert_eq!(pool.in_flight(), 0, "TX completions released all slots");
        ev.wf().unwrap();
    }

    #[test]
    fn request_split_across_frames_completes_once() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(8, 32);
        let req: &[u8] = b"GET /index.html HTTP/1.1\r\nAccept: */*\r\n\r\n";
        // One byte per frame: the DFA's registers carry all state.
        for chunk in req.chunks(1) {
            send(&mut ev, &mut meter, &mut pool, 3, chunk);
        }
        assert_eq!(ev.ready_len(), 1, "completed exactly once");
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.served(), 1);
        ev.wf().unwrap();
    }

    #[test]
    fn unknown_path_is_served_404_and_close_header_closes() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(8, 32);
        send(
            &mut ev,
            &mut meter,
            &mut pool,
            1,
            b"GET /missing HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.served(), 1, "404 is a served response");
        assert_eq!(ev.live(), 0, "Connection: close tears down");
        assert_eq!(ev.wheel().armed(), 0, "no timer survives the close");
        ev.wf().unwrap();
    }

    #[test]
    fn bad_method_answers_400_then_closes() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(8, 32);
        send(
            &mut ev,
            &mut meter,
            &mut pool,
            2,
            b"POST /index.html HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
        );
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.served(), 1, "400 is a served response");
        assert_eq!(ev.live(), 0);
        ev.wf().unwrap();
    }

    #[test]
    fn malformed_version_closes_without_response() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(8, 32);
        send(&mut ev, &mut meter, &mut pool, 4, b"GET /x SPDY/3\r\n");
        assert_eq!(ev.live(), 0, "malformed closes immediately");
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.served(), 0);
        ev.wf().unwrap();
    }

    #[test]
    fn keepalive_timeout_reaps_idle_connections() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(8, 32);
        for flow in 0..5 {
            ev.accept(&mut meter, flow).unwrap();
        }
        assert_eq!(ev.live(), 5);
        let cfg_ticks = EventCoreConfig::new(0, 1).keepalive_ticks;
        meter.charge((cfg_ticks + 2) << TICK_SHIFT);
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.live(), 0, "all idle conns reaped");
        assert_eq!(ev.wheel().armed(), 0);
        ev.wf().unwrap();
    }

    #[test]
    fn slowloris_trickle_hits_header_timeout() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(8, 32);
        send(&mut ev, &mut meter, &mut pool, 6, b"GET /ind");
        assert_eq!(ev.live(), 1);
        // Past the header deadline, far short of the keepalive one.
        let cfg = EventCoreConfig::new(0, 1);
        meter.charge((cfg.header_ticks + 2) << TICK_SHIFT);
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.live(), 0, "trickling header died fast");
        assert!(meter.now() >> TICK_SHIFT < cfg.keepalive_ticks);
        ev.wf().unwrap();
    }

    #[test]
    fn pool_exhaustion_parks_then_tx_unparks() {
        let table = ConnTable::anonymous(8, 0, 1);
        let mut ev = EventHttpd::new(EventCoreConfig::new(0, 1), table);
        // ~9 KiB response: 5 segments against a 2-slot pool.
        let body = vec![b'z'; 9 * 1024];
        ev.add_page("/big", &body);
        let mut drv = IxgbeDriver::new(IxgbeDevice::new(FREQ), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(2);
        let mut meter = CycleMeter::new();
        send(
            &mut ev,
            &mut meter,
            &mut pool,
            9,
            b"GET /big HTTP/1.1\r\n\r\n",
        );
        let mut parked_seen = 0;
        for _ in 0..8 {
            ev.tick(&mut meter, &mut drv, &mut pool);
            parked_seen += ev.parked_len();
            if ev.served() == 1 {
                break;
            }
        }
        assert_eq!(ev.served(), 1, "response completed despite exhaustion");
        assert!(parked_seen > 0 || ev.served() == 1);
        assert_eq!(ev.parked_len(), 0, "nothing left parked");
        assert_eq!(pool.in_flight(), 0, "ledger balanced after drain");
        ev.wf().unwrap();
    }

    #[test]
    fn line_rate_rx_feed_auto_accepts_and_header_timeout_churns() {
        // rx_batch_zc delivers 64-byte udp64 frames whose payload is
        // zeros — never a valid GET, so each flow parks in the 400 drain
        // state until the header timer reaps it. This exercises the
        // readiness surface straight off the zero-copy RX path.
        let table = ConnTable::anonymous(256, 0, 1);
        let mut ev = EventHttpd::new(EventCoreConfig::new(0, 1), table);
        let mut drv = IxgbeDriver::new(IxgbeDevice::steered(FREQ, 1, 0), DriverCosts::atmosphere());
        let mut pool = PktPool::anonymous(64);
        let mut meter = CycleMeter::new();
        let n = ev.ingest_rx(&mut meter, &mut drv, &mut pool, 32);
        assert!(n > 0, "line-rate source delivers");
        assert!(ev.live() > 0, "unknown flows auto-accept");
        assert_eq!(pool.in_flight(), 0, "ingest releases every frame");
        let cfg = EventCoreConfig::new(0, 1);
        meter.charge((cfg.header_ticks + 2) << TICK_SHIFT);
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.live(), 0, "junk flows reaped by header timeout");
        ev.wf().unwrap();
    }

    #[test]
    fn connection_table_full_drops_frames_but_keeps_ledger() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(2, 32);
        for flow in 0..4 {
            send(
                &mut ev,
                &mut meter,
                &mut pool,
                flow,
                b"GET /index.html HTTP/1.1\r\n\r\n",
            );
        }
        assert_eq!(ev.live(), 2, "table capacity caps accepts");
        assert_eq!(pool.in_flight(), 0, "dropped frames still released");
        ev.tick(&mut meter, &mut drv, &mut pool);
        assert_eq!(ev.served(), 2);
        ev.wf().unwrap();
    }

    #[test]
    fn scan_baseline_charges_per_live_connection() {
        let (mut ev, _drv, _pool, mut meter) = rig(64, 8);
        for flow in 0..50 {
            ev.accept(&mut meter, flow).unwrap();
        }
        let before = meter.now();
        let visited = ev.scan_step_baseline(&mut meter);
        assert_eq!(visited, 50);
        assert_eq!(meter.now() - before, 50 * EV_SCAN_VISIT_COST);
    }

    #[test]
    fn served_connection_handles_followup_request() {
        let (mut ev, mut drv, mut pool, mut meter) = rig(8, 32);
        for round in 1..=3u64 {
            send(
                &mut ev,
                &mut meter,
                &mut pool,
                5,
                b"GET /index.html HTTP/1.1\r\n\r\n",
            );
            ev.tick(&mut meter, &mut drv, &mut pool);
            assert_eq!(ev.served(), round, "keep-alive conn serves again");
        }
        assert_eq!(ev.live(), 1);
        ev.wf().unwrap();
    }
}
