//! Data-intensive applications on top of the Atmosphere drivers (§6.6).
//!
//! The paper evaluates three applications built on the user-space
//! drivers; all three are implemented here as real code (real hash
//! tables, real packet parsing) whose per-request cycle costs feed the
//! performance simulation:
//!
//! * [`maglev`] — Google's Maglev consistent-hashing load balancer:
//!   permutation-based lookup-table population, flow hashing and
//!   backend selection with the minimal-disruption property;
//! * [`kvstore`] — a memcached-compatible key-value store over an open
//!   addressing hash table with linear probing and the FNV-1a hash;
//! * [`httpd`] — a tiny static-content web server that polls open
//!   connections round-robin and parses HTTP/1.1 requests.

pub mod conn;
pub mod event;
pub mod httpd;
pub mod kvstore;
pub mod maglev;
pub mod timer;

pub use conn::{Conn, ConnId, ConnTable, CONN_SLOTS_PER_PAGE, CONN_SLOT_SIZE};
pub use event::{EventCoreConfig, EventHttpd};
pub use httpd::{HttpRequest, HttpResponse, Httpd, MalformedKind, ParseOutcome};
pub use kvstore::{KvRequest, KvResponse, KvStore, LogKv, MAX_KV_LEN};
pub use maglev::MaglevTable;
pub use timer::{TimerWheel, WHEEL_LEVELS, WHEEL_SLOTS};

/// FNV-1a 64-bit offset basis (the hash of the empty string).
pub const FNV1A_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit hash (the paper's kv-store hash function; also used for
/// Maglev flow hashing).
pub fn fnv1a(data: &[u8]) -> u64 {
    fnv1a_fold(FNV1A_OFFSET, data)
}

/// Folds `data` into a running FNV-1a state `h`. Because FNV-1a consumes
/// its input one byte at a time, `fnv1a_fold(fnv1a(a), b)` equals
/// `fnv1a` of the concatenation `a ++ b` — callers can hash a composite
/// key piecewise without materialising the concatenated string.
pub fn fnv1a_fold(h: u64, data: &[u8]) -> u64 {
    let mut h = h;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_fold_matches_concatenation() {
        // The incremental form must agree with hashing the concatenated
        // bytes in one shot (this is what lets MaglevTable::new avoid a
        // per-backend String allocation).
        let name = "backend-3";
        let concat = fnv1a(format!("{name}#skip").as_bytes());
        let folded = fnv1a_fold(fnv1a(name.as_bytes()), b"#skip");
        assert_eq!(folded, concat);
        assert_eq!(fnv1a_fold(FNV1A_OFFSET, b"foobar"), fnv1a(b"foobar"));
    }

    #[test]
    fn fnv1a_distributes() {
        let h1 = fnv1a(b"key-1");
        let h2 = fnv1a(b"key-2");
        assert_ne!(h1, h2);
    }
}
