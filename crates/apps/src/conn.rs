//! Per-CPU sharded connection tables for the event-driven httpd.
//!
//! One [`ConnTable`] per steered CPU, holding slab-allocated [`Conn`]
//! slots in a page-backed arena. The sharding key is the same
//! 4096-residue flow partition as `RssSteer` ([`queue_for_seq`]), so a
//! connection is only ever touched by the CPU its flow steers to — the
//! shards are disjoint by construction and the event core takes no
//! cross-CPU lock (the benches assert this through the PR 2 per-domain
//! lock counters). Opening a flow that steers elsewhere is a
//! verification failure, not a slow path.
//!
//! Identity is generation-tagged: a [`ConnId`] names (slot, generation)
//! and every access checks the generation, so an id retained across a
//! close can never alias the slot's next tenant — the same affine-
//! handle discipline as `PktBuf`, in index form because connection ids
//! also live in timer wheels and ready rings.
//!
//! The arena is carved from kernel-`Mapped` frames
//! ([`ConnTable::from_frames`], [`CONN_SLOTS_PER_PAGE`] slots per 4 KiB
//! page) kept alive in `page_closure()`, so the leak-freedom audit
//! covers connection memory exactly as it covers packet pools.

use atmo_drivers::queue_for_seq;
use atmo_mem::PagePtr;
use atmo_spec::harness::{check, Invariant, VerifResult};
use atmo_trace::{HttpdOutcome, TraceHandle, TraceShare};

/// Modeled size of one connection slot; [`Conn`] must fit.
pub const CONN_SLOT_SIZE: usize = 64;

/// Connection slots carved from each backing 4 KiB page.
pub const CONN_SLOTS_PER_PAGE: usize = 4096 / CONN_SLOT_SIZE;

/// Null slot marker inside [`FlowMap`].
const NO_SLOT: u32 = u32::MAX;

/// A generation-tagged connection id: stale ids (from before the slot
/// was recycled) fail every lookup instead of aliasing the new tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId {
    pub slot: u32,
    pub gen: u32,
}

/// Per-connection state: flow identity, incremental parser registers,
/// response-streaming cursor and timer bookkeeping. Everything the
/// event core needs between events lives here, in one slot of the
/// page-backed arena — no per-connection heap allocation.
#[derive(Clone, Copy, Debug, Default)]
#[repr(C)]
pub struct Conn {
    /// Steering flow key (the packet sequence residue class).
    pub flow: u64,
    /// Cycle timestamp when the current request completed parsing.
    pub req_start: u64,
    /// FNV-1a hash of the request path, folded byte-by-byte.
    pub path_hash: u64,
    /// Response bytes already handed to TX.
    pub tx_sent: u32,
    /// Total response length (header + body) being streamed.
    pub resp_len: u32,
    /// Generation tag; bumped on close so stale [`ConnId`]s miss.
    pub gen: u32,
    /// Index of the resolved site entry being served.
    pub resp_idx: u16,
    /// Bytes accumulated in the current request-line token (overflow
    /// check for oversized method/path lines).
    pub line_len: u16,
    /// Connection lifecycle state (`event::C_*`).
    pub state: u8,
    /// Incremental parser DFA state (`event::P_*`).
    pub pstate: u8,
    /// Progress index into the literal the DFA is matching.
    pub hdr_match: u8,
    /// Sliding match progress for the `close` connection token.
    pub val_match: u8,
    /// Flag bits (`event::F_*`): keep-alive, ready, parked, …
    pub flags: u8,
    /// Timer kind currently armed for this conn (`event::T_*`).
    pub timer_kind: u8,
    /// Slot is live (open connection).
    pub active: bool,
}

const _: () = assert!(
    std::mem::size_of::<Conn>() <= CONN_SLOT_SIZE,
    "Conn must fit one arena slot"
);

/// Open-addressing flow → slot map (linear probing, backward-shift
/// deletion). Preallocated at twice the table capacity so the load
/// factor never exceeds 0.5 and probes stay short even at a million
/// live connections; no allocation after construction.
#[derive(Debug)]
struct FlowMap {
    /// `(flow, slot)`; `slot == NO_SLOT` marks an empty bucket.
    entries: Vec<(u64, u32)>,
    mask: usize,
    len: usize,
}

impl FlowMap {
    fn new(capacity: usize) -> Self {
        let want = (capacity.max(1) * 2).next_power_of_two();
        FlowMap {
            entries: vec![(0, NO_SLOT); want],
            mask: want - 1,
            len: 0,
        }
    }

    fn home(&self, flow: u64) -> usize {
        (crate::fnv1a(&flow.to_le_bytes()) as usize) & self.mask
    }

    fn probe_dist(&self, home: usize, pos: usize) -> usize {
        (pos + self.entries.len() - home) & self.mask
    }

    fn insert(&mut self, flow: u64, slot: u32) {
        debug_assert!(self.len < self.entries.len(), "flow map overfull");
        let mut i = self.home(flow);
        loop {
            if self.entries[i].1 == NO_SLOT {
                self.entries[i] = (flow, slot);
                self.len += 1;
                return;
            }
            debug_assert_ne!(self.entries[i].0, flow, "duplicate flow insert");
            i = (i + 1) & self.mask;
        }
    }

    fn get(&self, flow: u64) -> Option<u32> {
        let mut i = self.home(flow);
        loop {
            let (f, s) = self.entries[i];
            if s == NO_SLOT {
                return None;
            }
            if f == flow {
                return Some(s);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn remove(&mut self, flow: u64) -> bool {
        let mut i = self.home(flow);
        loop {
            let (f, s) = self.entries[i];
            if s == NO_SLOT {
                return false;
            }
            if f == flow {
                break;
            }
            i = (i + 1) & self.mask;
        }
        // Backward-shift: walk the rest of the cluster; any entry whose
        // probe path crosses the hole fills it (opening a new hole at
        // its old position), entries already at or past their home stay
        // put. Only an empty bucket ends the cluster — stopping at the
        // first home-positioned entry would strand entries behind it
        // whose probe chains pass through the hole.
        let mut free = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            let (nf, ns) = self.entries[j];
            if ns == NO_SLOT {
                break;
            }
            let home = self.home(nf);
            if self.probe_dist(home, free) < self.probe_dist(home, j) {
                self.entries[free] = (nf, ns);
                free = j;
            }
        }
        self.entries[free] = (0, NO_SLOT);
        self.len -= 1;
        true
    }
}

/// One CPU's shard of the connection table. See the module docs for the
/// sharding, generation and closure-accounting story.
#[derive(Debug)]
pub struct ConnTable {
    queue: usize,
    nqueues: usize,
    slots: Vec<Conn>,
    /// LIFO stack of free slot indices.
    free: Vec<u32>,
    /// Backing 4 KiB frames held `Mapped` in `page_closure()`; empty
    /// for anonymous (unit-test) tables.
    frames: Vec<PagePtr>,
    map: FlowMap,
    live: usize,
    opened: u64,
    closed: u64,
    trace: TraceShare,
}

impl ConnTable {
    fn build(capacity: usize, queue: usize, nqueues: usize, frames: Vec<PagePtr>) -> Self {
        assert!(capacity > 0, "connection table needs at least one slot");
        assert!(queue < nqueues, "shard queue out of range");
        ConnTable {
            queue,
            nqueues,
            slots: vec![Conn::default(); capacity],
            free: (0..capacity as u32).rev().collect(),
            frames,
            map: FlowMap::new(capacity),
            live: 0,
            opened: 0,
            closed: 0,
            trace: TraceShare::detached(),
        }
    }

    /// An anonymous shard with no kernel-accounted backing frames
    /// (unit tests).
    pub fn anonymous(capacity: usize, queue: usize, nqueues: usize) -> Self {
        ConnTable::build(capacity, queue, nqueues, Vec::new())
    }

    /// A shard carved from kernel-allocated `Mapped` frames,
    /// [`CONN_SLOTS_PER_PAGE`] slots per page. The caller keeps the
    /// frames mapped so the arena stays inside `page_closure()`.
    pub fn from_frames(frames: Vec<PagePtr>, queue: usize, nqueues: usize) -> Self {
        let capacity = frames.len() * CONN_SLOTS_PER_PAGE;
        ConnTable::build(capacity, queue, nqueues, frames)
    }

    /// Routes `httpd.*` accounting (accepts/closes) into `sink`.
    pub fn attach_trace(&mut self, sink: TraceHandle) {
        self.trace.attach(sink);
    }

    /// This shard's steering queue.
    pub fn queue(&self) -> usize {
        self.queue
    }

    /// Total slots in the arena.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Live connections.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Connections ever opened.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Connections closed.
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Backing frames (for closure cross-checks).
    pub fn frames(&self) -> &[PagePtr] {
        &self.frames
    }

    /// Opens a connection for `flow`. Returns `None` when the arena is
    /// full — backpressure, never an allocation.
    ///
    /// # Panics
    ///
    /// Panics when `flow` does not steer to this shard's queue: a
    /// cross-shard open would break the no-cross-CPU-locks guarantee,
    /// so it is treated as a verification failure.
    pub fn open(&mut self, flow: u64) -> Option<ConnId> {
        assert_eq!(
            queue_for_seq(flow, self.nqueues),
            self.queue,
            "flow {flow} steers off-shard: sharding invariant violated"
        );
        debug_assert!(self.map.get(flow).is_none(), "flow already open");
        let slot = self.free.pop()?;
        let gen = self.slots[slot as usize].gen;
        let c = &mut self.slots[slot as usize];
        *c = Conn {
            flow,
            gen,
            active: true,
            ..Conn::default()
        };
        self.map.insert(flow, slot);
        self.live += 1;
        self.opened += 1;
        self.trace.httpd(HttpdOutcome::Accept, 1);
        Some(ConnId { slot, gen })
    }

    /// Closes `id`, recycling its slot under a bumped generation.
    /// Stale ids return `false`.
    pub fn close(&mut self, id: ConnId) -> bool {
        let Some(c) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if !c.active || c.gen != id.gen {
            return false;
        }
        let flow = c.flow;
        c.active = false;
        c.gen = c.gen.wrapping_add(1);
        let removed = self.map.remove(flow);
        debug_assert!(removed, "live conn missing from flow map");
        self.free.push(id.slot);
        self.live -= 1;
        self.closed += 1;
        self.trace.httpd(HttpdOutcome::Close, 1);
        true
    }

    /// The connection behind `id`, unless the id is stale.
    pub fn get(&self, id: ConnId) -> Option<&Conn> {
        self.slots
            .get(id.slot as usize)
            .filter(|c| c.active && c.gen == id.gen)
    }

    /// Mutable access behind `id`, unless the id is stale.
    pub fn get_mut(&mut self, id: ConnId) -> Option<&mut Conn> {
        self.slots
            .get_mut(id.slot as usize)
            .filter(|c| c.active && c.gen == id.gen)
    }

    /// The live connection slot for `flow`, with its current generation.
    pub fn lookup(&self, flow: u64) -> Option<ConnId> {
        let slot = self.map.get(flow)?;
        Some(ConnId {
            slot,
            gen: self.slots[slot as usize].gen,
        })
    }

    /// Direct slot access for ids already validated this event (the
    /// ready-ring drain re-validates once, then streams).
    pub fn slot_mut(&mut self, slot: u32) -> &mut Conn {
        &mut self.slots[slot as usize]
    }

    /// Read-only slot access (wf audits walk every slot, free or live).
    pub fn slot(&self, slot: u32) -> &Conn {
        &self.slots[slot as usize]
    }

    /// Tears the arena down, returning the backing frames for unmap.
    ///
    /// # Panics
    ///
    /// Panics while connections are live — retiring frames under live
    /// state would break closure accounting.
    pub fn into_frames(self) -> Vec<PagePtr> {
        assert!(
            self.live == 0,
            "into_frames with {} live connections",
            self.live
        );
        self.frames
    }
}

impl Invariant for ConnTable {
    /// Shard well-formedness:
    ///
    /// 1. page-backed arenas size exactly to their frames
    ///    (`capacity == frames × CONN_SLOTS_PER_PAGE`);
    /// 2. the free stack holds distinct, in-range, inactive slots and
    ///    `live == capacity − free`;
    /// 3. the flow map indexes exactly the live slots (both
    ///    directions), and `opened == closed + live` — the ledger that
    ///    makes connection leaks arithmetically visible;
    /// 4. every live flow steers to this shard's queue — the disjoint
    ///    partition that makes cross-CPU locking unnecessary.
    fn wf(&self) -> VerifResult {
        if !self.frames.is_empty() {
            check(
                self.slots.len() == self.frames.len() * CONN_SLOTS_PER_PAGE,
                "conn_table",
                format!(
                    "{} slots not carved from {} frames",
                    self.slots.len(),
                    self.frames.len()
                ),
            )?;
        }
        let mut seen = vec![false; self.slots.len()];
        for &s in &self.free {
            check(
                (s as usize) < self.slots.len(),
                "conn_table",
                format!("free slot {s} out of range"),
            )?;
            check(
                !std::mem::replace(&mut seen[s as usize], true),
                "conn_table",
                format!("slot {s} on the free stack twice"),
            )?;
            check(
                !self.slots[s as usize].active,
                "conn_table",
                format!("free slot {s} is active"),
            )?;
        }
        check(
            self.live == self.slots.len() - self.free.len(),
            "conn_table",
            format!(
                "live {} != capacity {} - free {}",
                self.live,
                self.slots.len(),
                self.free.len()
            ),
        )?;
        check(
            self.map.len == self.live,
            "conn_table",
            format!("flow map holds {} but live = {}", self.map.len, self.live),
        )?;
        for (slot, c) in self.slots.iter().enumerate() {
            if !c.active {
                continue;
            }
            check(
                self.map.get(c.flow) == Some(slot as u32),
                "conn_table",
                format!("live slot {slot} flow {} not mapped back", c.flow),
            )?;
            check(
                queue_for_seq(c.flow, self.nqueues) == self.queue,
                "conn_table",
                format!(
                    "flow {} lives on shard {} but steers to {}",
                    c.flow,
                    self.queue,
                    queue_for_seq(c.flow, self.nqueues)
                ),
            )?;
        }
        check(
            self.opened == self.closed + self.live as u64,
            "conn_table",
            format!(
                "ledger broken: opened {} != closed {} + live {}",
                self.opened, self.closed, self.live
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_spec::rng::XorShift64Star;

    /// The `k`-th flow (in sequence order) that steers to `queue` —
    /// steering is hash-based, so membership comes from asking
    /// [`queue_for_seq`], not from arithmetic on residue ranges.
    fn flow_for(queue: usize, nqueues: usize, k: u64) -> u64 {
        let mut found = 0;
        for seq in 0..u64::MAX {
            if queue_for_seq(seq, nqueues) == queue {
                if found == k {
                    return seq;
                }
                found += 1;
            }
        }
        unreachable!("flow space exhausted")
    }

    #[test]
    fn open_lookup_close_roundtrip() {
        let mut t = ConnTable::anonymous(8, 1, 4);
        let flow = flow_for(1, 4, 0);
        let id = t.open(flow).unwrap();
        assert_eq!(t.live(), 1);
        assert_eq!(t.lookup(flow), Some(id));
        assert_eq!(t.get(id).unwrap().flow, flow);
        assert!(t.wf().is_ok());
        assert!(t.close(id));
        assert_eq!(t.live(), 0);
        assert_eq!(t.lookup(flow), None);
        assert!(t.wf().is_ok());
    }

    #[test]
    fn stale_generation_misses() {
        let mut t = ConnTable::anonymous(1, 0, 1);
        let id = t.open(7).unwrap();
        assert!(t.close(id));
        let id2 = t.open(7).unwrap();
        assert_eq!(id.slot, id2.slot, "slot recycled");
        assert_ne!(id.gen, id2.gen, "generation bumped");
        assert!(t.get(id).is_none(), "stale id must miss");
        assert!(!t.close(id), "stale close is a no-op");
        assert!(t.get(id2).is_some());
        assert!(t.wf().is_ok());
    }

    #[test]
    fn exhaustion_is_backpressure() {
        let mut t = ConnTable::anonymous(2, 0, 1);
        let a = t.open(1).unwrap();
        let _b = t.open(2).unwrap();
        assert!(t.open(3).is_none(), "full table refuses, never allocates");
        assert!(t.close(a));
        assert!(t.open(3).is_some(), "freed slot is reusable");
        assert!(t.wf().is_ok());
    }

    #[test]
    #[should_panic(expected = "steers off-shard")]
    fn cross_shard_open_panics() {
        let mut t = ConnTable::anonymous(4, 0, 4);
        let foreign = (0..).find(|&s| queue_for_seq(s, 4) != 0).unwrap();
        t.open(foreign).unwrap();
    }

    #[test]
    fn capacity_follows_frames() {
        let frames: Vec<PagePtr> = Vec::new();
        drop(frames);
        let t = ConnTable::anonymous(CONN_SLOTS_PER_PAGE * 3, 0, 1);
        assert_eq!(t.capacity(), 192);
        assert_eq!(CONN_SLOTS_PER_PAGE, 64, "64-byte slots, 64 per page");
    }

    #[test]
    fn property_random_churn_matches_model() {
        let mut rng = XorShift64Star::new(0xC0FF_EE11);
        let nqueues = 4;
        let queue = 2;
        let mut t = ConnTable::anonymous(128, queue, nqueues);
        let mut model: std::collections::BTreeMap<u64, ConnId> = Default::default();
        for step in 0..4000 {
            if rng.chance(1, 2) {
                let flow = flow_for(queue, nqueues, rng.below(400) as u64);
                if model.contains_key(&flow) {
                    continue;
                }
                match t.open(flow) {
                    Some(id) => {
                        model.insert(flow, id);
                    }
                    None => assert_eq!(t.live(), 128, "refusal only when full"),
                }
            } else if let Some(&flow) = model.keys().nth(rng.below(model.len().max(1))) {
                let id = model.remove(&flow).unwrap();
                assert!(t.close(id), "model id must close");
            }
            if step % 512 == 0 {
                t.wf().unwrap_or_else(|e| panic!("step {step}: {e}"));
                for (&flow, &id) in &model {
                    assert_eq!(t.lookup(flow), Some(id));
                }
            }
        }
        assert_eq!(t.live(), model.len());
        assert!(t.wf().is_ok());
        for (_, id) in std::mem::take(&mut model) {
            assert!(t.close(id));
        }
        assert_eq!(t.live(), 0);
        assert_eq!(t.opened(), t.closed());
        assert!(t.into_frames().is_empty());
    }
}
