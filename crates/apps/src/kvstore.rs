//! The network-attached key-value store (§6.6).
//!
//! "Our implementation relies on an open addressing hash table with
//! linear probing and uses the FNV hash function." Keys and values are
//! short binary strings (the paper evaluates <8B,8B>, <16B,16B> and
//! <32B,32B> pairs over 1M- and 8M-entry tables); requests arrive in UDP
//! packets in a memcached-like binary format.

use crate::fnv1a;

/// Maximum key/value length supported by the wire format.
pub const MAX_KV_LEN: usize = 32;

#[derive(Clone, Debug, PartialEq, Eq)]
enum Slot {
    Empty,
    Tombstone,
    Full { key: Vec<u8>, value: Vec<u8> },
}

/// An open addressing hash table with linear probing and FNV-1a hashing.
#[derive(Debug)]
pub struct KvStore {
    slots: Vec<Slot>,
    live: usize,
    mask: usize,
}

impl KvStore {
    /// A table with at least `capacity` slots (rounded up to a power of
    /// two so probing can use masking).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "kv-store needs capacity");
        let cap = capacity.next_power_of_two();
        KvStore {
            slots: vec![Slot::Empty; cap],
            live: 0,
            mask: cap - 1,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Table capacity (slots).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts or updates `key`; returns `false` when the table is too
    /// full to accept new keys (load factor ≥ 7/8 guard).
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> bool {
        debug_assert!(key.len() <= MAX_KV_LEN && value.len() <= MAX_KV_LEN);
        if self.live >= self.slots.len() / 8 * 7 {
            // Only allow updates past the load-factor guard.
            if self.probe(key).is_none() {
                return false;
            }
        }
        let mut idx = (fnv1a(key) as usize) & self.mask;
        let mut first_tombstone: Option<usize> = None;
        loop {
            match &self.slots[idx] {
                Slot::Empty => {
                    let target = first_tombstone.unwrap_or(idx);
                    self.slots[target] = Slot::Full {
                        key: key.to_vec(),
                        value: value.to_vec(),
                    };
                    self.live += 1;
                    return true;
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(idx);
                    }
                }
                Slot::Full { key: k, .. } if k.as_slice() == key => {
                    self.slots[idx] = Slot::Full {
                        key: key.to_vec(),
                        value: value.to_vec(),
                    };
                    return true;
                }
                Slot::Full { .. } => {}
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.probe(key).map(|idx| match &self.slots[idx] {
            Slot::Full { value, .. } => value.as_slice(),
            _ => unreachable!("probe returns full slots only"),
        })
    }

    /// Removes `key`; returns `true` when it existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        match self.probe(key) {
            Some(idx) => {
                self.slots[idx] = Slot::Tombstone;
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    fn probe(&self, key: &[u8]) -> Option<usize> {
        let mut idx = (fnv1a(key) as usize) & self.mask;
        let mut steps = 0usize;
        loop {
            match &self.slots[idx] {
                Slot::Empty => return None,
                Slot::Full { key: k, .. } if k.as_slice() == key => return Some(idx),
                _ => {}
            }
            idx = (idx + 1) & self.mask;
            steps += 1;
            if steps > self.slots.len() {
                return None; // table fully scanned
            }
        }
    }
}

/// A parsed kv request (memcached-style binary framing:
/// `[op:1][klen:1][vlen:1][key][value]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvRequest {
    /// GET key.
    Get(Vec<u8>),
    /// SET key value.
    Set(Vec<u8>, Vec<u8>),
    /// DELETE key.
    Delete(Vec<u8>),
}

/// A kv response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvResponse {
    /// Value found.
    Value(Vec<u8>),
    /// Stored.
    Stored,
    /// Deleted.
    Deleted,
    /// Key absent / store full / malformed.
    Miss,
}

impl KvRequest {
    /// Serializes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let (op, key, value): (u8, &[u8], &[u8]) = match self {
            KvRequest::Get(k) => (0, k, &[]),
            KvRequest::Set(k, v) => (1, k, v),
            KvRequest::Delete(k) => (2, k, &[]),
        };
        let mut out = vec![op, key.len() as u8, value.len() as u8];
        out.extend_from_slice(key);
        out.extend_from_slice(value);
        out
    }

    /// Parses the wire format.
    pub fn decode(buf: &[u8]) -> Option<KvRequest> {
        if buf.len() < 3 {
            return None;
        }
        let (op, klen, vlen) = (buf[0], buf[1] as usize, buf[2] as usize);
        if klen > MAX_KV_LEN || vlen > MAX_KV_LEN || buf.len() < 3 + klen + vlen {
            return None;
        }
        let key = buf[3..3 + klen].to_vec();
        let value = buf[3 + klen..3 + klen + vlen].to_vec();
        match op {
            0 => Some(KvRequest::Get(key)),
            1 => Some(KvRequest::Set(key, value)),
            2 => Some(KvRequest::Delete(key)),
            _ => None,
        }
    }
}

impl KvStore {
    /// Serves one request.
    pub fn serve(&mut self, req: &KvRequest) -> KvResponse {
        match req {
            KvRequest::Get(k) => match self.get(k) {
                Some(v) => KvResponse::Value(v.to_vec()),
                None => KvResponse::Miss,
            },
            KvRequest::Set(k, v) => {
                if self.set(k, v) {
                    KvResponse::Stored
                } else {
                    KvResponse::Miss
                }
            }
            KvRequest::Delete(k) => {
                if self.delete(k) {
                    KvResponse::Deleted
                } else {
                    KvResponse::Miss
                }
            }
        }
    }
}

/// Calibrated per-request application cost on the c220g5 for a table with
/// `entries` slots and `kv_bytes`-byte keys/values: base request handling
/// plus memory-hierarchy cost of the probe (an 8M-entry table misses to
/// DRAM; a 1M-entry table mostly hits L2/LLC) plus copying.
pub fn kv_app_cost(entries: usize, kv_bytes: usize) -> u64 {
    let probe = if entries > 4_000_000 { 140 } else { 60 };
    let copy = (kv_bytes as u64).div_ceil(8) * 4;
    120 + probe + copy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut kv = KvStore::with_capacity(1024);
        assert!(kv.set(b"hello", b"world"));
        assert_eq!(kv.get(b"hello"), Some(&b"world"[..]));
        assert_eq!(kv.get(b"absent"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn set_overwrites() {
        let mut kv = KvStore::with_capacity(64);
        kv.set(b"k", b"v1");
        kv.set(b"k", b"v2");
        assert_eq!(kv.get(b"k"), Some(&b"v2"[..]));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn delete_and_tombstone_probing() {
        let mut kv = KvStore::with_capacity(64);
        // Create a probe chain, then delete the middle element; the tail
        // must remain reachable through the tombstone.
        for i in 0..20u32 {
            kv.set(&i.to_le_bytes(), b"x");
        }
        assert!(kv.delete(&7u32.to_le_bytes()));
        for i in 0..20u32 {
            if i != 7 {
                assert!(kv.get(&i.to_le_bytes()).is_some(), "lost key {i}");
            }
        }
        assert!(!kv.delete(&7u32.to_le_bytes()), "double delete");
        // Tombstones are reused on insert.
        kv.set(&7u32.to_le_bytes(), b"y");
        assert_eq!(kv.get(&7u32.to_le_bytes()), Some(&b"y"[..]));
    }

    #[test]
    fn load_factor_guard() {
        let mut kv = KvStore::with_capacity(8);
        let mut accepted = 0;
        for i in 0..16u32 {
            if kv.set(&i.to_le_bytes(), b"v") {
                accepted += 1;
            }
        }
        assert!(accepted < 8, "guard must trip before the table is full");
        // Updates of existing keys still work at the guard.
        assert!(kv.set(&0u32.to_le_bytes(), b"w"));
    }

    #[test]
    fn many_entries_survive() {
        let mut kv = KvStore::with_capacity(1 << 16);
        for i in 0..30_000u32 {
            assert!(kv.set(&i.to_le_bytes(), &i.to_be_bytes()));
        }
        for i in (0..30_000u32).step_by(997) {
            assert_eq!(kv.get(&i.to_le_bytes()), Some(&i.to_be_bytes()[..]));
        }
        assert_eq!(kv.len(), 30_000);
    }

    #[test]
    fn request_wire_roundtrip() {
        for req in [
            KvRequest::Get(b"key".to_vec()),
            KvRequest::Set(b"key".to_vec(), b"value".to_vec()),
            KvRequest::Delete(b"key".to_vec()),
        ] {
            assert_eq!(KvRequest::decode(&req.encode()), Some(req));
        }
        assert_eq!(KvRequest::decode(&[]), None);
        assert_eq!(KvRequest::decode(&[9, 0, 0]), None, "unknown op");
    }

    #[test]
    fn serve_dispatches() {
        let mut kv = KvStore::with_capacity(64);
        assert_eq!(kv.serve(&KvRequest::Get(b"a".to_vec())), KvResponse::Miss);
        assert_eq!(
            kv.serve(&KvRequest::Set(b"a".to_vec(), b"1".to_vec())),
            KvResponse::Stored
        );
        assert_eq!(
            kv.serve(&KvRequest::Get(b"a".to_vec())),
            KvResponse::Value(b"1".to_vec())
        );
        assert_eq!(
            kv.serve(&KvRequest::Delete(b"a".to_vec())),
            KvResponse::Deleted
        );
    }

    #[test]
    fn app_cost_scales_with_table_and_kv_size() {
        assert!(kv_app_cost(8_000_000, 8) > kv_app_cost(1_000_000, 8));
        assert!(kv_app_cost(1_000_000, 32) > kv_app_cost(1_000_000, 8));
    }
}
