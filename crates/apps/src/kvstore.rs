//! The network-attached key-value store (§6.6).
//!
//! "Our implementation relies on an open addressing hash table with
//! linear probing and uses the FNV hash function." Keys and values are
//! short binary strings (the paper evaluates <8B,8B>, <16B,16B> and
//! <32B,32B> pairs over 1M- and 8M-entry tables); requests arrive in UDP
//! packets in a memcached-like binary format.

use atmo_spec::storage::KvOp;

use crate::fnv1a;

/// Maximum key/value length supported by the wire format.
pub const MAX_KV_LEN: usize = 32;

/// One table slot. Keys and values are stored *inline* as fixed arrays
/// with explicit lengths: a slot is one flat object with no per-entry
/// heap indirection, so a probe touches exactly the cache lines of the
/// slot it lands on (the memory-hierarchy behavior `kv_app_cost`
/// models) and insertion allocates nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Slot {
    Empty,
    Tombstone,
    Full {
        key: [u8; MAX_KV_LEN],
        klen: u8,
        value: [u8; MAX_KV_LEN],
        vlen: u8,
    },
}

impl Slot {
    /// An occupied slot holding `key` / `value` inline.
    ///
    /// # Panics
    ///
    /// Panics when either exceeds [`MAX_KV_LEN`].
    fn full(key: &[u8], value: &[u8]) -> Slot {
        let mut k = [0u8; MAX_KV_LEN];
        let mut v = [0u8; MAX_KV_LEN];
        k[..key.len()].copy_from_slice(key);
        v[..value.len()].copy_from_slice(value);
        Slot::Full {
            key: k,
            klen: key.len() as u8,
            value: v,
            vlen: value.len() as u8,
        }
    }
}

/// An open addressing hash table with linear probing and FNV-1a hashing.
#[derive(Debug)]
pub struct KvStore {
    slots: Vec<Slot>,
    live: usize,
    mask: usize,
}

impl KvStore {
    /// A table with at least `capacity` slots (rounded up to a power of
    /// two so probing can use masking).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "kv-store needs capacity");
        let cap = capacity.next_power_of_two();
        KvStore {
            slots: vec![Slot::Empty; cap],
            live: 0,
            mask: cap - 1,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Table capacity (slots).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts or updates `key`; returns `false` when the table is too
    /// full to accept new keys (load factor ≥ 7/8 guard).
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> bool {
        debug_assert!(key.len() <= MAX_KV_LEN && value.len() <= MAX_KV_LEN);
        if self.live >= self.slots.len() / 8 * 7 {
            // Only allow updates past the load-factor guard.
            if self.probe(key).is_none() {
                return false;
            }
        }
        let mut idx = (fnv1a(key) as usize) & self.mask;
        let mut first_tombstone: Option<usize> = None;
        loop {
            match &self.slots[idx] {
                Slot::Empty => {
                    let target = first_tombstone.unwrap_or(idx);
                    self.slots[target] = Slot::full(key, value);
                    self.live += 1;
                    return true;
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(idx);
                    }
                }
                Slot::Full { key: k, klen, .. } if &k[..*klen as usize] == key => {
                    self.slots[idx] = Slot::full(key, value);
                    return true;
                }
                Slot::Full { .. } => {}
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.probe(key).map(|idx| match &self.slots[idx] {
            Slot::Full { value, vlen, .. } => &value[..*vlen as usize],
            _ => unreachable!("probe returns full slots only"),
        })
    }

    /// Every live binding, in slot order.
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Full {
                    key,
                    klen,
                    value,
                    vlen,
                } => Some((
                    key[..*klen as usize].to_vec(),
                    value[..*vlen as usize].to_vec(),
                )),
                _ => None,
            })
            .collect()
    }

    /// Removes `key`; returns `true` when it existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        match self.probe(key) {
            Some(idx) => {
                self.slots[idx] = Slot::Tombstone;
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    fn probe(&self, key: &[u8]) -> Option<usize> {
        let mut idx = (fnv1a(key) as usize) & self.mask;
        let mut steps = 0usize;
        loop {
            match &self.slots[idx] {
                Slot::Empty => return None,
                Slot::Full { key: k, klen, .. } if &k[..*klen as usize] == key => return Some(idx),
                _ => {}
            }
            idx = (idx + 1) & self.mask;
            steps += 1;
            if steps > self.slots.len() {
                return None; // table fully scanned
            }
        }
    }
}

/// A parsed kv request (memcached-style binary framing:
/// `[op:1][klen:1][vlen:1][key][value]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvRequest {
    /// GET key.
    Get(Vec<u8>),
    /// SET key value.
    Set(Vec<u8>, Vec<u8>),
    /// DELETE key.
    Delete(Vec<u8>),
}

/// A kv response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvResponse {
    /// Value found.
    Value(Vec<u8>),
    /// Stored.
    Stored,
    /// Deleted.
    Deleted,
    /// Key absent / store full / malformed.
    Miss,
}

impl KvRequest {
    /// Serializes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let (op, key, value): (u8, &[u8], &[u8]) = match self {
            KvRequest::Get(k) => (0, k, &[]),
            KvRequest::Set(k, v) => (1, k, v),
            KvRequest::Delete(k) => (2, k, &[]),
        };
        let mut out = vec![op, key.len() as u8, value.len() as u8];
        out.extend_from_slice(key);
        out.extend_from_slice(value);
        out
    }

    /// Parses the wire format.
    pub fn decode(buf: &[u8]) -> Option<KvRequest> {
        if buf.len() < 3 {
            return None;
        }
        let (op, klen, vlen) = (buf[0], buf[1] as usize, buf[2] as usize);
        if klen > MAX_KV_LEN || vlen > MAX_KV_LEN || buf.len() < 3 + klen + vlen {
            return None;
        }
        let key = buf[3..3 + klen].to_vec();
        let value = buf[3 + klen..3 + klen + vlen].to_vec();
        match op {
            0 => Some(KvRequest::Get(key)),
            1 => Some(KvRequest::Set(key, value)),
            2 => Some(KvRequest::Delete(key)),
            _ => None,
        }
    }
}

impl KvStore {
    /// Serves one request.
    pub fn serve(&mut self, req: &KvRequest) -> KvResponse {
        match req {
            KvRequest::Get(k) => match self.get(k) {
                Some(v) => KvResponse::Value(v.to_vec()),
                None => KvResponse::Miss,
            },
            KvRequest::Set(k, v) => {
                if self.set(k, v) {
                    KvResponse::Stored
                } else {
                    KvResponse::Miss
                }
            }
            KvRequest::Delete(k) => {
                if self.delete(k) {
                    KvResponse::Deleted
                } else {
                    KvResponse::Miss
                }
            }
        }
    }
}

/// Calibrated per-request application cost on the c220g5 for a table with
/// `entries` slots and `kv_bytes`-byte keys/values: base request handling
/// plus memory-hierarchy cost of the probe (an 8M-entry table misses to
/// DRAM; a 1M-entry table mostly hits L2/LLC) plus copying.
pub fn kv_app_cost(entries: usize, kv_bytes: usize) -> u64 {
    let probe = if entries > 4_000_000 { 140 } else { 60 };
    let copy = (kv_bytes as u64).div_ceil(8) * 4;
    120 + probe + copy
}

/// Log record op byte: SET (matches the [`KvRequest`] wire encoding).
pub const LOG_OP_SET: u8 = 1;
/// Log record op byte: DELETE.
pub const LOG_OP_DELETE: u8 = 2;

/// Bytes of framing around a record's key/value payload: the
/// `[op:1][klen:1][vlen:1]` header plus the 8-byte FNV-1a checksum.
pub const LOG_RECORD_OVERHEAD: usize = 3 + 8;

/// Serializes one log record:
/// `[op:1][klen:1][vlen:1][key][value][crc:8 le]` where `crc` is the
/// FNV-1a hash of everything before it. The checksum is the commit
/// point: a record is part of the durable history iff it decodes with a
/// matching checksum.
fn encode_record(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    debug_assert!(key.len() <= MAX_KV_LEN && value.len() <= MAX_KV_LEN);
    let mut out = Vec::with_capacity(LOG_RECORD_OVERHEAD + key.len() + value.len());
    out.push(op);
    out.push(key.len() as u8);
    out.push(value.len() as u8);
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let crc = fnv1a(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the record at the *front* of `buf`. Returns
/// `(op, key, value, total_len)` only when the record is complete, its
/// op and lengths are valid, and the checksum matches; a torn or
/// corrupted record returns `None` (end of the committed prefix).
fn decode_record(buf: &[u8]) -> Option<(u8, &[u8], &[u8], usize)> {
    if buf.len() < LOG_RECORD_OVERHEAD {
        return None;
    }
    let (op, klen, vlen) = (buf[0], buf[1] as usize, buf[2] as usize);
    if op != LOG_OP_SET && op != LOG_OP_DELETE {
        return None;
    }
    if klen > MAX_KV_LEN || vlen > MAX_KV_LEN {
        return None;
    }
    let total = LOG_RECORD_OVERHEAD + klen + vlen;
    if buf.len() < total {
        return None;
    }
    let body = &buf[..3 + klen + vlen];
    let stored = u64::from_le_bytes(buf[3 + klen + vlen..total].try_into().unwrap());
    if fnv1a(body) != stored {
        return None;
    }
    Some((
        op,
        &buf[3..3 + klen],
        &buf[3 + klen..3 + klen + vlen],
        total,
    ))
}

/// A crash-consistent, log-structured kv-store: the in-memory
/// [`KvStore`] table is a cache over a write-ahead segment log.
///
/// Every accepted mutation appends one checksummed record to the active
/// segment *after* the table applies it (append-after-apply: the record
/// hits the log only for mutations the table accepted, so replaying the
/// log always reproduces the table). The durable state after a power
/// cut is exactly the longest prefix of whole, checksum-valid records
/// — [`LogKv::recover`] replays that prefix and
/// `atmo_kernel::refine::recovery_refines` checks the rebuilt table
/// against the abstract map of the committed operations.
///
/// Segments bound GC work: when the log holds materially more records
/// than live keys, [`LogKv`] compacts by rewriting only the live
/// bindings into fresh segments.
#[derive(Debug)]
pub struct LogKv {
    table: KvStore,
    /// Sealed segments plus the active tail (always non-empty).
    segments: Vec<Vec<u8>>,
    seg_cap: usize,
    table_cap: usize,
    /// Records currently in the log (live + dead).
    records: u64,
    compactions: u64,
}

impl LogKv {
    /// An empty store over a `capacity`-slot table with `seg_cap`-byte
    /// log segments.
    ///
    /// # Panics
    ///
    /// Panics when `seg_cap` cannot hold one maximal record.
    pub fn new(capacity: usize, seg_cap: usize) -> Self {
        assert!(
            seg_cap >= LOG_RECORD_OVERHEAD + 2 * MAX_KV_LEN,
            "segment too small for one record"
        );
        LogKv {
            table: KvStore::with_capacity(capacity),
            segments: vec![Vec::new()],
            seg_cap,
            table_cap: capacity,
            records: 0,
            compactions: 0,
        }
    }

    /// Inserts or updates `key`; logs the record iff the table accepted
    /// the mutation.
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> bool {
        if !self.table.set(key, value) {
            return false;
        }
        self.append(encode_record(LOG_OP_SET, key, value));
        self.maybe_compact();
        true
    }

    /// Removes `key`; logs the record iff it existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        if !self.table.delete(key) {
            return false;
        }
        self.append(encode_record(LOG_OP_DELETE, key, &[]));
        self.maybe_compact();
        true
    }

    /// Looks up `key` (in-memory, no log access).
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.table.get(key)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Every live binding.
    pub fn entries(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.table.entries()
    }

    /// Records currently in the log (live + superseded).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Segments in the log (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Completed compaction passes.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total log bytes across all segments.
    pub fn log_bytes(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// The on-disk image: all segments concatenated in order. A power
    /// cut truncates this byte string at an arbitrary point.
    pub fn log_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.log_bytes());
        for seg in &self.segments {
            out.extend_from_slice(seg);
        }
        out
    }

    fn append(&mut self, record: Vec<u8>) {
        let active = self.segments.last_mut().expect("log has an active segment");
        if !active.is_empty() && active.len() + record.len() > self.seg_cap {
            self.segments.push(record);
        } else {
            active.extend_from_slice(&record);
        }
        self.records += 1;
    }

    /// GC: once sealed segments exist and dead records dominate,
    /// rewrite only the live bindings into fresh segments.
    fn maybe_compact(&mut self) {
        if self.segments.len() > 1 && self.records > 2 * self.table.len() as u64 + 8 {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let live = self.table.entries();
        self.segments = vec![Vec::new()];
        self.records = 0;
        for (k, v) in &live {
            self.append(encode_record(LOG_OP_SET, k, v));
        }
        self.compactions += 1;
    }

    /// Byte offsets at which a record ends in `image` — the commit
    /// points a crash can land between. Offset 0 (nothing durable) is
    /// included.
    pub fn record_ends(image: &[u8]) -> Vec<usize> {
        let mut ends = vec![0];
        let mut off = 0;
        while let Some((_, _, _, total)) = decode_record(&image[off..]) {
            off += total;
            ends.push(off);
        }
        ends
    }

    /// The committed operation history in `image`: every whole,
    /// checksum-valid record up to the first torn or corrupt one.
    pub fn committed_prefix(image: &[u8]) -> Vec<KvOp> {
        let mut ops = Vec::new();
        let mut off = 0;
        while let Some((op, key, value, total)) = decode_record(&image[off..]) {
            ops.push(match op {
                LOG_OP_SET => KvOp::Set(key.to_vec(), value.to_vec()),
                _ => KvOp::Delete(key.to_vec()),
            });
            off += total;
        }
        ops
    }

    /// Rebuilds a store from a (possibly truncated) log image by
    /// replaying the committed prefix through `set`/`delete`. Returns
    /// the store and the number of records replayed. Bytes past the
    /// last valid record — a torn write from the crash — are discarded.
    pub fn recover(image: &[u8], capacity: usize, seg_cap: usize) -> (LogKv, usize) {
        let mut kv = LogKv::new(capacity, seg_cap);
        let mut replayed = 0;
        for op in Self::committed_prefix(image) {
            let ok = match &op {
                KvOp::Set(k, v) => kv.set(k, v),
                KvOp::Delete(k) => kv.delete(k),
            };
            // The original store accepted this mutation (it is in the
            // log), and acceptance depends only on table state, which
            // matches the original's by induction over the prefix.
            debug_assert!(ok, "replay of a committed record must be accepted");
            let _ = ok;
            replayed += 1;
        }
        (kv, replayed)
    }

    /// Table capacity the store was built with.
    pub fn table_capacity(&self) -> usize {
        self.table_cap
    }

    /// Segment capacity the store was built with.
    pub fn segment_capacity(&self) -> usize {
        self.seg_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut kv = KvStore::with_capacity(1024);
        assert!(kv.set(b"hello", b"world"));
        assert_eq!(kv.get(b"hello"), Some(&b"world"[..]));
        assert_eq!(kv.get(b"absent"), None);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn set_overwrites() {
        let mut kv = KvStore::with_capacity(64);
        kv.set(b"k", b"v1");
        kv.set(b"k", b"v2");
        assert_eq!(kv.get(b"k"), Some(&b"v2"[..]));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn delete_and_tombstone_probing() {
        let mut kv = KvStore::with_capacity(64);
        // Create a probe chain, then delete the middle element; the tail
        // must remain reachable through the tombstone.
        for i in 0..20u32 {
            kv.set(&i.to_le_bytes(), b"x");
        }
        assert!(kv.delete(&7u32.to_le_bytes()));
        for i in 0..20u32 {
            if i != 7 {
                assert!(kv.get(&i.to_le_bytes()).is_some(), "lost key {i}");
            }
        }
        assert!(!kv.delete(&7u32.to_le_bytes()), "double delete");
        // Tombstones are reused on insert.
        kv.set(&7u32.to_le_bytes(), b"y");
        assert_eq!(kv.get(&7u32.to_le_bytes()), Some(&b"y"[..]));
    }

    #[test]
    fn load_factor_guard() {
        let mut kv = KvStore::with_capacity(8);
        let mut accepted = 0;
        for i in 0..16u32 {
            if kv.set(&i.to_le_bytes(), b"v") {
                accepted += 1;
            }
        }
        assert!(accepted < 8, "guard must trip before the table is full");
        // Updates of existing keys still work at the guard.
        assert!(kv.set(&0u32.to_le_bytes(), b"w"));
    }

    #[test]
    fn many_entries_survive() {
        let mut kv = KvStore::with_capacity(1 << 16);
        for i in 0..30_000u32 {
            assert!(kv.set(&i.to_le_bytes(), &i.to_be_bytes()));
        }
        for i in (0..30_000u32).step_by(997) {
            assert_eq!(kv.get(&i.to_le_bytes()), Some(&i.to_be_bytes()[..]));
        }
        assert_eq!(kv.len(), 30_000);
    }

    #[test]
    fn request_wire_roundtrip() {
        for req in [
            KvRequest::Get(b"key".to_vec()),
            KvRequest::Set(b"key".to_vec(), b"value".to_vec()),
            KvRequest::Delete(b"key".to_vec()),
        ] {
            assert_eq!(KvRequest::decode(&req.encode()), Some(req));
        }
        assert_eq!(KvRequest::decode(&[]), None);
        assert_eq!(KvRequest::decode(&[9, 0, 0]), None, "unknown op");
    }

    #[test]
    fn serve_dispatches() {
        let mut kv = KvStore::with_capacity(64);
        assert_eq!(kv.serve(&KvRequest::Get(b"a".to_vec())), KvResponse::Miss);
        assert_eq!(
            kv.serve(&KvRequest::Set(b"a".to_vec(), b"1".to_vec())),
            KvResponse::Stored
        );
        assert_eq!(
            kv.serve(&KvRequest::Get(b"a".to_vec())),
            KvResponse::Value(b"1".to_vec())
        );
        assert_eq!(
            kv.serve(&KvRequest::Delete(b"a".to_vec())),
            KvResponse::Deleted
        );
    }

    #[test]
    fn app_cost_scales_with_table_and_kv_size() {
        assert!(kv_app_cost(8_000_000, 8) > kv_app_cost(1_000_000, 8));
        assert!(kv_app_cost(1_000_000, 32) > kv_app_cost(1_000_000, 8));
    }

    #[test]
    fn log_kv_roundtrip_and_full_image_recovery() {
        let mut kv = LogKv::new(1024, 4096);
        for i in 0..200u32 {
            assert!(kv.set(&i.to_le_bytes(), &i.to_be_bytes()));
        }
        for i in (0..200u32).step_by(3) {
            assert!(kv.delete(&i.to_le_bytes()));
        }
        assert_eq!(kv.get(&1u32.to_le_bytes()), Some(&1u32.to_be_bytes()[..]));
        assert_eq!(kv.get(&0u32.to_le_bytes()), None);

        let (recovered, replayed) = LogKv::recover(&kv.log_image(), 1024, 4096);
        assert!(replayed > 0);
        let mut a = kv.entries();
        let mut b = recovered.entries();
        a.sort();
        b.sort();
        assert_eq!(a, b, "full-image recovery must reproduce the store");
    }

    #[test]
    fn torn_tail_record_is_discarded() {
        let mut kv = LogKv::new(64, 1 << 16);
        kv.set(b"alpha", b"1");
        kv.set(b"beta", b"2");
        let committed = kv.log_image();
        kv.set(b"gamma", b"3");
        let full = kv.log_image();

        // Cut mid-way through the last record: gamma never committed.
        for cut in committed.len() + 1..full.len() {
            let (rec, replayed) = LogKv::recover(&full[..cut], 64, 1 << 16);
            assert_eq!(replayed, 2, "cut at {cut}");
            assert_eq!(rec.get(b"alpha"), Some(&b"1"[..]));
            assert_eq!(rec.get(b"gamma"), None, "torn record must not apply");
        }
        // The full image includes it.
        let (rec, _) = LogKv::recover(&full, 64, 1 << 16);
        assert_eq!(rec.get(b"gamma"), Some(&b"3"[..]));
    }

    #[test]
    fn corrupt_checksum_ends_the_committed_prefix() {
        let mut kv = LogKv::new(64, 1 << 16);
        kv.set(b"a", b"1");
        kv.set(b"b", b"2");
        kv.set(b"c", b"3");
        let mut image = kv.log_image();
        let ends = LogKv::record_ends(&image);
        assert_eq!(ends.len(), 4, "0 plus three record boundaries");
        // Flip a payload byte of the second record: its checksum fails,
        // so recovery stops after the first record even though the
        // third is intact.
        image[ends[1] + 3] ^= 0xff;
        let (rec, replayed) = LogKv::recover(&image, 64, 1 << 16);
        assert_eq!(replayed, 1);
        assert_eq!(rec.get(b"a"), Some(&b"1"[..]));
        assert_eq!(rec.get(b"b"), None);
        assert_eq!(rec.get(b"c"), None, "records after corruption are lost");
    }

    #[test]
    fn record_ends_enumerate_every_commit_point() {
        let mut kv = LogKv::new(64, 1 << 16);
        let mut expected = vec![0usize];
        let mut off = 0usize;
        for i in 0..10u32 {
            kv.set(&i.to_le_bytes(), b"val");
            off += LOG_RECORD_OVERHEAD + 4 + 3;
            expected.push(off);
        }
        let image = kv.log_image();
        assert_eq!(LogKv::record_ends(&image), expected);
        assert_eq!(LogKv::committed_prefix(&image).len(), 10);
    }

    #[test]
    fn segment_gc_bounds_the_log_and_survives_recovery() {
        let mut kv = LogKv::new(64, 256);
        // Hammer a small working set so dead records pile up; GC must
        // keep the log proportional to live data, not to history.
        for round in 0..400u32 {
            let key = (round % 8).to_le_bytes();
            assert!(kv.set(&key, &round.to_be_bytes()));
        }
        assert!(kv.compactions() > 0, "workload must trigger GC");
        assert!(
            kv.records() <= 2 * kv.len() as u64 + 9,
            "log must stay bounded: {} records for {} live keys",
            kv.records(),
            kv.len()
        );
        // The compacted log still recovers to the same state.
        let (rec, _) = LogKv::recover(&kv.log_image(), 64, 256);
        for k in 0..8u32 {
            assert_eq!(rec.get(&k.to_le_bytes()), kv.get(&k.to_le_bytes()));
        }
    }

    #[test]
    fn max_len_records_roundtrip_through_the_log() {
        let mut kv = LogKv::new(64, 4096);
        let key = [0xabu8; MAX_KV_LEN];
        let val = [0xcdu8; MAX_KV_LEN];
        assert!(kv.set(&key, &val));
        assert!(kv.set(b"", b""), "empty key/value is legal");
        let (rec, replayed) = LogKv::recover(&kv.log_image(), 64, 4096);
        assert_eq!(replayed, 2);
        assert_eq!(rec.get(&key), Some(&val[..]));
        assert_eq!(rec.get(b""), Some(&b""[..]));
    }

    #[test]
    fn recovery_matches_the_abstract_committed_history() {
        use atmo_spec::storage::AbstractKv;
        let mut kv = LogKv::new(256, 512);
        for i in 0..60u32 {
            kv.set(&(i % 16).to_le_bytes(), &i.to_le_bytes());
            if i % 5 == 0 {
                kv.delete(&(i % 16).to_le_bytes());
            }
        }
        let image = kv.log_image();
        for &cut in &LogKv::record_ends(&image) {
            let abs = AbstractKv::from_ops(&LogKv::committed_prefix(&image[..cut]));
            let (rec, _) = LogKv::recover(&image[..cut], 256, 512);
            let mut got = rec.entries();
            got.sort();
            let mut want: Vec<_> = abs
                .entries()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect();
            want.sort();
            assert_eq!(got, want, "cut at {cut}");
        }
    }
}
