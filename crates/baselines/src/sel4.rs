//! seL4 comparator (Table 3 of the paper).
//!
//! The paper compares Atmosphere's synchronous IPC and page-mapping
//! syscalls against seL4's on the same c220g5 hardware (the seL4 IPC
//! "call" benchmark). The published cycle counts are the baseline
//! constants here; the Atmosphere side of Table 3 is *measured* from the
//! simulated kernel by the bench harness.

/// seL4 call/reply round trip, cycles on the c220g5 (Table 3).
pub const SEL4_CALL_REPLY_CYCLES: u64 = 1_026;

/// seL4 "map a page" syscall, cycles on the c220g5 (Table 3; the paper
/// notes the calls are not strictly equivalent).
pub const SEL4_MAP_PAGE_CYCLES: u64 = 2_650;

#[cfg(test)]
mod tests {
    use super::*;
    use atmo_hw::cycles::CostModel;

    #[test]
    fn atmosphere_ipc_is_within_4pct_of_sel4() {
        // §6.4: "An IPC send/receive mechanism in Atmosphere takes around
        // 1058 cycles, whereas seL4 takes 1026 cycles."
        let atmo = 2 * CostModel::c220g5().ipc_one_way();
        let diff = atmo.abs_diff(SEL4_CALL_REPLY_CYCLES) as f64;
        assert!(diff / (SEL4_CALL_REPLY_CYCLES as f64) < 0.04);
    }

    #[test]
    fn atmosphere_maps_pages_faster_than_sel4() {
        let atmo = CostModel::c220g5().map_page_existing_tables();
        assert!(atmo < SEL4_MAP_PAGE_CYCLES);
    }
}
