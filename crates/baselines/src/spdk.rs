//! SPDK comparator: kernel-bypass storage on Linux.

use atmo_drivers::nvme::{run_closed_loop, IoKind, NvmeDevice, NvmeDriver, NvmeSpec};
use atmo_drivers::DriverCosts;
use atmo_hw::cycles::{CpuProfile, CycleMeter};

/// SPDK per-I/O CPU cost: a lean polled submission/completion pair.
const SPDK_IO_CPU: u64 = 400;

/// SPDK sequential IOPS at queue depth `batch` (Figure 5's `spdk` bars):
/// reads and writes both reach the device's internal peak.
pub fn spdk_iops(kind: IoKind, batch: usize, total: u64, profile: &CpuProfile) -> f64 {
    let costs = DriverCosts {
        nvme_io: SPDK_IO_CPU,
        nvme_write_extra: 0,
        ..DriverCosts::atmosphere()
    };
    let mut driver = NvmeDriver::new(NvmeDevice::new(NvmeSpec::p3700(profile.freq_hz)), costs);
    let mut meter = CycleMeter::new();
    run_closed_loop(&mut driver, &mut meter, kind, batch, total, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spdk_read_batch32_hits_device_peak() {
        let iops = spdk_iops(IoKind::Read, 32, 40_000, &CpuProfile::c220g5());
        assert!((400_000.0..460_000.0).contains(&iops), "{iops}");
    }

    #[test]
    fn spdk_write_batch32_hits_device_peak() {
        let iops = spdk_iops(IoKind::Write, 32, 40_000, &CpuProfile::c220g5());
        assert!((245_000.0..257_000.0).contains(&iops), "{iops}");
    }

    #[test]
    fn spdk_read_batch1_is_latency_bound() {
        let iops = spdk_iops(IoKind::Read, 1, 2_000, &CpuProfile::c220g5());
        assert!((12_000.0..14_000.0).contains(&iops), "{iops}");
    }
}
