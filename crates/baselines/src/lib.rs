//! Comparator systems for the evaluation (§6.4–6.6).
//!
//! The paper compares Atmosphere against Linux (sockets, fio+libaio,
//! nginx), kernel-bypass frameworks (DPDK, SPDK) and seL4. Each
//! comparator here is a calibrated cost model *driving the same device
//! models* as the Atmosphere drivers, so relative results follow from the
//! same physical ceilings. Calibration constants come from the paper's
//! own measurements (e.g. Linux at 0.89 Mpps ⇒ ~2,470 cycles per packet
//! at 2.2 GHz) and are documented per function.

pub mod dpdk;
pub mod linux;
pub mod sel4;
pub mod spdk;

pub use dpdk::{dpdk_echo_mpps, dpdk_maglev_mpps, DPDK_COSTS};
pub use linux::{
    fio_iops, linux_maglev_mpps, linux_socket_echo_mpps, nginx_rps, LINUX_NET_CYCLES_PER_PKT,
};
pub use sel4::{SEL4_CALL_REPLY_CYCLES, SEL4_MAP_PAGE_CYCLES};
pub use spdk::spdk_iops;
