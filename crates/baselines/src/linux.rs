//! Linux comparators: sockets, fio + libaio, nginx.

use atmo_drivers::ixgbe::IXGBE_LINE_RATE_64B_PPS;
use atmo_drivers::nvme::{run_closed_loop, IoKind, NvmeDevice, NvmeDriver, NvmeSpec};
use atmo_drivers::DriverCosts;
use atmo_hw::cycles::{CpuProfile, CycleMeter};

/// Per-packet cost of the Linux socket RX+TX path (syscall crossings +
/// sk_buff allocation + protocol layers + copies). Calibrated to the
/// paper's 0.89 Mpps (§6.5.1): 2.2 GHz / 0.89 M ≈ 2,470 cycles.
pub const LINUX_NET_CYCLES_PER_PKT: u64 = 2_470;

/// Per-packet application cost of the Maglev lookup (same real data
/// structure as Atmosphere's) plus the socket path — calibrated to the
/// paper's 1.0 Mpps Figure 6 result.
const LINUX_MAGLEV_CYCLES_PER_PKT: u64 = 2_200;

/// Per-request cost of nginx serving a static page (epoll + TCP stack +
/// sendfile), calibrated to 70.9 K requests/s (§6.6).
const NGINX_CYCLES_PER_REQUEST: u64 = 31_030;

/// Per-I/O CPU cost of fio with libaio and direct I/O: `io_submit` /
/// `io_getevents` crossings, bio assembly, page pinning. Reads carry the
/// read-side copy/pinning path (calibrated to 141 K IOPS at batch 32);
/// writes take the cheaper fire-and-forget path (calibrated to 248 K,
/// within 3% of the device's 256 K peak, §6.5.2).
const FIO_READ_CPU: u64 = 15_600;
const FIO_WRITE_CPU: u64 = 8_870;

/// Throughput of a Linux socket echo application (64-byte UDP).
pub fn linux_socket_echo_mpps(profile: &CpuProfile) -> f64 {
    let cpu_pps = profile.freq_hz as f64 / LINUX_NET_CYCLES_PER_PKT as f64;
    cpu_pps.min(IXGBE_LINE_RATE_64B_PPS) / 1e6
}

/// Throughput of Maglev over Linux sockets (Figure 6's `linux` bar).
pub fn linux_maglev_mpps(profile: &CpuProfile) -> f64 {
    let cpu_pps = profile.freq_hz as f64 / LINUX_MAGLEV_CYCLES_PER_PKT as f64;
    cpu_pps.min(IXGBE_LINE_RATE_64B_PPS) / 1e6
}

/// Requests/s of nginx serving the static page (Figure 6's `nginx` bar).
pub fn nginx_rps(profile: &CpuProfile) -> f64 {
    profile.freq_hz as f64 / NGINX_CYCLES_PER_REQUEST as f64
}

/// fio + libaio sequential IOPS at queue depth `batch` (Figure 5's
/// `linux` bars), run against the same NVMe device model.
pub fn fio_iops(kind: IoKind, batch: usize, total: u64, profile: &CpuProfile) -> f64 {
    let cpu = match kind {
        IoKind::Read => FIO_READ_CPU,
        IoKind::Write => FIO_WRITE_CPU,
    };
    let costs = DriverCosts {
        nvme_io: cpu,
        nvme_write_extra: 0,
        ..DriverCosts::atmosphere()
    };
    let mut driver = NvmeDriver::new(NvmeDevice::new(NvmeSpec::p3700(profile.freq_hz)), costs);
    let mut meter = CycleMeter::new();
    run_closed_loop(&mut driver, &mut meter, kind, batch, total, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CpuProfile {
        CpuProfile::c220g5()
    }

    #[test]
    fn linux_echo_is_0_89_mpps() {
        let m = linux_socket_echo_mpps(&profile());
        assert!((0.85..0.93).contains(&m), "{m}");
    }

    #[test]
    fn linux_maglev_is_1_mpps() {
        let m = linux_maglev_mpps(&profile());
        assert!((0.95..1.05).contains(&m), "{m}");
    }

    #[test]
    fn nginx_is_70_9_krps() {
        let r = nginx_rps(&profile());
        assert!((69_000.0..73_000.0).contains(&r), "{r}");
    }

    #[test]
    fn fio_read_batch32_is_cpu_bound_at_141k() {
        let iops = fio_iops(IoKind::Read, 32, 30_000, &profile());
        assert!((133_000.0..146_000.0).contains(&iops), "{iops}");
    }

    #[test]
    fn fio_read_batch1_is_latency_bound_near_13k() {
        let iops = fio_iops(IoKind::Read, 1, 2_000, &profile());
        assert!((11_500.0..13_500.0).contains(&iops), "{iops}");
    }

    #[test]
    fn fio_write_batch32_is_within_3pct_of_device_peak() {
        let iops = fio_iops(IoKind::Write, 32, 30_000, &profile());
        assert!((240_000.0..256_500.0).contains(&iops), "{iops}");
    }
}
