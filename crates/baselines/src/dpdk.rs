//! DPDK comparator: kernel-bypass packet processing on Linux.
//!
//! DPDK polls the NIC from user space with preallocated mbuf pools — the
//! same structure as Atmosphere's linked driver, plus the framework's
//! per-packet mbuf/port abstraction overhead.

use atmo_drivers::deploy::{run_rx_tx_scenario, Deployment};
use atmo_drivers::DriverCosts;
use atmo_hw::cycles::{CostModel, CpuProfile};

/// DPDK per-operation costs: slightly leaner descriptor handling than the
/// Atmosphere driver (hand-tuned vector RX paths), same doorbell costs.
pub const DPDK_COSTS: DriverCosts = DriverCosts {
    rx_desc: 50,
    tx_desc: 45,
    doorbell: 90,
    nvme_io: 0,
    nvme_write_extra: 0,
    rx_desc_zc: 22,
    tx_desc_zc: 18,
    refill_batch: 40,
    sq_desc_zc: 0,
    cq_desc_zc: 0,
};

/// Per-packet mbuf + ethdev framework overhead on the application side.
const DPDK_FRAMEWORK_OVERHEAD: u64 = 50;

/// DPDK echo throughput at the given batch size (Figure 4's `dpdk` bars).
pub fn dpdk_echo_mpps(batch: usize, profile: &CpuProfile) -> f64 {
    // l2fwd-style echo: the only application work is the framework's own
    // mbuf handling.
    run_rx_tx_scenario(
        Deployment::Linked { batch },
        150_000,
        DPDK_FRAMEWORK_OVERHEAD,
        &DPDK_COSTS,
        &CostModel::c220g5(),
        profile,
    )
    .mpps
}

/// DPDK-powered Maglev throughput (Figure 6's `dpdk` bar: 9.72 Mpps with
/// PCIe passthrough access to the NIC).
pub fn dpdk_maglev_mpps(profile: &CpuProfile) -> f64 {
    run_rx_tx_scenario(
        Deployment::Linked { batch: 32 },
        150_000,
        atmo_apps::maglev::MAGLEV_APP_COST + DPDK_FRAMEWORK_OVERHEAD,
        &DPDK_COSTS,
        &CostModel::c220g5(),
        profile,
    )
    .mpps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpdk_echo_batch32_reaches_line_rate() {
        let m = dpdk_echo_mpps(32, &CpuProfile::c220g5());
        assert!((13.9..14.3).contains(&m), "{m}");
    }

    #[test]
    fn dpdk_echo_batch1_is_below_line_rate() {
        let m = dpdk_echo_mpps(1, &CpuProfile::c220g5());
        assert!((5.0..9.0).contains(&m), "{m}");
    }

    #[test]
    fn dpdk_maglev_is_9_7_mpps() {
        let m = dpdk_maglev_mpps(&CpuProfile::c220g5());
        assert!((9.2..10.3).contains(&m), "{m}");
    }
}
