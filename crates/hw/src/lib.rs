//! Simulated hardware substrate for the Atmosphere reproduction.
//!
//! The paper runs on bare-metal x86-64 (under QEMU/KVM on CloudLab
//! machines). This crate replaces that hardware with a faithful software
//! model of everything the kernel and its proofs observe:
//!
//! * [`addr`] — virtual/physical addresses, page sizes (4 KiB / 2 MiB /
//!   1 GiB), canonical-address rules and page-table index arithmetic;
//! * [`paging`] — the x86-64 page-table *entry format* and the hardware
//!   **MMU walk semantics**. This is the trusted hardware specification the
//!   page-table refinement theorem compares against (§4.2, §6.2);
//! * [`cycles`] — per-core cycle meters and the calibrated [cost
//!   model](cycles::CostModel) used by the performance simulation. Constants
//!   are calibrated so the modeled latencies reproduce the paper's
//!   measurements on the CloudLab c220g5 (2×Xeon Silver 4114, 2.2 GHz);
//! * [`boot`] — the trusted boot loader's hand-off: physical memory map,
//!   CPU enumeration, kernel command line (§5, items 8–9);
//! * [`machine`] — the machine itself: cores with meters, DRAM span, and
//!   the interrupt controller model.

pub mod addr;
pub mod boot;
pub mod cycles;
pub mod machine;
pub mod paging;

pub use addr::{PAddr, VAddr, VaRange4K, PAGE_SIZE_1G, PAGE_SIZE_2M, PAGE_SIZE_4K};
pub use boot::{BootInfo, MemoryRegion, MemoryRegionKind};
pub use cycles::{CostModel, CpuProfile, CycleMeter};
pub use machine::{Core, InterruptController, Machine};
pub use paging::{walk_4level, EntryFlags, PageEntry, PhysFrameSource, ResolvedMapping};
