//! Hardware page-table entry format and MMU walk semantics.
//!
//! This module is the *trusted hardware specification*: the page-table
//! refinement theorem (§4.2, §6.2 of the paper) states that for every entry
//! in the abstract mapping, "if the MMU does a page table walk, the
//! resolved physical address and access permission are equal to the value
//! in the map". [`walk_4level`] is that MMU, implemented bit-exactly over
//! 512-entry tables of 64-bit entries in simulated physical memory.
//!
//! The entry format follows x86-64: bit 0 present, bit 1 writable, bit 2
//! user-accessible, bit 7 huge page (PS, at L3/L2), bit 63 execute-disable,
//! bits 51..12 the physical frame address.

use crate::addr::{index2va, PAddr, VAddr, ENTRIES_PER_TABLE};

/// Access-permission bits of a page-table entry (the paper's
/// `MapEntryPerm`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryFlags {
    /// Entry translates (bit 0).
    pub present: bool,
    /// Writes permitted (bit 1).
    pub writable: bool,
    /// User-mode access permitted (bit 2).
    pub user: bool,
    /// Maps a superpage at this level (bit 7; meaningful at L3/L2).
    pub huge: bool,
    /// Instruction fetch forbidden (bit 63).
    pub no_execute: bool,
}

impl EntryFlags {
    /// Flags for an absent entry.
    pub const fn absent() -> Self {
        EntryFlags {
            present: false,
            writable: false,
            user: false,
            huge: false,
            no_execute: false,
        }
    }

    /// Present, user-accessible, writable, executable leaf flags — the
    /// default for `mmap`ed pages.
    pub const fn user_rw() -> Self {
        EntryFlags {
            present: true,
            writable: true,
            user: true,
            huge: false,
            no_execute: false,
        }
    }

    /// Present, user-accessible, read-only flags.
    pub const fn user_ro() -> Self {
        EntryFlags {
            present: true,
            writable: false,
            user: true,
            huge: false,
            no_execute: false,
        }
    }
}

/// A raw 64-bit page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PageEntry(pub u64);

const BIT_PRESENT: u64 = 1 << 0;
const BIT_WRITABLE: u64 = 1 << 1;
const BIT_USER: u64 = 1 << 2;
const BIT_HUGE: u64 = 1 << 7;
const BIT_NX: u64 = 1 << 63;
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

impl PageEntry {
    /// The zero (absent) entry.
    pub const fn zero() -> Self {
        PageEntry(0)
    }

    /// Encodes an entry from a frame address and flags.
    ///
    /// # Panics
    ///
    /// Panics when `frame` has bits outside the addressable mask (it must
    /// be 4 KiB aligned and below 2^52).
    pub fn encode(frame: PAddr, flags: EntryFlags) -> Self {
        let addr = frame.as_usize() as u64;
        assert_eq!(
            addr & !ADDR_MASK,
            0,
            "frame address not encodable: {addr:#x}"
        );
        let mut bits = addr;
        if flags.present {
            bits |= BIT_PRESENT;
        }
        if flags.writable {
            bits |= BIT_WRITABLE;
        }
        if flags.user {
            bits |= BIT_USER;
        }
        if flags.huge {
            bits |= BIT_HUGE;
        }
        if flags.no_execute {
            bits |= BIT_NX;
        }
        PageEntry(bits)
    }

    /// `true` when the present bit is set.
    pub fn is_present(self) -> bool {
        self.0 & BIT_PRESENT != 0
    }

    /// `true` when the huge (PS) bit is set.
    pub fn is_huge(self) -> bool {
        self.0 & BIT_HUGE != 0
    }

    /// Decodes the frame address.
    pub fn frame(self) -> PAddr {
        PAddr::new((self.0 & ADDR_MASK) as usize)
    }

    /// Decodes the permission flags.
    pub fn flags(self) -> EntryFlags {
        EntryFlags {
            present: self.0 & BIT_PRESENT != 0,
            writable: self.0 & BIT_WRITABLE != 0,
            user: self.0 & BIT_USER != 0,
            huge: self.0 & BIT_HUGE != 0,
            no_execute: self.0 & BIT_NX != 0,
        }
    }
}

/// Source of physical page-table frames for the MMU walk.
///
/// The MMU reads physical memory; the page-table implementation provides
/// this view of its frames. Returning `None` for a frame the walk touches
/// models a machine check (the refinement harness treats it as a failure).
pub trait PhysFrameSource {
    /// Reads the 512-entry table stored at physical address `frame`.
    fn read_table(&self, frame: PAddr) -> Option<[u64; ENTRIES_PER_TABLE]>;
}

/// The result of a successful MMU translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResolvedMapping {
    /// Physical address of the mapped frame (page-size aligned).
    pub frame: PAddr,
    /// Size of the mapping in bytes (4 KiB, 2 MiB or 1 GiB).
    pub size: usize,
    /// Effective leaf permissions.
    pub flags: EntryFlags,
}

/// Performs the hardware 4-level page walk for `va` starting at the root
/// table (CR3) `root`.
///
/// Returns `None` when the translation faults (absent entry at any level or
/// unreadable frame). Superpages terminate the walk at L3 (1 GiB) or L2
/// (2 MiB) exactly as the silicon does.
pub fn walk_4level(mem: &impl PhysFrameSource, root: PAddr, va: VAddr) -> Option<ResolvedMapping> {
    let l4 = mem.read_table(root)?;
    let l4e = PageEntry(l4[va.l4_index()]);
    if !l4e.is_present() {
        return None;
    }

    let l3 = mem.read_table(l4e.frame())?;
    let l3e = PageEntry(l3[va.l3_index()]);
    if !l3e.is_present() {
        return None;
    }
    if l3e.is_huge() {
        return Some(ResolvedMapping {
            frame: l3e.frame(),
            size: crate::addr::PAGE_SIZE_1G,
            flags: l3e.flags(),
        });
    }

    let l2 = mem.read_table(l3e.frame())?;
    let l2e = PageEntry(l2[va.l2_index()]);
    if !l2e.is_present() {
        return None;
    }
    if l2e.is_huge() {
        return Some(ResolvedMapping {
            frame: l2e.frame(),
            size: crate::addr::PAGE_SIZE_2M,
            flags: l2e.flags(),
        });
    }

    let l1 = mem.read_table(l2e.frame())?;
    let l1e = PageEntry(l1[va.l1_index()]);
    if !l1e.is_present() {
        return None;
    }
    Some(ResolvedMapping {
        frame: l1e.frame(),
        size: crate::addr::PAGE_SIZE_4K,
        flags: l1e.flags(),
    })
}

/// Enumerates every 4 KiB-mapped virtual page reachable from `root`,
/// exactly as exhaustive MMU walks would see them.
///
/// Used by the refinement harness to compare the hardware view against the
/// abstract mapping over the *whole* domain, not just sampled addresses.
/// Superpage leaves are reported once with their size.
// Index variables deliberately mirror the architecture's PML level names
// (l4i..l1i), as in the paper's listings; iterator rewrites would obscure
// the hardware correspondence.
#[allow(clippy::needless_range_loop)]
pub fn enumerate_mappings(
    mem: &impl PhysFrameSource,
    root: PAddr,
) -> Vec<(VAddr, ResolvedMapping)> {
    let mut out = Vec::new();
    let Some(l4) = mem.read_table(root) else {
        return out;
    };
    for l4i in 0..ENTRIES_PER_TABLE {
        let l4e = PageEntry(l4[l4i]);
        if !l4e.is_present() {
            continue;
        }
        let Some(l3) = mem.read_table(l4e.frame()) else {
            continue;
        };
        for l3i in 0..ENTRIES_PER_TABLE {
            let l3e = PageEntry(l3[l3i]);
            if !l3e.is_present() {
                continue;
            }
            if l3e.is_huge() {
                out.push((
                    index2va(l4i, l3i, 0, 0),
                    ResolvedMapping {
                        frame: l3e.frame(),
                        size: crate::addr::PAGE_SIZE_1G,
                        flags: l3e.flags(),
                    },
                ));
                continue;
            }
            let Some(l2) = mem.read_table(l3e.frame()) else {
                continue;
            };
            for l2i in 0..ENTRIES_PER_TABLE {
                let l2e = PageEntry(l2[l2i]);
                if !l2e.is_present() {
                    continue;
                }
                if l2e.is_huge() {
                    out.push((
                        index2va(l4i, l3i, l2i, 0),
                        ResolvedMapping {
                            frame: l2e.frame(),
                            size: crate::addr::PAGE_SIZE_2M,
                            flags: l2e.flags(),
                        },
                    ));
                    continue;
                }
                let Some(l1) = mem.read_table(l2e.frame()) else {
                    continue;
                };
                for l1i in 0..ENTRIES_PER_TABLE {
                    let l1e = PageEntry(l1[l1i]);
                    if !l1e.is_present() {
                        continue;
                    }
                    out.push((
                        index2va(l4i, l3i, l2i, l1i),
                        ResolvedMapping {
                            frame: l1e.frame(),
                            size: crate::addr::PAGE_SIZE_4K,
                            flags: l1e.flags(),
                        },
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE_4K;
    use std::collections::BTreeMap;

    /// A toy physical memory: map from frame address to table contents.
    #[derive(Default)]
    struct ToyMem {
        tables: BTreeMap<usize, [u64; ENTRIES_PER_TABLE]>,
    }

    impl ToyMem {
        fn put(&mut self, frame: usize) -> &mut [u64; ENTRIES_PER_TABLE] {
            self.tables.entry(frame).or_insert([0; ENTRIES_PER_TABLE])
        }
    }

    impl PhysFrameSource for ToyMem {
        fn read_table(&self, frame: PAddr) -> Option<[u64; ENTRIES_PER_TABLE]> {
            self.tables.get(&frame.as_usize()).copied()
        }
    }

    fn table_entry(frame: usize) -> u64 {
        PageEntry::encode(
            PAddr::new(frame),
            EntryFlags {
                present: true,
                writable: true,
                user: true,
                huge: false,
                no_execute: false,
            },
        )
        .0
    }

    #[test]
    fn entry_encode_decode_round_trip() {
        let flags = EntryFlags {
            present: true,
            writable: false,
            user: true,
            huge: true,
            no_execute: true,
        };
        let e = PageEntry::encode(PAddr::new(0xdead_b000), flags);
        assert_eq!(e.frame(), PAddr::new(0xdead_b000));
        assert_eq!(e.flags(), flags);
    }

    #[test]
    #[should_panic(expected = "not encodable")]
    fn unaligned_frame_rejected() {
        let _ = PageEntry::encode(PAddr::new(0x1234), EntryFlags::user_rw());
    }

    #[test]
    fn walk_resolves_4k_mapping() {
        let mut mem = ToyMem::default();
        let va = VAddr(0x4_0201_3000);
        mem.put(0x1000)[va.l4_index()] = table_entry(0x2000);
        mem.put(0x2000)[va.l3_index()] = table_entry(0x3000);
        mem.put(0x3000)[va.l2_index()] = table_entry(0x4000);
        mem.put(0x4000)[va.l1_index()] =
            PageEntry::encode(PAddr::new(0xabc000), EntryFlags::user_rw()).0;

        let r = walk_4level(&mem, PAddr::new(0x1000), va).unwrap();
        assert_eq!(r.frame, PAddr::new(0xabc000));
        assert_eq!(r.size, PAGE_SIZE_4K);
        assert!(r.flags.writable && r.flags.user);
    }

    #[test]
    fn walk_faults_on_absent_entry() {
        let mut mem = ToyMem::default();
        mem.put(0x1000); // empty root
        assert!(walk_4level(&mem, PAddr::new(0x1000), VAddr(0x1000)).is_none());
    }

    #[test]
    fn walk_resolves_2m_superpage() {
        let mut mem = ToyMem::default();
        let va = VAddr(0x4020_0000);
        mem.put(0x1000)[va.l4_index()] = table_entry(0x2000);
        mem.put(0x2000)[va.l3_index()] = table_entry(0x3000);
        let huge = EntryFlags {
            present: true,
            writable: true,
            user: true,
            huge: true,
            no_execute: false,
        };
        mem.put(0x3000)[va.l2_index()] = PageEntry::encode(PAddr::new(0x20_0000), huge).0;

        let r = walk_4level(&mem, PAddr::new(0x1000), va).unwrap();
        assert_eq!(r.size, crate::addr::PAGE_SIZE_2M);
        assert_eq!(r.frame, PAddr::new(0x20_0000));
    }

    #[test]
    fn walk_resolves_1g_superpage() {
        let mut mem = ToyMem::default();
        let va = VAddr(0x8000_0000);
        mem.put(0x1000)[va.l4_index()] = table_entry(0x2000);
        let huge = EntryFlags {
            present: true,
            writable: false,
            user: true,
            huge: true,
            no_execute: true,
        };
        mem.put(0x2000)[va.l3_index()] = PageEntry::encode(PAddr::new(0x4000_0000), huge).0;

        let r = walk_4level(&mem, PAddr::new(0x1000), va).unwrap();
        assert_eq!(r.size, crate::addr::PAGE_SIZE_1G);
        assert!(!r.flags.writable && r.flags.no_execute);
    }

    #[test]
    fn enumerate_finds_all_leaves() {
        let mut mem = ToyMem::default();
        let va1 = VAddr(0x1000);
        let va2 = VAddr(0x2000);
        mem.put(0x1000)[0] = table_entry(0x2000);
        mem.put(0x2000)[0] = table_entry(0x3000);
        mem.put(0x3000)[0] = table_entry(0x4000);
        mem.put(0x4000)[va1.l1_index()] =
            PageEntry::encode(PAddr::new(0xa000), EntryFlags::user_rw()).0;
        mem.put(0x4000)[va2.l1_index()] =
            PageEntry::encode(PAddr::new(0xb000), EntryFlags::user_ro()).0;

        let all = enumerate_mappings(&mem, PAddr::new(0x1000));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, va1);
        assert_eq!(all[0].1.frame, PAddr::new(0xa000));
        assert_eq!(all[1].0, va2);
        assert!(!all[1].1.flags.writable);
    }

    #[test]
    fn enumeration_agrees_with_pointwise_walk() {
        let mut mem = ToyMem::default();
        mem.put(0x1000)[3] = table_entry(0x2000);
        mem.put(0x2000)[4] = table_entry(0x3000);
        mem.put(0x3000)[5] = table_entry(0x4000);
        mem.put(0x4000)[6] = PageEntry::encode(PAddr::new(0xc000), EntryFlags::user_rw()).0;

        for (va, resolved) in enumerate_mappings(&mem, PAddr::new(0x1000)) {
            assert_eq!(walk_4level(&mem, PAddr::new(0x1000), va), Some(resolved));
        }
    }
}
