//! Trusted boot-loader hand-off: memory map, CPUs, command line.
//!
//! The paper's boot loader (§5, item 9) "enumerates available physical
//! memory, sets up stacks, initializes interrupt controllers" and hands the
//! verified kernel a description of the machine. This module is that
//! hand-off for the simulated machine, including the kernel command-line
//! handling the paper lists among its trusted Rust code (§5, item 8).

use crate::addr::{PAddr, PAGE_SIZE_4K};

/// Kind of a physical memory region in the boot memory map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryRegionKind {
    /// RAM available to the kernel page allocator.
    Usable,
    /// Firmware/ACPI reserved; never touched.
    Reserved,
    /// Memory-mapped device registers (NIC/NVMe BARs).
    Mmio,
    /// The kernel image itself.
    KernelImage,
}

/// One contiguous region of the physical memory map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryRegion {
    /// First byte of the region.
    pub start: PAddr,
    /// Length in bytes.
    pub len: usize,
    /// Classification.
    pub kind: MemoryRegionKind,
}

impl MemoryRegion {
    /// One-past-the-end address.
    pub fn end(&self) -> PAddr {
        PAddr::new(self.start.as_usize() + self.len)
    }

    /// `true` when `addr` lies inside the region.
    pub fn contains(&self, addr: PAddr) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// The boot information handed to the kernel by the trusted loader.
#[derive(Clone, Debug)]
pub struct BootInfo {
    /// Physical memory map, sorted by start address, non-overlapping.
    pub regions: Vec<MemoryRegion>,
    /// Number of application processors brought online.
    pub cpu_count: usize,
    /// Raw kernel command line.
    pub cmdline: String,
}

impl BootInfo {
    /// Builds boot info for a simulated machine with `usable_mib` MiB of
    /// RAM (beyond a 1 MiB legacy hole and a 1 MiB kernel image) and
    /// `cpu_count` cores.
    pub fn simulated(usable_mib: usize, cpu_count: usize, cmdline: &str) -> Self {
        assert!(cpu_count >= 1, "at least the boot CPU must exist");
        let mib = 1024 * 1024;
        BootInfo {
            regions: vec![
                MemoryRegion {
                    start: PAddr::new(0),
                    len: mib,
                    kind: MemoryRegionKind::Reserved,
                },
                MemoryRegion {
                    start: PAddr::new(mib),
                    len: mib,
                    kind: MemoryRegionKind::KernelImage,
                },
                MemoryRegion {
                    start: PAddr::new(2 * mib),
                    len: usable_mib * mib,
                    kind: MemoryRegionKind::Usable,
                },
                MemoryRegion {
                    start: PAddr::new(2 * mib + usable_mib * mib),
                    len: 16 * mib,
                    kind: MemoryRegionKind::Mmio,
                },
            ],
            cpu_count,
            cmdline: cmdline.to_string(),
        }
    }

    /// Total bytes of usable RAM.
    pub fn usable_bytes(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| r.kind == MemoryRegionKind::Usable)
            .map(|r| r.len)
            .sum()
    }

    /// Number of usable 4 KiB frames.
    pub fn usable_frames(&self) -> usize {
        self.usable_bytes() / PAGE_SIZE_4K
    }

    /// First usable frame address (4 KiB aligned).
    ///
    /// # Panics
    ///
    /// Panics when the map has no usable region.
    pub fn first_usable_frame(&self) -> PAddr {
        self.regions
            .iter()
            .find(|r| r.kind == MemoryRegionKind::Usable)
            .map(|r| r.start)
            .expect("boot memory map has no usable region")
    }

    /// Checks the memory map is sorted and non-overlapping.
    pub fn map_wf(&self) -> bool {
        self.regions
            .windows(2)
            .all(|w| w[0].end().as_usize() <= w[1].start.as_usize())
    }

    /// Looks up a `key=value` (or bare `key`) option on the command line.
    ///
    /// Bare flags report `Some("")`; missing keys report `None`.
    pub fn cmdline_option(&self, key: &str) -> Option<&str> {
        for tok in self.cmdline.split_whitespace() {
            match tok.split_once('=') {
                Some((k, v)) if k == key => return Some(v),
                None if tok == key => return Some(""),
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_map_is_well_formed() {
        let bi = BootInfo::simulated(256, 4, "");
        assert!(bi.map_wf());
        assert_eq!(bi.cpu_count, 4);
        assert_eq!(bi.usable_bytes(), 256 * 1024 * 1024);
        assert_eq!(bi.usable_frames(), 256 * 256);
    }

    #[test]
    fn first_usable_frame_is_aligned() {
        let bi = BootInfo::simulated(64, 1, "");
        let f = bi.first_usable_frame();
        assert!(f.is_aligned(PAGE_SIZE_4K));
        assert_eq!(f, PAddr::new(2 * 1024 * 1024));
    }

    #[test]
    fn region_contains() {
        let r = MemoryRegion {
            start: PAddr::new(0x1000),
            len: 0x1000,
            kind: MemoryRegionKind::Usable,
        };
        assert!(r.contains(PAddr::new(0x1000)));
        assert!(r.contains(PAddr::new(0x1fff)));
        assert!(!r.contains(PAddr::new(0x2000)));
    }

    #[test]
    fn cmdline_parsing() {
        let bi = BootInfo::simulated(64, 1, "console=serial quiet isol_cores=2-3");
        assert_eq!(bi.cmdline_option("console"), Some("serial"));
        assert_eq!(bi.cmdline_option("quiet"), Some(""));
        assert_eq!(bi.cmdline_option("isol_cores"), Some("2-3"));
        assert_eq!(bi.cmdline_option("debug"), None);
    }

    #[test]
    #[should_panic(expected = "at least the boot CPU")]
    fn zero_cpus_rejected() {
        let _ = BootInfo::simulated(64, 0, "");
    }
}
