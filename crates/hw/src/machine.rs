//! The simulated machine: cores, meters and the interrupt controller.
//!
//! Models the pieces of platform state the paper's trusted initialization
//! code touches (§5, item 8: APIC, IDT, per-CPU structures): a set of
//! [`Core`]s each with a [`CycleMeter`], and a simple local-APIC-style
//! [`InterruptController`] with per-vector pending/masked state.

use crate::boot::BootInfo;
use crate::cycles::{CostModel, CpuProfile, CycleMeter};

/// One simulated CPU core.
#[derive(Clone, Debug)]
pub struct Core {
    /// Core id (APIC id in the real system).
    pub id: usize,
    /// This core's cycle meter.
    pub meter: CycleMeter,
}

/// A local-APIC-style interrupt controller: 256 vectors with pending and
/// masked bits. Delivery order is lowest vector first, as on hardware.
#[derive(Clone, Debug)]
pub struct InterruptController {
    pending: [bool; 256],
    masked: [bool; 256],
}

impl Default for InterruptController {
    fn default() -> Self {
        InterruptController::new()
    }
}

impl InterruptController {
    /// A controller with nothing pending and nothing masked.
    pub fn new() -> Self {
        InterruptController {
            pending: [false; 256],
            masked: [false; 256],
        }
    }

    /// Raises interrupt `vector` (device → controller).
    pub fn raise(&mut self, vector: u8) {
        self.pending[vector as usize] = true;
    }

    /// Masks interrupt `vector`.
    pub fn mask(&mut self, vector: u8) {
        self.masked[vector as usize] = true;
    }

    /// Unmasks interrupt `vector`.
    pub fn unmask(&mut self, vector: u8) {
        self.masked[vector as usize] = false;
    }

    /// `true` when `vector` is pending (regardless of masking).
    pub fn is_pending(&self, vector: u8) -> bool {
        self.pending[vector as usize]
    }

    /// Acknowledges and returns the highest-priority (lowest-numbered)
    /// pending, unmasked vector, clearing its pending bit.
    pub fn ack(&mut self) -> Option<u8> {
        for v in 0..256 {
            if self.pending[v] && !self.masked[v] {
                self.pending[v] = false;
                return Some(v as u8);
            }
        }
        None
    }
}

/// The simulated machine handed to the kernel at boot.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Per-core state.
    pub cores: Vec<Core>,
    /// The CPU profile (frequency, thread count).
    pub profile: CpuProfile,
    /// The calibrated cost model all subsystems charge against.
    pub costs: CostModel,
    /// Interrupt controller (one, matching the big-lock single-controller
    /// model of the paper).
    pub intc: InterruptController,
    /// Boot information (memory map, command line).
    pub boot: BootInfo,
}

impl Machine {
    /// Boots a simulated c220g5-class machine.
    pub fn boot_c220g5(usable_mib: usize, cpu_count: usize, cmdline: &str) -> Self {
        let boot = BootInfo::simulated(usable_mib, cpu_count, cmdline);
        assert!(boot.map_wf(), "boot memory map must be well formed");
        Machine {
            cores: (0..cpu_count)
                .map(|id| Core {
                    id,
                    meter: CycleMeter::new(),
                })
                .collect(),
            profile: CpuProfile::c220g5(),
            costs: CostModel::c220g5(),
            intc: InterruptController::new(),
            boot,
        }
    }

    /// Mutable access to a core's meter.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range core id.
    pub fn meter(&mut self, core: usize) -> &mut CycleMeter {
        &mut self.cores[core].meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_produces_requested_cores() {
        let m = Machine::boot_c220g5(64, 4, "");
        assert_eq!(m.cores.len(), 4);
        assert_eq!(m.cores[3].id, 3);
        assert_eq!(m.profile.freq_hz, 2_200_000_000);
    }

    #[test]
    fn interrupt_priority_order() {
        let mut ic = InterruptController::new();
        ic.raise(40);
        ic.raise(33);
        assert_eq!(ic.ack(), Some(33));
        assert_eq!(ic.ack(), Some(40));
        assert_eq!(ic.ack(), None);
    }

    #[test]
    fn masked_vectors_not_delivered() {
        let mut ic = InterruptController::new();
        ic.raise(33);
        ic.mask(33);
        assert_eq!(ic.ack(), None);
        assert!(ic.is_pending(33), "pending survives masking");
        ic.unmask(33);
        assert_eq!(ic.ack(), Some(33));
        assert!(!ic.is_pending(33));
    }

    #[test]
    fn meters_are_per_core() {
        let mut m = Machine::boot_c220g5(64, 2, "");
        m.meter(0).charge(100);
        assert_eq!(m.cores[0].meter.now(), 100);
        assert_eq!(m.cores[1].meter.now(), 0);
    }
}
