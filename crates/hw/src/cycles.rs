//! Cycle accounting: per-core meters and the calibrated cost model.
//!
//! The paper's performance evaluation (§6.4–6.6) reports cycle counts and
//! throughput measured on CloudLab c220g5 nodes (2× Intel Xeon Silver 4114,
//! 2.20 GHz). In this reproduction the kernel and drivers execute for real,
//! but time is *simulated*: each operation charges a cost to the executing
//! core's [`CycleMeter`], and throughput/latency are derived from the
//! accumulated cycles. The [`CostModel`] holds the per-operation constants,
//! calibrated so the modeled Atmosphere paths land on the paper's absolute
//! numbers (e.g. IPC call/reply = 1058 cycles, map-a-page = 1984 cycles,
//! Table 3) — the *relative* shape between configurations then follows from
//! execution, not from hard-coded results.

/// A monotone cycle counter for one simulated core.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleMeter {
    cycles: u64,
}

impl CycleMeter {
    /// A meter at cycle zero.
    pub const fn new() -> Self {
        CycleMeter { cycles: 0 }
    }

    /// Charges `cost` cycles of work.
    pub fn charge(&mut self, cost: u64) {
        self.cycles += cost;
    }

    /// Current cycle count.
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Cycles elapsed since `start`.
    ///
    /// # Panics
    ///
    /// Panics when `start` is in the future (meters are monotone).
    pub fn since(&self, start: u64) -> u64 {
        assert!(start <= self.cycles, "CycleMeter is monotone");
        self.cycles - start
    }

    /// Resets the meter to zero (between benchmark runs).
    pub fn reset(&mut self) {
        self.cycles = 0;
    }

    /// Advances this meter to at least `other`'s time (used when two cores
    /// synchronize through shared memory: the reader cannot observe data
    /// from the writer's future).
    pub fn sync_to(&mut self, other: u64) {
        self.cycles = self.cycles.max(other);
    }
}

/// A CPU profile: frequency and hardware thread count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Core frequency in Hz.
    pub freq_hz: u64,
    /// Hardware threads available.
    pub threads: usize,
    /// Single-thread performance relative to the c220g5 Xeon Silver 4114
    /// (used by the verification-time model: a modern laptop core is much
    /// faster than the 2017 server core).
    pub single_thread_speedup: f64,
}

impl CpuProfile {
    /// CloudLab c220g5: 2× Intel Xeon Silver 4114, 10 cores each, 2.20 GHz
    /// (the paper's measurement machine, §6).
    pub const fn c220g5() -> Self {
        CpuProfile {
            name: "c220g5 (Xeon Silver 4114, 2.20 GHz)",
            freq_hz: 2_200_000_000,
            threads: 20,
            single_thread_speedup: 1.0,
        }
    }

    /// A modern laptop with an Intel i9-13900HX (§6.1: full verification in
    /// 15 s on 32 threads, 47 s on one).
    pub const fn laptop_i9_13900hx() -> Self {
        CpuProfile {
            name: "laptop (i9-13900HX)",
            freq_hz: 5_400_000_000,
            threads: 32,
            single_thread_speedup: 4.45,
        }
    }

    /// Converts a cycle count on this profile to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Converts an event count and elapsed cycles to events per second.
    pub fn throughput(&self, events: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        events as f64 * self.freq_hz as f64 / cycles as f64
    }
}

/// Per-operation cycle costs for the Atmosphere kernel paths.
///
/// Calibration targets (paper Table 3, §6.4–6.5, on c220g5):
///
/// * IPC call/reply round trip = 2 one-way IPC crossings = **1058** cycles;
/// * `mmap` of one 4 KiB page = **1984** cycles;
/// * ixgbe driver per-packet descriptor work small enough that a statically
///   linked driver reaches 10 GbE line rate (14.2 Mpps) at batch 32.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Syscall entry trampoline (`sysenter`, register save, big-lock entry).
    pub syscall_entry: u64,
    /// Syscall exit trampoline (register restore, `sysexit`).
    pub syscall_exit: u64,
    /// Same-address-space thread switch (scheduler + register state).
    pub thread_switch: u64,
    /// Cross-address-space switch (CR3 reload + TLB refill, amortized).
    pub addr_space_switch: u64,
    /// Endpoint queue manipulation (enqueue/dequeue a waiting thread).
    pub endpoint_queue_op: u64,
    /// Scalar IPC message transfer (register payload).
    pub ipc_transfer: u64,
    /// Transferring a page or endpoint reference through IPC.
    pub ipc_cap_transfer: u64,
    /// In-kernel body of a fastpath IPC handoff: payload move by
    /// permission transfer plus the direct `current` switch, with no
    /// endpoint queue traffic and no run-queue round trip. Strictly
    /// smaller than `endpoint_queue_op + ipc_transfer + thread_switch`
    /// (= 280), the slow rendezvous body it replaces.
    pub ipc_fastpath: u64,
    /// 4 KiB page allocation (free-list pop + page-array state update).
    pub page_alloc_4k: u64,
    /// 4 KiB page free (free-list push + state update).
    pub page_free_4k: u64,
    /// Reading one page-table level during a walk.
    pub pt_level_read: u64,
    /// Writing one page-table entry (including verification-visible
    /// bookkeeping of the abstract map).
    pub pt_level_write: u64,
    /// Allocating and linking an intermediate page-table level.
    pub pt_level_alloc: u64,
    /// Container quota accounting on allocate/free.
    pub quota_account: u64,
    /// Page-array metadata state transition (free→mapped etc.).
    pub page_state_update: u64,
    /// `invlpg` + shootdown bookkeeping for one page.
    pub tlb_invalidate: u64,
    /// Reading the L3→L2→L1 chain from the walk cache during a batched
    /// map/unmap: the chain was resolved in full for the first page of the
    /// 2 MiB-aligned run, so subsequent pages in the same L1 table pay one
    /// cached lookup instead of `3 × pt_level_read`.
    pub pt_walk_cached_read: u64,
    /// Writing one L1 entry as part of a contiguous fill (the table frame
    /// is hot in cache and the verification-visible bookkeeping is
    /// amortized over the run). Strictly cheaper than `pt_level_write`.
    pub pt_fill_write: u64,
    /// Page-array state transition amortized over a batched run (the
    /// metadata cache line is already exclusive). Strictly cheaper than
    /// `page_state_update`.
    pub page_state_update_batch: u64,
    /// One deferred-shootdown flush: a single broadcast IPI + full-range
    /// invalidation covering every queued page, charged once per syscall
    /// epilogue instead of one `tlb_invalidate` per page.
    pub tlb_shootdown_batch: u64,
    /// Argument validation performed once per memory-management syscall.
    pub syscall_validate: u64,
    /// Shared-memory ring buffer enqueue or dequeue of one descriptor.
    pub ring_op: u64,
    /// Copying one cache line (64 B) between buffers.
    pub copy_cacheline: u64,
    /// Heap allocation of a packet-sized buffer (allocator fast path +
    /// first-touch). Charged by the *cloning* network datapath for every
    /// received frame; the zero-copy pool path never pays it — its slots
    /// are preallocated once at pool construction.
    pub heap_alloc: u64,
    /// Kernel-side handling of one block-I/O submission-queue entry on
    /// the batched path: read the SQE, translate the pinned buffer's
    /// IOVA through the IOMMU tables, post the NVMe command. Strictly
    /// cheaper than the per-I/O syscall-per-command baseline, which
    /// re-enters the kernel and re-validates for every command.
    pub blk_sqe: u64,
    /// Kernel-side handling of one completion-queue entry on the
    /// batched reap path: read the CQE, match the cookie, retire the
    /// command.
    pub blk_cqe: u64,
    /// One SQ-tail (or CQ-head) doorbell write to the device, charged
    /// once per batch rather than once per command.
    pub blk_doorbell: u64,
}

impl CostModel {
    /// The calibrated model for the c220g5 (see struct docs).
    pub const fn c220g5() -> Self {
        CostModel {
            syscall_entry: 140,
            syscall_exit: 109,
            thread_switch: 190,
            addr_space_switch: 460,
            endpoint_queue_op: 38,
            ipc_transfer: 52,
            ipc_cap_transfer: 150,
            ipc_fastpath: 110,
            page_alloc_4k: 450,
            page_free_4k: 260,
            pt_level_read: 35,
            pt_level_write: 420,
            pt_level_alloc: 600,
            quota_account: 90,
            page_state_update: 260,
            tlb_invalidate: 160,
            pt_walk_cached_read: 12,
            pt_fill_write: 180,
            page_state_update_batch: 90,
            tlb_shootdown_batch: 420,
            syscall_validate: 250,
            ring_op: 35,
            copy_cacheline: 14,
            heap_alloc: 120,
            blk_sqe: 95,
            blk_cqe: 70,
            blk_doorbell: 90,
        }
    }

    /// One-way IPC crossing: entry + queue + payload + switch + exit.
    ///
    /// Two of these form the call/reply round trip measured in Table 3:
    /// `2 × 529 = 1058` cycles.
    pub const fn ipc_one_way(&self) -> u64 {
        self.syscall_entry
            + self.endpoint_queue_op
            + self.ipc_transfer
            + self.thread_switch
            + self.syscall_exit
    }

    /// One-way fastpath IPC crossing: entry + direct handoff + exit.
    ///
    /// Two of these form the fastpath call/reply-recv round trip:
    /// `2 × (140 + 110 + 109) = 718` cycles, 32% below the slow
    /// rendezvous round trip of 1058.
    pub const fn ipc_fastpath_one_way(&self) -> u64 {
        self.syscall_entry + self.ipc_fastpath + self.syscall_exit
    }

    /// Cost of mapping one 4 KiB page into an existing address space
    /// (intermediate levels already present): the Table 3 "map a page" row.
    ///
    /// `140 + 109 + 250 + 450 + 90 + 3×35 + 420 + 260 + 160 = 1984`.
    pub const fn map_page_existing_tables(&self) -> u64 {
        self.syscall_entry
            + self.syscall_exit
            + self.syscall_validate
            + self.page_alloc_4k
            + self.quota_account
            + 3 * self.pt_level_read
            + self.pt_level_write
            + self.page_state_update
            + self.tlb_invalidate
    }

    /// Batched-fill body for the first page of a 2 MiB-aligned run: the
    /// walk is resolved in full (and cached) and the leaf written at the
    /// uncached price. The TLB charge is deferred to the epilogue flush.
    pub const fn map_fill_first_page(&self) -> u64 {
        self.page_alloc_4k + 3 * self.pt_level_read + self.pt_level_write + self.page_state_update
    }

    /// Batched-fill body for the 2nd..Nth page of a run sharing the first
    /// page's L1 table: one walk-cache lookup, one hot-line entry write,
    /// one amortized state update. `450 + 12 + 180 + 90 = 732`, strictly
    /// below the 1485-cycle per-page body it replaces.
    pub const fn map_fill_next_page(&self) -> u64 {
        self.page_alloc_4k
            + self.pt_walk_cached_read
            + self.pt_fill_write
            + self.page_state_update_batch
    }

    /// Batched-unmap body for a page whose L1 chain is already cached.
    pub const fn unmap_fill_page(&self) -> u64 {
        self.pt_walk_cached_read + self.pt_fill_write + self.page_state_update_batch
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::c220g5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_monotonically() {
        let mut m = CycleMeter::new();
        m.charge(10);
        m.charge(5);
        assert_eq!(m.now(), 15);
        assert_eq!(m.since(10), 5);
    }

    #[test]
    fn meter_sync_to_takes_max() {
        let mut m = CycleMeter::new();
        m.charge(10);
        m.sync_to(25);
        assert_eq!(m.now(), 25);
        m.sync_to(5);
        assert_eq!(m.now(), 25, "sync never rewinds");
    }

    #[test]
    fn calibration_ipc_call_reply_matches_table3() {
        let c = CostModel::c220g5();
        assert_eq!(2 * c.ipc_one_way(), 1058, "Table 3: Atmosphere call/reply");
    }

    #[test]
    fn fastpath_body_is_strictly_cheaper_than_rendezvous_body() {
        let c = CostModel::c220g5();
        let slow_body = c.endpoint_queue_op + c.ipc_transfer + c.thread_switch;
        assert!(
            c.ipc_fastpath < slow_body,
            "{} vs {slow_body}",
            c.ipc_fastpath
        );
        // Acceptance target: the fastpath round trip saves >= 30% of the
        // slow call/reply round trip.
        let fast_rt = 2 * c.ipc_fastpath_one_way();
        let slow_rt = 2 * c.ipc_one_way();
        assert!(
            fast_rt * 10 <= slow_rt * 7,
            "fastpath round trip {fast_rt} must be <= 70% of {slow_rt}"
        );
    }

    #[test]
    fn calibration_map_page_matches_table3() {
        let c = CostModel::c220g5();
        assert_eq!(
            c.map_page_existing_tables(),
            1984,
            "Table 3: Atmosphere map a page"
        );
    }

    #[test]
    fn calibration_cloning_datapath_overhead_dominates_copies() {
        let c = CostModel::c220g5();
        // The per-frame overhead the zero-copy pool eliminates: one heap
        // allocation plus a 64-byte frame copy (one cache line). It must
        // dwarf the ring descriptor transfer that replaces it, or the
        // zero-copy claim would be hollow.
        assert_eq!(c.heap_alloc, 120, "cloning-path allocation cost");
        assert!(c.heap_alloc + c.copy_cacheline > 3 * c.ring_op);
        // And the calibrated anchors must not drift when this field is
        // added.
        assert_eq!(2 * c.ipc_one_way(), 1058);
        assert_eq!(c.map_page_existing_tables(), 1984);
    }

    #[test]
    fn calibration_batched_vm_costs_are_amortized() {
        let c = CostModel::c220g5();
        // Each amortized constant is strictly below the per-page cost it
        // replaces, and the batch flush sits between one invlpg and a full
        // per-page shootdown of a 512-page run.
        assert!(c.pt_walk_cached_read < 3 * c.pt_level_read);
        assert!(c.pt_fill_write < c.pt_level_write);
        assert!(c.page_state_update_batch < c.page_state_update);
        assert!(c.tlb_invalidate < c.tlb_shootdown_batch);
        assert!(c.tlb_shootdown_batch < 512 * c.tlb_invalidate);
        // The first fill of a run pays the full walk; later fills are
        // strictly cheaper.
        assert!(c.map_fill_next_page() < c.map_fill_first_page() + c.tlb_invalidate);
    }

    #[test]
    fn calibration_batched_512_page_mmap_saves_at_least_40_percent() {
        let c = CostModel::c220g5();
        let per_page_body = c.page_alloc_4k
            + c.quota_account
            + 3 * c.pt_level_read
            + c.pt_level_write
            + c.page_state_update
            + c.tlb_invalidate;
        let wrap = c.syscall_entry + c.syscall_exit + c.syscall_validate;
        let per_page_total = wrap + 512 * per_page_body;
        let batched_total = wrap
            + c.quota_account
            + c.map_fill_first_page()
            + 511 * c.map_fill_next_page()
            + c.tlb_shootdown_batch;
        assert!(
            batched_total * 10 <= per_page_total * 6,
            "batched 512-page mmap {batched_total} must be <= 60% of {per_page_total}"
        );
        // And the per-page body itself is untouched: Table 3 anchors hold.
        assert_eq!(wrap + per_page_body, 1984);
    }

    #[test]
    fn calibration_blk_ring_costs_amortize_the_doorbell() {
        let c = CostModel::c220g5();
        // A batched SQE/CQE crossing must be strictly cheaper than the
        // per-command syscall wrap it replaces (entry + validate + exit),
        // and the doorbell must be worth amortizing: at batch 32 the
        // per-command doorbell share collapses below one ring op.
        assert!(c.blk_sqe + c.blk_cqe < c.syscall_entry + c.syscall_validate + c.syscall_exit);
        assert!(c.blk_doorbell / 32 < c.ring_op);
        // The calibrated anchors must not drift when these fields are
        // added.
        assert_eq!(2 * c.ipc_one_way(), 1058);
        assert_eq!(c.map_page_existing_tables(), 1984);
    }

    #[test]
    fn profile_throughput_conversion() {
        let p = CpuProfile::c220g5();
        // 1058 cycles per event at 2.2 GHz ≈ 2.08 M events/s.
        let t = p.throughput(1, 1058);
        assert!((t - 2_079_395.0).abs() < 1000.0, "{t}");
        assert_eq!(p.throughput(1, 0), 0.0);
    }

    #[test]
    fn profile_seconds_conversion() {
        let p = CpuProfile::c220g5();
        assert!((p.cycles_to_seconds(2_200_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn since_future_start_panics() {
        let m = CycleMeter::new();
        let _ = m.since(1);
    }
}
