//! Virtual and physical addresses, page sizes and index arithmetic.
//!
//! Atmosphere manages memory at page granularity — 4 KiB base pages plus
//! 2 MiB and 1 GiB superpages (§4.2). Virtual addresses follow the x86-64
//! 4-level scheme: bits 47..39 index PML4, 38..30 the PDPT, 29..21 the PD,
//! and 20..12 the PT; bit 47 is sign-extended (canonical form).

use std::fmt;

/// Size of a base page: 4 KiB.
pub const PAGE_SIZE_4K: usize = 4096;
/// Size of a 2 MiB superpage.
pub const PAGE_SIZE_2M: usize = 512 * PAGE_SIZE_4K;
/// Size of a 1 GiB superpage.
pub const PAGE_SIZE_1G: usize = 512 * PAGE_SIZE_2M;

/// Entries per page-table level.
pub const ENTRIES_PER_TABLE: usize = 512;

/// A virtual address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub usize);

/// A physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub usize);

impl VAddr {
    /// Creates a virtual address.
    pub const fn new(addr: usize) -> Self {
        VAddr(addr)
    }

    /// Raw value.
    pub const fn as_usize(self) -> usize {
        self.0
    }

    /// `true` when the address is in x86-64 canonical form (bits 63..48
    /// replicate bit 47).
    pub fn is_canonical(self) -> bool {
        let upper = self.0 >> 47;
        upper == 0 || upper == (1 << 17) - 1
    }

    /// `true` when aligned to `align` (a power of two).
    pub fn is_aligned(self, align: usize) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Rounds down to the nearest `align` boundary.
    pub fn align_down(self, align: usize) -> VAddr {
        debug_assert!(align.is_power_of_two());
        VAddr(self.0 & !(align - 1))
    }

    /// PML4 index (bits 47..39).
    pub fn l4_index(self) -> usize {
        (self.0 >> 39) & 0x1ff
    }

    /// PDPT index (bits 38..30).
    pub fn l3_index(self) -> usize {
        (self.0 >> 30) & 0x1ff
    }

    /// PD index (bits 29..21).
    pub fn l2_index(self) -> usize {
        (self.0 >> 21) & 0x1ff
    }

    /// PT index (bits 20..12).
    pub fn l1_index(self) -> usize {
        (self.0 >> 12) & 0x1ff
    }

    /// Offset within a 4 KiB page.
    pub fn page_offset_4k(self) -> usize {
        self.0 & (PAGE_SIZE_4K - 1)
    }

    /// Adds a byte offset.
    pub fn offset(self, bytes: usize) -> VAddr {
        VAddr(self.0 + bytes)
    }
}

impl PAddr {
    /// Creates a physical address.
    pub const fn new(addr: usize) -> Self {
        PAddr(addr)
    }

    /// Raw value.
    pub const fn as_usize(self) -> usize {
        self.0
    }

    /// `true` when aligned to `align` (a power of two).
    pub fn is_aligned(self, align: usize) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Adds a byte offset.
    pub fn offset(self, bytes: usize) -> PAddr {
        PAddr(self.0 + bytes)
    }
}

/// Rebuilds a canonical virtual address from the four table indices
/// (the paper's `index2va((l4i, l3i, l2i, l1i))`).
///
/// # Panics
///
/// Panics when any index is ≥ 512.
pub fn index2va(l4i: usize, l3i: usize, l2i: usize, l1i: usize) -> VAddr {
    assert!(l4i < 512 && l3i < 512 && l2i < 512 && l1i < 512);
    let raw = (l4i << 39) | (l3i << 30) | (l2i << 21) | (l1i << 12);
    // Sign-extend bit 47 to produce a canonical address.
    if l4i >= 256 {
        VAddr(raw | !0usize << 48)
    } else {
        VAddr(raw)
    }
}

/// A contiguous range of 4 KiB virtual pages (the `va_range` argument of
/// `mmap`, Listing 1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VaRange4K {
    /// First page's virtual address (4 KiB aligned).
    pub base: VAddr,
    /// Number of 4 KiB pages.
    pub len: usize,
}

impl VaRange4K {
    /// Creates a range; the base must be 4 KiB-aligned and canonical, and
    /// the range must not wrap.
    pub fn new(base: VAddr, len: usize) -> Option<Self> {
        if !base.is_aligned(PAGE_SIZE_4K) || !base.is_canonical() {
            return None;
        }
        let bytes = len.checked_mul(PAGE_SIZE_4K)?;
        let end = base.0.checked_add(bytes)?;
        if !VAddr(end).is_canonical() && end != base.0 {
            return None;
        }
        Some(VaRange4K { base, len })
    }

    /// Virtual address of page `i` of the range.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    pub fn page(&self, i: usize) -> VAddr {
        assert!(i < self.len, "page index out of range");
        self.base.offset(i * PAGE_SIZE_4K)
    }

    /// `true` when `va` is one of the page addresses in the range.
    pub fn contains(&self, va: VAddr) -> bool {
        if va.0 < self.base.0 || !va.is_aligned(PAGE_SIZE_4K) {
            return false;
        }
        let delta = (va.0 - self.base.0) / PAGE_SIZE_4K;
        delta < self.len
    }

    /// Iterator over the page addresses.
    pub fn iter(&self) -> impl Iterator<Item = VAddr> + '_ {
        (0..self.len).map(move |i| self.page(i))
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAddr({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_nest() {
        assert_eq!(PAGE_SIZE_2M, 2 * 1024 * 1024);
        assert_eq!(PAGE_SIZE_1G, 1024 * 1024 * 1024);
        assert_eq!(PAGE_SIZE_2M / PAGE_SIZE_4K, 512);
        assert_eq!(PAGE_SIZE_1G / PAGE_SIZE_2M, 512);
    }

    #[test]
    fn index_extraction_round_trips() {
        for &(l4, l3, l2, l1) in &[
            (0, 0, 0, 0),
            (1, 2, 3, 4),
            (255, 511, 511, 511),
            (256, 0, 0, 1),
        ] {
            let va = index2va(l4, l3, l2, l1);
            assert!(va.is_canonical(), "{va:?} not canonical");
            assert_eq!(va.l4_index(), l4);
            assert_eq!(va.l3_index(), l3);
            assert_eq!(va.l2_index(), l2);
            assert_eq!(va.l1_index(), l1);
        }
    }

    #[test]
    fn canonical_form_checks() {
        assert!(VAddr(0x0000_7fff_ffff_f000).is_canonical());
        assert!(VAddr(0xffff_8000_0000_0000).is_canonical());
        assert!(!VAddr(0x0000_8000_0000_0000).is_canonical());
        assert!(!VAddr(0x1234_0000_0000_0000).is_canonical());
    }

    #[test]
    fn alignment_helpers() {
        let va = VAddr(0x1234);
        assert!(!va.is_aligned(PAGE_SIZE_4K));
        assert_eq!(va.align_down(PAGE_SIZE_4K), VAddr(0x1000));
        assert!(VAddr(0x20_0000).is_aligned(PAGE_SIZE_2M));
    }

    #[test]
    fn va_range_pages_and_contains() {
        let r = VaRange4K::new(VAddr(0x40_0000), 3).unwrap();
        assert_eq!(r.page(0), VAddr(0x40_0000));
        assert_eq!(r.page(2), VAddr(0x40_2000));
        assert!(r.contains(VAddr(0x40_1000)));
        assert!(!r.contains(VAddr(0x40_3000)));
        assert!(
            !r.contains(VAddr(0x40_0800)),
            "unaligned addresses are not pages"
        );
        assert!(!r.contains(VAddr(0x3f_f000)));
    }

    #[test]
    fn va_range_rejects_bad_bases() {
        assert!(VaRange4K::new(VAddr(0x123), 1).is_none(), "unaligned");
        assert!(
            VaRange4K::new(VAddr(0x0000_8000_0000_0000), 1).is_none(),
            "non-canonical"
        );
        assert!(
            VaRange4K::new(VAddr(0x1000), usize::MAX).is_none(),
            "overflow"
        );
    }

    #[test]
    fn va_range_iterates_in_order() {
        let r = VaRange4K::new(VAddr(0x1000), 2).unwrap();
        let pages: Vec<_> = r.iter().collect();
        assert_eq!(pages, vec![VAddr(0x1000), VAddr(0x2000)]);
    }

    #[test]
    fn page_offset() {
        assert_eq!(VAddr(0x1234).page_offset_4k(), 0x234);
    }
}
