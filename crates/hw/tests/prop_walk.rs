//! Randomized check of the trusted MMU specification: for randomly
//! generated table hierarchies, the exhaustive enumeration and the
//! pointwise 4-level walk agree exactly — `enumerate_mappings` finds all
//! and only the addresses `walk_4level` resolves. Randomness comes from
//! the deterministic in-repo [`XorShift64Star`] generator.

use atmo_hw::addr::{index2va, PAddr, VAddr, ENTRIES_PER_TABLE};
use atmo_hw::paging::{enumerate_mappings, walk_4level, EntryFlags, PageEntry, PhysFrameSource};
use atmo_spec::XorShift64Star;
use std::collections::BTreeMap;

#[derive(Default)]
struct ToyMem {
    tables: BTreeMap<usize, [u64; ENTRIES_PER_TABLE]>,
}

impl PhysFrameSource for ToyMem {
    fn read_table(&self, frame: PAddr) -> Option<[u64; ENTRIES_PER_TABLE]> {
        self.tables.get(&frame.as_usize()).copied()
    }
}

/// A mapping request: indices at each level plus the kind of leaf.
#[derive(Clone, Debug)]
struct Entry {
    l4: usize,
    l3: usize,
    l2: usize,
    l1: usize,
    size: u8, // 0 = 4K, 1 = 2M, 2 = 1G
    writable: bool,
}

fn random_entry(rng: &mut XorShift64Star) -> Entry {
    Entry {
        l4: rng.below(8),
        l3: rng.below(8),
        l2: rng.below(8),
        l1: rng.below(8),
        size: rng.below(3) as u8,
        writable: rng.chance(1, 2),
    }
}

/// Builds a table hierarchy from the requests (first-writer-wins per
/// slot), returning the root.
fn build(mem: &mut ToyMem, entries: &[Entry]) -> PAddr {
    let root = 0x1000usize;
    let mut next_frame = 0x2000usize;
    mem.tables.entry(root).or_insert([0; ENTRIES_PER_TABLE]);

    for e in entries {
        let flags = EntryFlags {
            present: true,
            writable: e.writable,
            user: true,
            huge: false,
            no_execute: false,
        };
        let huge = EntryFlags {
            huge: true,
            ..flags
        };
        let leaf_frame = |f: usize, align: usize| f & !(align - 1);

        // L4 slot.
        let l4e = PageEntry(mem.tables[&root][e.l4]);
        let l3_frame = if l4e.is_present() {
            l4e.frame().as_usize()
        } else {
            let f = next_frame;
            next_frame += 0x1000;
            mem.tables.insert(f, [0; ENTRIES_PER_TABLE]);
            mem.tables.get_mut(&root).unwrap()[e.l4] = PageEntry::encode(PAddr::new(f), flags).0;
            f
        };
        // 1 GiB leaf at L3.
        if e.size == 2 {
            let slot = &mut mem.tables.get_mut(&l3_frame).unwrap()[e.l3];
            if *slot == 0 {
                *slot = PageEntry::encode(
                    PAddr::new(leaf_frame(0x40_0000_0000 + e.l3 * (1 << 30), 1 << 30)),
                    huge,
                )
                .0;
            }
            continue;
        }
        let l3e = PageEntry(mem.tables[&l3_frame][e.l3]);
        if l3e.is_present() && l3e.is_huge() {
            continue; // occupied by a superpage
        }
        let l2_frame = if l3e.is_present() {
            l3e.frame().as_usize()
        } else {
            let f = next_frame;
            next_frame += 0x1000;
            mem.tables.insert(f, [0; ENTRIES_PER_TABLE]);
            mem.tables.get_mut(&l3_frame).unwrap()[e.l3] =
                PageEntry::encode(PAddr::new(f), flags).0;
            f
        };
        // 2 MiB leaf at L2.
        if e.size == 1 {
            let slot = &mut mem.tables.get_mut(&l2_frame).unwrap()[e.l2];
            if *slot == 0 {
                *slot = PageEntry::encode(
                    PAddr::new(leaf_frame(0x8000_0000 + e.l2 * (2 << 20), 2 << 20)),
                    huge,
                )
                .0;
            }
            continue;
        }
        let l2e = PageEntry(mem.tables[&l2_frame][e.l2]);
        if l2e.is_present() && l2e.is_huge() {
            continue;
        }
        let l1_frame = if l2e.is_present() {
            l2e.frame().as_usize()
        } else {
            let f = next_frame;
            next_frame += 0x1000;
            mem.tables.insert(f, [0; ENTRIES_PER_TABLE]);
            mem.tables.get_mut(&l2_frame).unwrap()[e.l2] =
                PageEntry::encode(PAddr::new(f), flags).0;
            f
        };
        let slot = &mut mem.tables.get_mut(&l1_frame).unwrap()[e.l1];
        if *slot == 0 {
            *slot = PageEntry::encode(PAddr::new(0x10_0000 + next_frame), flags).0;
            next_frame += 0x1000;
        }
    }
    PAddr::new(root)
}

#[test]
fn enumeration_agrees_with_pointwise_walks() {
    for case in 0..48u64 {
        let mut rng = XorShift64Star::new(0x5eed_6001 + case);
        let n = rng.range(1, 24);
        let entries: Vec<Entry> = (0..n).map(|_| random_entry(&mut rng)).collect();
        let mut mem = ToyMem::default();
        let root = build(&mut mem, &entries);
        let all = enumerate_mappings(&mem, root);

        // Direction 1: every enumerated mapping resolves identically.
        for (va, resolved) in &all {
            assert_eq!(walk_4level(&mem, root, *va), Some(*resolved), "seed {case}");
        }
        // Direction 2: every requested slot that resolves is enumerated.
        for e in &entries {
            let va = index2va(e.l4, e.l3, e.l2, e.l1);
            if let Some(r) = walk_4level(&mem, root, va) {
                // The enumeration reports the mapping at its leaf-aligned
                // base address.
                let base = VAddr(va.as_usize() & !(r.size - 1));
                assert!(
                    all.iter().any(|(v, m)| *v == base && *m == r),
                    "seed {case}: missing {va:?} (base {base:?})"
                );
            }
        }
        // No duplicates in the enumeration.
        let mut seen = std::collections::BTreeSet::new();
        for (va, _) in &all {
            assert!(seen.insert(va.as_usize()), "seed {case}: duplicate {va:?}");
        }
    }
}
