//! Node replication: per-CPU replicas over a shared operation log.
//!
//! NrOS-style node replication turns a lock-serialized data structure
//! into one *replica per CPU* kept consistent by a shared, append-only
//! operation log:
//!
//! * **Updates** append their operation to the log (through a
//!   flat-combining appender — one CPU batches the waiting ops of its
//!   peers, amortizing log contention) and replay it on the local
//!   replica before returning.
//! * **Reads** replay the local replica up to the log's published tail
//!   and then answer from local state — no shared lock is held while the
//!   answer is computed, so readers on different CPUs scale
//!   independently.
//!
//! The correctness story is *replica linearization*: every replica at
//! completion tail `t` equals the fold of the abstract op sequence
//! `[0, t)` over the initial state ([`NodeReplicated::nr_wf`]). The
//! kernel layers a second, stop-the-world check on top: at epoch
//! boundaries each replica is compared bit-for-bit against a fresh
//! projection of the authoritative locked state.
//!
//! Lock discipline: every mutex in this crate (log interior, per-CPU
//! pending slots, combiner, replicas, checkpoint) is a **leaf** — no
//! code path acquires any other lock while holding one, so the layer
//! can be entered from under any kernel lock domain without extending
//! the lock order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use atmo_spec::harness::{check, VerifResult};
use atmo_spec::lock_recovering;

/// A replicated state machine: the state type plus its deterministic
/// op application. Applying the same op sequence to two clones of the
/// same initial state must yield equal states — that determinism is
/// exactly what [`NodeReplicated::nr_wf`] checks.
pub trait NrDispatch: Clone + PartialEq + std::fmt::Debug {
    /// The log entry type.
    type Op: Clone + std::fmt::Debug;
    /// Applies one operation to this replica's state.
    fn apply(&mut self, op: &Self::Op);
}

/// Outcome of an update batch, for the caller's trace counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppendStats {
    /// Ops this call enqueued (and that are now durably in the log).
    pub appended: u64,
    /// Flat-combining flushes this CPU performed (0 when a peer
    /// combined our ops for us).
    pub combine_batches: u64,
    /// Ops replayed onto the local replica before returning.
    pub replayed: u64,
}

/// Outcome of a read, for the caller's trace counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadStats {
    /// Ops replayed to bring the local replica to the tail.
    pub replayed: u64,
    /// The log tail the answer reflects (the read's linearization
    /// point: the value is never newer than this tail).
    pub tail: u64,
}

/// Interior of the log: ops since `base` (absolute index of `ops[0]`).
/// Bounded: once all replicas have replayed past a full chunk, the
/// prefix is folded into the replicas' shared checkpoint and dropped.
struct LogInner<Op> {
    base: u64,
    ops: Vec<Op>,
}

/// The shared operation log with a flat-combining appender.
pub struct OpLog<Op> {
    inner: Mutex<LogInner<Op>>,
    /// Published length (absolute). Readers replay up to this point.
    tail: AtomicU64,
    /// Per-CPU slots of ops waiting to be combined into the log.
    pending: Vec<Mutex<Vec<Op>>>,
    /// Held by the CPU currently draining every pending slot.
    combiner: Mutex<()>,
}

impl<Op: Clone> OpLog<Op> {
    fn new(ncpus: usize) -> Self {
        OpLog {
            inner: Mutex::new(LogInner {
                base: 0,
                ops: Vec::new(),
            }),
            tail: AtomicU64::new(0),
            pending: (0..ncpus).map(|_| Mutex::new(Vec::new())).collect(),
            combiner: Mutex::new(()),
        }
    }

    /// The published tail (total ops ever appended).
    pub fn tail(&self) -> u64 {
        self.tail.load(Ordering::Acquire)
    }

    /// Flat-combining append: publish `ops` in this CPU's slot, then
    /// either become the combiner (drain *every* slot, in CPU order,
    /// into the log) or wait for the current combiner to drain ours.
    fn append(&self, cpu: usize, ops: Vec<Op>) -> (u64, u64) {
        let n = ops.len() as u64;
        if n == 0 {
            return (0, 0);
        }
        lock_recovering(&self.pending[cpu]).extend(ops);
        loop {
            if let Ok(_g) = self.combiner.try_lock() {
                let drained = self.drain_all();
                let batches = u64::from(drained > 0);
                return (n, batches);
            }
            // A peer holds the combiner; it drains every slot including
            // ours. Once ours is empty, our ops are in the log.
            if lock_recovering(&self.pending[cpu]).is_empty() {
                return (n, 0);
            }
            std::hint::spin_loop();
        }
    }

    /// Drains every pending slot into the log (combiner lock held by
    /// the caller) and publishes the new tail. Returns ops drained.
    fn drain_all(&self) -> u64 {
        let mut inner = lock_recovering(&self.inner);
        let mut drained = 0u64;
        for slot in &self.pending {
            let mut s = lock_recovering(slot);
            drained += s.len() as u64;
            inner.ops.append(&mut s);
        }
        if drained > 0 {
            self.tail
                .store(inner.base + inner.ops.len() as u64, Ordering::Release);
        }
        drained
    }

    /// Applies `f` to the ops in `[from, to)` (absolute indices).
    ///
    /// # Panics
    ///
    /// Panics when the range reaches below the retained window — the
    /// garbage collector only drops prefixes every replica has replayed.
    fn replay_range(&self, from: u64, to: u64, mut f: impl FnMut(&Op)) -> u64 {
        if from >= to {
            return 0;
        }
        let inner = lock_recovering(&self.inner);
        assert!(
            from >= inner.base,
            "replay from {from} below retained base {}",
            inner.base
        );
        let lo = (from - inner.base) as usize;
        let hi = (to - inner.base) as usize;
        for op in &inner.ops[lo..hi] {
            f(op);
        }
        to - from
    }
}

/// One CPU's replica: the projected state plus the absolute log tail
/// it has replayed to (monotone).
struct ReplicaInner<S> {
    state: S,
    tail: u64,
}

/// Per-CPU replicas plus the log that keeps them consistent.
pub struct NodeReplicated<S: NrDispatch> {
    log: OpLog<S::Op>,
    replicas: Vec<Mutex<ReplicaInner<S>>>,
    /// The fold of `[0, base)`: the state every replica had at the
    /// log's retained base. `nr_wf` folds the retained suffix on top.
    checkpoint: Mutex<ReplicaInner<S>>,
    /// Retained-window bound: a GC pass runs when the log grows past
    /// this many ops (see [`Self::gc`]).
    capacity: usize,
}

/// Default retained-window bound for [`NodeReplicated::new`].
pub const DEFAULT_LOG_CAPACITY: usize = 8192;

impl<S: NrDispatch> NodeReplicated<S> {
    /// `ncpus` replicas, all starting from `init` with an empty log.
    pub fn new(ncpus: usize, init: S) -> Self {
        assert!(ncpus > 0, "at least one replica");
        NodeReplicated {
            log: OpLog::new(ncpus),
            replicas: (0..ncpus)
                .map(|_| {
                    Mutex::new(ReplicaInner {
                        state: init.clone(),
                        tail: 0,
                    })
                })
                .collect(),
            checkpoint: Mutex::new(ReplicaInner {
                state: init,
                tail: 0,
            }),
            capacity: DEFAULT_LOG_CAPACITY,
        }
    }

    /// Number of replicas.
    pub fn ncpus(&self) -> usize {
        self.replicas.len()
    }

    /// The log's published tail.
    pub fn tail(&self) -> u64 {
        self.log.tail()
    }

    /// The absolute tail `cpu`'s replica has replayed to.
    pub fn replica_tail(&self, cpu: usize) -> u64 {
        lock_recovering(&self.replicas[cpu]).tail
    }

    /// Update path: append `ops` through the flat combiner, then replay
    /// the local replica to the published tail (which covers the ops
    /// just appended) before returning.
    pub fn execute_mut(&self, cpu: usize, ops: Vec<S::Op>) -> AppendStats {
        let (appended, combine_batches) = self.log.append(cpu, ops);
        let replayed = self.sync(cpu);
        if appended > 0 {
            self.maybe_gc();
        }
        AppendStats {
            appended,
            combine_batches,
            replayed,
        }
    }

    /// Fire-and-forget update path: appends `ops` through the flat
    /// combiner *without* replaying the local replica. The kernel's
    /// writers use this — they computed their answer from the
    /// authoritative locked state, so the local replica can catch up
    /// on its next read instead of on the write's critical path.
    /// Returned stats carry `replayed == 0`. (The retained window can
    /// transiently exceed `capacity` while every replica lags — GC
    /// only folds prefixes all replicas have replayed — and shrinks
    /// again at the next read or [`sync_all`](Self::sync_all).)
    pub fn append(&self, cpu: usize, ops: Vec<S::Op>) -> AppendStats {
        let (appended, combine_batches) = self.log.append(cpu, ops);
        if appended > 0 {
            self.maybe_gc();
        }
        AppendStats {
            appended,
            combine_batches,
            replayed: 0,
        }
    }

    /// Read path: replay the local replica to the published tail, then
    /// answer from it. No shared lock is held while `f` runs — only the
    /// local replica's leaf mutex.
    pub fn execute_ro<R>(&self, cpu: usize, f: impl FnOnce(&S) -> R) -> (R, ReadStats) {
        let mut r = lock_recovering(&self.replicas[cpu]);
        let tail = self.log.tail();
        let from = r.tail;
        let state = &mut r.state;
        let replayed = self.log.replay_range(from, tail, |op| state.apply(op));
        r.tail = tail;
        (f(&r.state), ReadStats { replayed, tail })
    }

    /// Replays `cpu`'s replica to the published tail; returns the
    /// number of ops applied.
    pub fn sync(&self, cpu: usize) -> u64 {
        let mut r = lock_recovering(&self.replicas[cpu]);
        let tail = self.log.tail();
        let from = r.tail;
        let state = &mut r.state;
        let replayed = self.log.replay_range(from, tail, |op| state.apply(op));
        r.tail = tail;
        replayed
    }

    /// Replays every replica to the published tail (epoch boundaries,
    /// stop-the-world cross-checks). Returns total ops applied.
    pub fn sync_all(&self) -> u64 {
        (0..self.replicas.len()).map(|c| self.sync(c)).sum()
    }

    /// Runs `f` on `cpu`'s replica state *as is* (no replay) — the
    /// stale view, for stale-read bound tests.
    pub fn peek<R>(&self, cpu: usize, f: impl FnOnce(&S, u64) -> R) -> R {
        let r = lock_recovering(&self.replicas[cpu]);
        f(&r.state, r.tail)
    }

    /// Bounds the log: when the retained window exceeds `capacity`,
    /// folds the prefix every replica has already replayed into the
    /// checkpoint and drops it. The log stays O(capacity + lag of the
    /// slowest replica).
    fn maybe_gc(&self) {
        let inner_len = {
            let inner = lock_recovering(&self.log.inner);
            inner.ops.len()
        };
        if inner_len <= self.capacity {
            return;
        }
        let min_tail = (0..self.replicas.len())
            .map(|c| lock_recovering(&self.replicas[c]).tail)
            .min()
            .unwrap_or(0);
        let mut ck = lock_recovering(&self.checkpoint);
        if min_tail <= ck.tail {
            return;
        }
        let ck_tail = ck.tail;
        let state = &mut ck.state;
        self.log
            .replay_range(ck_tail, min_tail, |op| state.apply(op));
        ck.tail = min_tail;
        let mut inner = lock_recovering(&self.log.inner);
        let drop_n = (min_tail - inner.base) as usize;
        inner.ops.drain(..drop_n);
        inner.base = min_tail;
    }

    /// Replica linearization (`nr_wf`): every replica at tail `t`
    /// equals the fold of the abstract op sequence `[0, t)` — computed
    /// as the checkpoint (the fold of the collected prefix) plus the
    /// retained ops up to `t`. Also checks tail sanity: every replica
    /// tail is ≤ the published tail and ≥ the checkpoint tail.
    pub fn nr_wf(&self) -> VerifResult {
        let ck = lock_recovering(&self.checkpoint);
        let published = self.log.tail();
        check(
            ck.tail <= published,
            "nr_wf",
            format!("checkpoint tail {} beyond published {published}", ck.tail),
        )?;
        for cpu in 0..self.replicas.len() {
            let r = lock_recovering(&self.replicas[cpu]);
            check(
                r.tail <= published && r.tail >= ck.tail,
                "nr_wf",
                format!(
                    "replica {cpu} tail {} outside [{}, {published}]",
                    r.tail, ck.tail
                ),
            )?;
            let mut fold = ck.state.clone();
            let ck_tail = ck.tail;
            self.log.replay_range(ck_tail, r.tail, |op| fold.apply(op));
            check(
                fold == r.state,
                "nr_wf",
                format!(
                    "replica {cpu} at tail {} diverges from the fold of [0, {}): \
                     fold {:?} != replica {:?}",
                    r.tail, r.tail, fold, r.state
                ),
            )?;
        }
        Ok(())
    }

    /// Ops currently held in the retained log window (diagnostics and
    /// GC-bound tests).
    pub fn retained_ops(&self) -> usize {
        lock_recovering(&self.log.inner).ops.len()
    }

    /// The absolute tail the shared checkpoint has folded to (0 until
    /// the first GC pass).
    pub fn checkpoint_tail(&self) -> u64 {
        lock_recovering(&self.checkpoint).tail
    }

    /// The fold of the full op sequence `[0, tail)` — the abstract
    /// state every replica converges to once it replays everything.
    pub fn fold_to_tail(&self) -> S {
        let ck = lock_recovering(&self.checkpoint);
        let mut fold = ck.state.clone();
        let ck_tail = ck.tail;
        self.log
            .replay_range(ck_tail, self.log.tail(), |op| fold.apply(op));
        fold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter machine: `Add(n)` ops, state is the running sum plus
    /// the op count (so op *order and count* matter, not just the sum).
    #[derive(Clone, PartialEq, Eq, Debug, Default)]
    struct Sum {
        total: u64,
        ops: u64,
    }

    impl NrDispatch for Sum {
        type Op = u64;
        fn apply(&mut self, op: &u64) {
            self.total += *op;
            self.ops += 1;
        }
    }

    #[test]
    fn update_then_read_sees_own_write() {
        let nr = NodeReplicated::new(4, Sum::default());
        let stats = nr.execute_mut(1, vec![5, 7]);
        assert_eq!(stats.appended, 2);
        assert_eq!(stats.replayed, 2);
        let (v, rs) = nr.execute_ro(1, |s| s.total);
        assert_eq!(v, 12);
        assert_eq!(rs.replayed, 0);
        assert_eq!(rs.tail, 2);
    }

    #[test]
    fn peer_replica_catches_up_on_read() {
        let nr = NodeReplicated::new(4, Sum::default());
        nr.execute_mut(0, vec![1, 2, 3]);
        assert_eq!(nr.replica_tail(3), 0);
        let (v, rs) = nr.execute_ro(3, |s| s.total);
        assert_eq!(v, 6);
        assert_eq!(rs.replayed, 3);
        assert!(nr.nr_wf().is_ok());
    }

    #[test]
    fn stale_replica_never_ahead_of_replayed_tail() {
        let nr = NodeReplicated::new(2, Sum::default());
        nr.execute_mut(0, vec![10]);
        // CPU 1 has not replayed: its state reflects exactly tail 0.
        nr.peek(1, |s, tail| {
            assert_eq!(tail, 0);
            assert_eq!(*s, Sum::default());
        });
        nr.sync(1);
        nr.peek(1, |s, tail| {
            assert_eq!(tail, 1);
            assert_eq!(s.total, 10);
        });
    }

    #[test]
    fn gc_bounds_the_log_and_preserves_the_fold() {
        let mut nr = NodeReplicated::new(2, Sum::default());
        nr.capacity = 64;
        for i in 0..1000u64 {
            nr.execute_mut((i % 2) as usize, vec![i]);
            if i % 97 == 0 {
                nr.sync_all();
            }
        }
        nr.sync_all();
        nr.maybe_gc();
        let retained = lock_recovering(&nr.log.inner).ops.len();
        assert!(retained <= 64 + 1, "log not bounded: {retained} retained");
        assert!(nr.nr_wf().is_ok(), "{:?}", nr.nr_wf());
        let fold = nr.fold_to_tail();
        assert_eq!(fold.total, (0..1000).sum::<u64>());
        assert_eq!(fold.ops, 1000);
    }

    #[test]
    fn nr_wf_refutes_a_diverged_replica() {
        let nr = NodeReplicated::new(2, Sum::default());
        nr.execute_mut(0, vec![1]);
        nr.sync_all();
        lock_recovering(&nr.replicas[1]).state.total = 999;
        assert!(nr.nr_wf().is_err());
    }

    #[test]
    fn concurrent_appends_and_reads_linearize() {
        use std::sync::Arc;
        let nr = Arc::new(NodeReplicated::new(4, Sum::default()));
        let mut handles = Vec::new();
        for cpu in 0..4usize {
            let nr = Arc::clone(&nr);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    nr.execute_mut(cpu, vec![i]);
                    if i % 7 == 0 {
                        let (_, rs) = nr.execute_ro(cpu, |s| s.ops);
                        assert!(rs.tail >= i);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(nr.tail(), 1000);
        nr.sync_all();
        assert!(nr.nr_wf().is_ok(), "{:?}", nr.nr_wf());
        assert_eq!(nr.fold_to_tail().ops, 1000);
    }
}
